"""Pytest configuration for the repository.

Ensures ``src/`` is importable even when the package has not been installed,
which keeps ``pytest tests/`` and ``pytest benchmarks/`` working in offline
environments where editable installs are unavailable.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
