"""Pytest configuration for the repository.

Ensures ``src/`` is importable even when the package has not been installed,
which keeps ``pytest tests/`` and ``pytest benchmarks/`` working in offline
environments where editable installs are unavailable.

Also registers the ``slow`` marker: heavyweight matrices (the full sharded
campaign equivalence grid, the kill-a-worker resume case) are excluded from
the default run so tier-1 (``pytest -x -q``) stays fast; opt in with
``--runslow``.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (heavy equivalence matrices)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: heavyweight test excluded unless --runslow is given"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
