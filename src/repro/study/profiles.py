"""Table I of the paper: the nine studied DBMSs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class DBMSProfile:
    """Metadata of one studied DBMS (Table I)."""

    name: str
    version: str
    data_model: str
    release_year: int
    rank: int
    development: str = "open-source"
    architecture: str = "standalone"
    distributed: bool = False


#: The studied DBMSs, exactly as listed in Table I.
PROFILES: Dict[str, DBMSProfile] = {
    "influxdb": DBMSProfile("InfluxDB", "2.7.0", "time-series", 2013, 28),
    "mongodb": DBMSProfile("MongoDB", "6.0.5", "document", 2009, 5, distributed=True),
    "mysql": DBMSProfile("MySQL", "8.0.32", "relational", 1995, 2),
    "neo4j": DBMSProfile("Neo4j", "5.6.0", "graph", 2007, 21),
    "postgresql": DBMSProfile("PostgreSQL", "14.7", "relational", 1989, 4),
    "sqlserver": DBMSProfile(
        "SQL Server", "16.0.4015.1", "relational", 1989, 3, development="commercial"
    ),
    "sqlite": DBMSProfile("SQLite", "3.41.2", "relational", 1990, 10, architecture="embedded"),
    "sparksql": DBMSProfile("SparkSQL", "3.3.2", "relational", 2014, 33, distributed=True),
    "tidb": DBMSProfile("TiDB", "6.5.1", "relational", 2016, 79, distributed=True),
}


def studied_dbms_names() -> List[str]:
    """Return the studied DBMS identifiers in Table I order."""
    return ["influxdb", "mongodb", "mysql", "neo4j", "postgresql", "sqlserver", "sqlite", "sparksql", "tidb"]


def profile(name: str) -> DBMSProfile:
    """Return the profile of the DBMS called *name*."""
    return PROFILES[name.lower()]


def table1_rows() -> List[Dict[str, object]]:
    """Return Table I as a list of row dictionaries."""
    return [
        {
            "DBMS": PROFILES[name].name,
            "Version": PROFILES[name].version,
            "Data Model": PROFILES[name].data_model,
            "Release": PROFILES[name].release_year,
            "Rank": PROFILES[name].rank,
        }
        for name in studied_dbms_names()
    ]
