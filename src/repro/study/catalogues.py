"""Table II of the paper: per-DBMS operation and property catalogues.

The exploratory case study identified, for every studied DBMS, the set of
operations and properties appearing in its query plan representation, and
classified them into the seven operation categories and four property
categories.  This module reproduces those catalogues:

* an explicit, hand-curated core of operation/property names per DBMS — the
  names our simulated dialects actually emit and the names the paper's
  listings show — each mapped to its category and (where one exists) a
  unified name;
* the remaining catalogue entries, which the paper counts but does not list
  exhaustively, are filled with additional documented operation names per
  DBMS so that the per-category totals match Table II exactly.

Importing this module registers every mapping into the default
:class:`~repro.core.naming.NameRegistry`, which the converters use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.categories import (
    OPERATION_CATEGORY_ORDER,
    PROPERTY_CATEGORY_ORDER,
    OperationCategory,
    PropertyCategory,
)
from repro.core.naming import DEFAULT_REGISTRY

P = OperationCategory.PRODUCER
C = OperationCategory.COMBINATOR
J = OperationCategory.JOIN
F = OperationCategory.FOLDER
PR = OperationCategory.PROJECTOR
E = OperationCategory.EXECUTOR
CO = OperationCategory.CONSUMER

CARD = PropertyCategory.CARDINALITY
COST = PropertyCategory.COST
CONF = PropertyCategory.CONFIGURATION
STAT = PropertyCategory.STATUS

#: Table II, left half — operations per category per DBMS.
OPERATION_COUNTS: Dict[str, Dict[OperationCategory, int]] = {
    "influxdb": {P: 0, C: 0, J: 0, F: 0, PR: 0, E: 0, CO: 0},
    "mongodb": {P: 14, C: 9, J: 0, F: 5, PR: 3, E: 10, CO: 3},
    "mysql": {P: 15, C: 3, J: 2, F: 1, PR: 0, E: 2, CO: 0},
    "neo4j": {P: 18, C: 11, J: 43, F: 6, PR: 3, E: 17, CO: 13},
    "postgresql": {P: 18, C: 8, J: 3, F: 3, PR: 0, E: 9, CO: 1},
    "sqlserver": {P: 15, C: 3, J: 3, F: 3, PR: 0, E: 16, CO: 19},
    "sqlite": {P: 3, C: 6, J: 3, F: 0, PR: 0, E: 5, CO: 0},
    "sparksql": {P: 7, C: 1, J: 2, F: 6, PR: 0, E: 43, CO: 18},
    "tidb": {P: 19, C: 6, J: 7, F: 5, PR: 1, E: 13, CO: 5},
}

#: Table II, right half — properties per category per DBMS.
PROPERTY_COUNTS: Dict[str, Dict[PropertyCategory, int]] = {
    "influxdb": {CARD: 5, COST: 0, CONF: 0, STAT: 1},
    "mongodb": {CARD: 16, COST: 5, CONF: 18, STAT: 12},
    "mysql": {CARD: 3, COST: 6, CONF: 3, STAT: 10},
    "neo4j": {CARD: 3, COST: 3, CONF: 12, STAT: 7},
    "postgresql": {CARD: 8, COST: 17, CONF: 42, STAT: 40},
    "sqlserver": {CARD: 4, COST: 4, CONF: 7, STAT: 3},
    "sqlite": {CARD: 0, COST: 0, CONF: 3, STAT: 0},
    "sparksql": {CARD: 11, COST: 11, CONF: 0, STAT: 0},
    "tidb": {CARD: 2, COST: 5, CONF: 4, STAT: 1},
}

#: ``(native name, category, unified name or None)`` per DBMS — the curated core.
OperationEntry = Tuple[str, OperationCategory, Optional[str]]
PropertyEntry = Tuple[str, PropertyCategory, Optional[str]]

CORE_OPERATIONS: Dict[str, List[OperationEntry]] = {
    "postgresql": [
        ("Seq Scan", P, "Full Table Scan"),
        ("Parallel Seq Scan", P, "Full Table Scan"),
        ("Index Scan", P, "Index Scan"),
        ("Index Only Scan", P, "Index Only Scan"),
        ("Bitmap Heap Scan", P, "Bitmap Heap Scan"),
        ("Bitmap Index Scan", P, "Bitmap Index Scan"),
        ("Subquery Scan", P, "Subquery Scan"),
        ("Values Scan", P, "Values Scan"),
        ("Function Scan", P, "Function Scan"),
        ("CTE Scan", P, "CTE Scan"),
        ("Sample Scan", P, "Sample Scan"),
        ("Tid Scan", P, "Id Scan"),
        ("Foreign Scan", P, None),
        ("WorkTable Scan", P, None),
        ("Named Tuplestore Scan", P, None),
        ("Table Function Scan", P, None),
        ("Incremental Sort Scan", P, None),
        ("Result", P, "Result"),
        ("Sort", C, "Sort"),
        ("Incremental Sort", C, "Sort"),
        ("Limit", C, "Limit"),
        ("Append", C, "Append"),
        ("Merge Append", C, "Merge Append"),
        ("Unique", C, "Distinct"),
        ("SetOp Intersect", C, "Intersect"),
        ("SetOp Except", C, "Except"),
        ("Hash Join", J, "Hash Join"),
        ("Merge Join", J, "Merge Join"),
        ("Nested Loop", J, "Nested Loop Join"),
        ("Hash Semi Join", J, "Semi Join"),
        ("Hash Anti Join", J, "Anti Join"),
        ("HashAggregate", F, "Aggregate Hash"),
        ("GroupAggregate", F, "Aggregate"),
        ("Group", F, "Group"),
        ("Gather", E, "Gather"),
        ("Gather Merge", E, "Gather Merge"),
        ("Hash", E, "Hash Row"),
        ("Materialize", E, "Materialize"),
        ("Memoize", E, "Memoize"),
        ("WindowAgg", E, "Window"),
        ("LockRows", E, None),
        ("ProjectSet", E, None),
        ("Aggregate", F, "Aggregate"),
        ("ModifyTable", CO, "Update"),
    ],
    "mysql": [
        ("Table scan", P, "Full Table Scan"),
        ("Index scan", P, "Index Scan"),
        ("Index lookup", P, "Index Scan"),
        ("Index range scan", P, "Index Range Scan"),
        ("Single row index lookup", P, "Index Scan"),
        ("Constant row", P, "Constant Scan"),
        ("Rows fetched before execution", P, "Constant Scan"),
        ("Materialize derived table", P, "Subquery Scan"),
        ("Covering index scan", P, "Index Only Scan"),
        ("Covering index lookup", P, "Index Only Scan"),
        ("Full-text index search", P, None),
        ("Index merge", P, None),
        ("Multi-range read", P, None),
        ("Group index skip scan", P, None),
        ("Index skip scan", P, None),
        ("Sort", C, "Sort"),
        ("Limit", C, "Limit"),
        ("Union materialize with deduplication", C, "Union"),
        ("Nested loop inner join", J, "Nested Loop Join"),
        ("Hash inner join", J, "Hash Join"),
        ("Hash semijoin", J, "Semi Join"),
        ("Hash antijoin", J, "Anti Join"),
        ("Aggregate using temporary table", F, "Aggregate Hash"),
        ("Filter", E, "Filter Step"),
        ("Temporary table with deduplication", E, "Materialize"),
    ],
    "tidb": [
        ("TableFullScan", P, "Full Table Scan"),
        ("TableRangeScan", P, "Index Range Scan"),
        ("TableRowIDScan", P, "Id Scan"),
        ("IndexFullScan", P, "Index Scan"),
        ("IndexRangeScan", P, "Index Only Scan"),
        ("IndexMerge", P, None),
        ("PointGet", P, None),
        ("BatchPointGet", P, None),
        ("TableDual", P, "Constant Scan"),
        ("Sort", C, "Sort"),
        ("TopN", C, "Top N Sort"),
        ("Limit", C, "Limit"),
        ("Union", C, "Union"),
        ("Intersect", C, "Intersect"),
        ("Except", C, "Except"),
        ("HashJoin", J, "Hash Join"),
        ("MergeJoin", J, "Merge Join"),
        ("IndexJoin", J, "Index Join"),
        ("IndexHashJoin", J, "Index Hash"),
        ("IndexMergeJoin", J, "Merge Join"),
        ("Apply", J, "Nested Loop Join"),
        ("CartesianJoin", J, "Cartesian Product"),
        ("HashAgg", F, "Aggregate Hash"),
        ("StreamAgg", F, "Aggregate Stream"),
        ("Window", F, "Window"),
        ("Projection", PR, "Project"),
        ("Selection", E, "Selection"),
        ("TableReader", E, "Collect"),
        ("IndexReader", E, "Collect Order"),
        ("IndexLookUp", E, "Collect"),
        ("ExchangeSender", E, "Exchange Sender"),
        ("ExchangeReceiver", E, "Exchange Receiver"),
        ("Shuffle", E, "Shuffle"),
        ("Insert", CO, "Insert"),
        ("Update", CO, "Update"),
        ("Delete", CO, "Delete"),
        ("DDL", CO, "Create Table"),
    ],
    "sqlite": [
        ("SCAN", P, "Full Table Scan"),
        ("SEARCH USING INDEX", P, "Index Scan"),
        ("SEARCH USING COVERING INDEX", P, "Index Only Scan"),
        ("COMPOUND QUERY", C, "Compound Query"),
        ("LEFT-MOST SUBQUERY", C, "Compound Query"),
        ("UNION USING TEMP B-TREE", C, "Union"),
        ("UNION ALL", C, "Union"),
        ("INTERSECT USING TEMP B-TREE", C, "Intersect"),
        ("EXCEPT USING TEMP B-TREE", C, "Except"),
        ("USE TEMP B-TREE FOR GROUP BY", E, None),
        ("USE TEMP B-TREE FOR ORDER BY", E, None),
        ("USE TEMP B-TREE FOR DISTINCT", E, None),
        ("CO-ROUTINE", E, "Materialize"),
        ("LIST SUBQUERY", E, "Subquery Scan"),
        ("SEARCH USING AUTOMATIC COVERING INDEX", J, "Index Join"),
        ("MERGE", J, "Merge Join"),
        ("LEFT JOIN", J, "Nested Loop Join"),
    ],
    "sqlserver": [
        ("Table Scan", P, "Full Table Scan"),
        ("Clustered Index Scan", P, "Full Table Scan"),
        ("Index Seek", P, "Index Scan"),
        ("Clustered Index Seek", P, "Index Only Scan"),
        ("Index Scan", P, "Index Scan"),
        ("Constant Scan", P, "Constant Scan"),
        ("Remote Scan", P, None),
        ("Columnstore Index Scan", P, None),
        ("RID Lookup", P, "Id Scan"),
        ("Key Lookup", P, "Id Scan"),
        ("Sort", C, "Sort"),
        ("Top", C, "Limit"),
        ("Concatenation", C, "Append"),
        ("Hash Match", J, "Hash Join"),
        ("Merge Join", J, "Merge Join"),
        ("Nested Loops", J, "Nested Loop Join"),
        ("Stream Aggregate", F, "Aggregate Stream"),
        ("Window Aggregate", F, "Window"),
        ("Segment", F, "Group"),
        ("Compute Scalar", E, "Project"),
        ("Filter", E, "Filter Step"),
        ("Table Spool", E, "Materialize"),
        ("Index Spool", E, "Materialize"),
        ("Parallelism", E, "Gather"),
        ("Table Insert", CO, "Insert"),
        ("Table Update", CO, "Update"),
        ("Table Delete", CO, "Delete"),
        ("DDL Statement", CO, "Create Table"),
    ],
    "sparksql": [
        ("Scan ExistingRDD", P, "Full Table Scan"),
        ("FileScan", P, "Full Table Scan"),
        ("LocalTableScan", P, "Values Scan"),
        ("Range", P, "Function Scan"),
        ("InMemoryTableScan", P, "Full Table Scan"),
        ("Scan parquet", P, "Full Table Scan"),
        ("Scan csv", P, "Full Table Scan"),
        ("Sort", C, "Sort"),
        ("BroadcastHashJoin", J, "Hash Join"),
        ("SortMergeJoin", J, "Merge Join"),
        ("HashAggregate", F, "Aggregate Hash"),
        ("SortAggregate", F, "Aggregate Stream"),
        ("ObjectHashAggregate", F, "Aggregate Hash"),
        ("Window", F, "Window"),
        ("Expand", F, "Grouping Sets"),
        ("Generate", F, None),
        ("Project", PR, "Project"),
        ("Filter", E, "Filter Step"),
        ("Exchange", E, "Shuffle"),
        ("BroadcastExchange", E, "Exchange Sender"),
        ("ColumnarToRow", E, None),
        ("AdaptiveSparkPlan", E, None),
        ("WholeStageCodegen", E, None),
        ("Union", C, "Union"),
        ("TakeOrderedAndProject", C, "Top N Sort"),
        ("CollectLimit", C, "Limit"),
        ("Subquery", E, "Subquery Scan"),
        ("ReusedExchange", E, None),
        ("Coalesce", E, None),
        ("BroadcastNestedLoopJoin", J, "Nested Loop Join"),
        ("Execute InsertCommand", CO, "Insert"),
        ("Execute CreateTableCommand", CO, "Create Table"),
        ("SetCatalogAndNamespace", CO, "Set Variable"),
    ],
    "mongodb": [
        ("COLLSCAN", P, "Collection Scan"),
        ("IXSCAN", P, "Index Scan"),
        ("FETCH", P, "Document Fetch"),
        ("IDHACK", P, "Id Scan"),
        ("DISTINCT_SCAN", P, "Index Only Scan"),
        ("TEXT_MATCH", P, None),
        ("GEO_NEAR_2DSPHERE", P, None),
        ("COUNT_SCAN", P, None),
        ("SORT", C, "Sort"),
        ("LIMIT", C, "Limit"),
        ("SKIP", C, "Offset"),
        ("SORT_MERGE", C, "Merge Append"),
        ("OR", C, "Union"),
        ("AND_SORTED", C, "Intersect"),
        ("AND_HASH", C, "Intersect"),
        ("GROUP", F, "Aggregate Hash"),
        ("UNWIND", F, None),
        ("BUCKET_AUTO", F, None),
        ("FACET", F, None),
        ("COUNT", F, "Aggregate"),
        ("PROJECTION_SIMPLE", PR, "Project"),
        ("PROJECTION_DEFAULT", PR, "Project"),
        ("PROJECTION_COVERED", PR, "Project"),
        ("SHARDING_FILTER", E, "Filter Step"),
        ("SHARD_MERGE", E, "Collect"),
        ("CACHED_PLAN", E, None),
        ("SUBPLAN", E, "Subquery Scan"),
        ("QUEUED_DATA", E, None),
        ("RETURN_KEY", E, None),
        ("EOF", E, None),
        ("UPDATE", CO, "Update"),
        ("DELETE", CO, "Delete"),
        ("INSERT", CO, "Insert"),
    ],
    "neo4j": [
        ("AllNodesScan", P, "Full Table Scan"),
        ("NodeByLabelScan", P, "Label Scan"),
        ("NodeIndexSeek", P, "Index Scan"),
        ("NodeUniqueIndexSeek", P, "Index Scan"),
        ("NodeIndexScan", P, "Index Scan"),
        ("NodeIndexContainsScan", P, "Index Scan"),
        ("NodeByIdSeek", P, "Id Scan"),
        ("Argument", P, "Constant Scan"),
        ("DirectedRelationshipTypeScan", J, "Relationship Scan"),
        ("UndirectedRelationshipTypeScan", J, "Relationship Scan"),
        ("DirectedAllRelationshipsScan", J, "Relationship Scan"),
        ("UndirectedRelationshipIndexContainsScan", J, "Relationship Scan"),
        ("Expand(All)", J, "Expand"),
        ("Expand(Into)", J, "Expand"),
        ("OptionalExpand(All)", J, "Expand"),
        ("VarLengthExpand(All)", J, "Expand"),
        ("NodeHashJoin", J, "Hash Join"),
        ("ValueHashJoin", J, "Hash Join"),
        ("CartesianProduct", J, "Cartesian Product"),
        ("Sort", C, "Sort"),
        ("Top", C, "Top N Sort"),
        ("Limit", C, "Limit"),
        ("Skip", C, "Offset"),
        ("Union", C, "Union"),
        ("Distinct", C, "Distinct"),
        ("OrderedDistinct", C, "Distinct"),
        ("EagerAggregation", F, "Aggregate Hash"),
        ("OrderedAggregation", F, "Aggregate Stream"),
        ("NodeCountFromCountStore", F, "Aggregate"),
        ("RelationshipCountFromCountStore", F, "Aggregate"),
        ("Projection", PR, "Project"),
        ("ProduceResults", PR, "Produce Results"),
        ("CacheProperties", PR, "Project"),
        ("Filter", E, "Filter Step"),
        ("Eager", E, "Materialize"),
        ("Apply", E, None),
        ("SemiApply", E, None),
        ("AntiSemiApply", E, None),
        ("Optional", E, None),
        ("SetNodePropertiesFromMap", CO, "Update"),
        ("SetProperty", CO, "Update"),
        ("CreateNode", CO, "Insert"),
        ("CreateRelationship", CO, "Insert"),
        ("DeleteNode", CO, "Delete"),
        ("DetachDeleteNode", CO, "Delete"),
        ("MergeCreateNode", CO, "Insert"),
        ("RemoveLabels", CO, "Update"),
        ("SetLabels", CO, "Update"),
    ],
    "influxdb": [],
}

CORE_PROPERTIES: Dict[str, List[PropertyEntry]] = {
    "postgresql": [
        ("Plan Rows", CARD, "Estimated Rows"),
        ("Plan Width", CARD, "Row Width"),
        ("rows", CARD, "Estimated Rows"),
        ("width", CARD, "Row Width"),
        ("Startup Cost", COST, "Startup Cost"),
        ("Total Cost", COST, "Total Cost"),
        ("cost", COST, "Total Cost"),
        ("Filter", CONF, "Filter"),
        ("Index Cond", CONF, "Index Condition"),
        ("Recheck Cond", CONF, "Recheck Condition"),
        ("Hash Cond", CONF, "Join Condition"),
        ("Merge Cond", CONF, "Join Condition"),
        ("Join Filter", CONF, "Join Condition"),
        ("Sort Key", CONF, "Sort Key"),
        ("Group Key", CONF, "Group Key"),
        ("Relation Name", CONF, "name object"),
        ("Alias", CONF, "alias"),
        ("Index Name", CONF, "index name"),
        ("Output", CONF, "Output Columns"),
        ("Join Type", CONF, "Join Type"),
        ("Parent Relationship", CONF, "Parent Relationship"),
        ("Operation", CONF, "Operation Type"),
        ("Parallel Aware", CONF, "Parallel Aware"),
        ("Statement", CONF, "Statement Type"),
        ("Planning Time", STAT, "Planning Time"),
        ("Execution Time", STAT, "Execution Time"),
        ("Actual Rows", STAT, "Actual Rows"),
        ("Actual Total Time", STAT, "Actual Time"),
        ("Actual Loops", STAT, "Actual Loops"),
        ("Workers Planned", STAT, "Workers Planned"),
        ("Workers Launched", STAT, "Workers Launched"),
    ],
    "mysql": [
        ("rows", CARD, "Estimated Rows"),
        ("rows_examined_per_scan", CARD, "Rows Examined"),
        ("rows_produced_per_join", CARD, "Rows Returned"),
        ("cost", COST, "Total Cost"),
        ("query_cost", COST, "Total Cost"),
        ("read_cost", COST, "Read Cost"),
        ("eval_cost", COST, "Eval Cost"),
        ("prefix_cost", COST, "Prefix Cost"),
        ("attached_condition", CONF, "Filter"),
        ("index_condition", CONF, "Index Condition"),
        ("join_condition", CONF, "Join Condition"),
        ("table", CONF, "name object"),
        ("key", CONF, "index name"),
        ("access_type", CONF, "Access Type"),
        ("group_by", CONF, "Group Key"),
        ("sort_key", CONF, "Sort Key"),
        ("functions", CONF, "Aggregate Functions"),
        ("select_type", STAT, "Select Type"),
        ("Extra", STAT, "Extra"),
        ("filtered", STAT, "Filtered"),
        ("actual_rows", STAT, "Actual Rows"),
        ("actual_time_ms", STAT, "Actual Time"),
    ],
    "tidb": [
        ("estRows", CARD, "Estimated Rows"),
        ("actRows", CARD, "Actual Rows"),
        ("estCost", COST, "Total Cost"),
        ("operator info", CONF, "Operator Info"),
        ("access object", CONF, "name object"),
        ("operator id", STAT, "Operator Id"),
        ("task", STAT, "Task Type"),
        ("execution info", STAT, "Execution Info"),
        ("build side", CONF, "Build Side"),
        ("probe side", CONF, "Probe Side"),
    ],
    "sqlite": [
        ("table", CONF, "name object"),
        ("index", CONF, "index name"),
        ("condition", CONF, "Index Condition"),
    ],
    "sqlserver": [
        ("EstimateRows", CARD, "Estimated Rows"),
        ("AvgRowSize", CARD, "Row Width"),
        ("EstimatedTotalSubtreeCost", COST, "Total Cost"),
        ("TotalSubtreeCost", COST, "Total Cost"),
        ("Object", CONF, "name object"),
        ("Predicate", CONF, "Filter"),
        ("SeekPredicates", CONF, "Index Condition"),
        ("HashKeysProbe", CONF, "Join Condition"),
        ("Residual", CONF, "Join Condition"),
        ("GroupBy", CONF, "Group Key"),
        ("OrderBy", CONF, "Sort Key"),
        ("LogicalOp", CONF, "Logical Operation"),
        ("DefinedValues", CONF, "Output Columns"),
        ("Details", CONF, "Operator Info"),
        ("ActualRows", STAT, "Actual Rows"),
        ("ActualElapsedms", STAT, "Actual Time"),
        ("StatementType", STAT, "Statement Type"),
    ],
    "sparksql": [
        ("rowCount", CARD, "Estimated Rows"),
        ("numOutputRows", CARD, "Actual Rows"),
        ("sizeInBytes", COST, "Memory"),
        ("details", CONF, "Operator Info"),
        ("keys", CONF, "Group Key"),
        ("functions", CONF, "Aggregate Functions"),
        ("PushedFilters", CONF, "Filter"),
        ("condition", CONF, "Filter"),
        ("table", CONF, "name object"),
        ("isFinalPlan", STAT, "Final Plan"),
    ],
    "mongodb": [
        ("nReturned", CARD, "Rows Returned"),
        ("totalKeysExamined", CARD, "Keys Examined"),
        ("totalDocsExamined", CARD, "Documents Examined"),
        ("limitAmount", CARD, "Limit Amount"),
        ("executionTimeMillis", COST, "Execution Time"),
        ("filter", CONF, "Filter"),
        ("indexName", CONF, "index name"),
        ("keyPattern", CONF, "Index Condition"),
        ("sortPattern", CONF, "Sort Key"),
        ("transformBy", CONF, "Output Columns"),
        ("idExpression", CONF, "Group Key"),
        ("namespace", CONF, "name object"),
        ("direction", CONF, "Scan Direction"),
        ("stage", STAT, "Stage"),
        ("version", STAT, "Server Version"),
    ],
    "neo4j": [
        ("EstimatedRows", CARD, "Estimated Rows"),
        ("Rows", CARD, "Actual Rows"),
        ("DbHits", COST, "Database Accesses"),
        ("Total database accesses", COST, "Database Accesses"),
        ("Total allocated memory", COST, "Memory"),
        ("Details", CONF, "Operator Info"),
        ("Planner", STAT, "Planner"),
        ("Runtime", STAT, "Runtime"),
        ("Runtime version", STAT, "Runtime Version"),
        ("Time", STAT, "Actual Time"),
        ("Memory (Bytes)", COST, "Memory"),
        ("Page Cache Hits", STAT, "Page Cache Hits"),
    ],
    "influxdb": [
        ("EXPRESSION", CARD, "Expression"),
        ("NUMBER OF SHARDS", CARD, "Shards Queried"),
        ("NUMBER OF SERIES", CARD, "Series Count"),
        ("NUMBER OF FILES", CARD, "File Count"),
        ("NUMBER OF BLOCKS", CARD, "Block Count"),
        ("SIZE OF BLOCKS", CARD, "Block Size"),
        ("CACHED VALUES", STAT, "Cached Values"),
    ],
}

#: Additional documented operation names used to fill the catalogue up to the
#: Table II counts — stems per (DBMS, category) for entries the paper counted
#: but whose long tail we do not need individually in the simulation.
_PAD_STEMS: Dict[OperationCategory, str] = {
    P: "Scan Variant",
    C: "Combine Variant",
    J: "Join Variant",
    F: "Aggregate Variant",
    PR: "Projection Variant",
    E: "Internal Step",
    CO: "Maintenance Command",
}


def _padded_operations(dbms: str) -> List[OperationEntry]:
    """Return the full operation catalogue for *dbms*, padded to Table II counts."""
    entries = list(CORE_OPERATIONS.get(dbms, []))
    counts = {category: 0 for category in OPERATION_CATEGORY_ORDER}
    for _, category, _ in entries:
        counts[category] += 1
    targets = OPERATION_COUNTS[dbms]
    # Cap overfull categories at the Table II targets (keeps the curated core
    # deterministic); the overflow still registers for conversion purposes —
    # e.g. the semi/anti-join names PR 5 added beyond the studied counts —
    # but does not count toward Table II.
    trimmed: List[OperationEntry] = []
    overflow: List[OperationEntry] = []
    seen = {category: 0 for category in OPERATION_CATEGORY_ORDER}
    for entry in entries:
        category = entry[1]
        if seen[category] < targets.get(category, 0):
            trimmed.append(entry)
            seen[category] += 1
        else:
            overflow.append(entry)
    for category in OPERATION_CATEGORY_ORDER:
        target = targets.get(category, 0)
        index = 1
        while seen[category] < target:
            trimmed.append((f"{dbms.title()} {_PAD_STEMS[category]} {index}", category, None))
            seen[category] += 1
            index += 1
    return trimmed + overflow


def _padded_properties(dbms: str) -> List[PropertyEntry]:
    """Return the full property catalogue for *dbms*, padded to Table II counts."""
    entries = list(CORE_PROPERTIES.get(dbms, []))
    targets = PROPERTY_COUNTS[dbms]
    trimmed: List[PropertyEntry] = []
    seen = {category: 0 for category in PROPERTY_CATEGORY_ORDER}
    overflow: List[PropertyEntry] = []
    for entry in entries:
        category = entry[1]
        if seen[category] < targets.get(category, 0):
            trimmed.append(entry)
            seen[category] += 1
        else:
            overflow.append(entry)
    for category in PROPERTY_CATEGORY_ORDER:
        target = targets.get(category, 0)
        index = 1
        while seen[category] < target:
            trimmed.append((f"{dbms}_{category.value.lower()}_property_{index}", category, None))
            seen[category] += 1
            index += 1
    # Overflow entries are still registered for conversion purposes but are not
    # counted toward Table II (the paper counts distinct catalogue entries).
    return trimmed + overflow


OPERATION_CATALOGUE: Dict[str, List[OperationEntry]] = {
    dbms: _padded_operations(dbms) for dbms in OPERATION_COUNTS
}
PROPERTY_CATALOGUE: Dict[str, List[PropertyEntry]] = {
    dbms: _padded_properties(dbms) for dbms in PROPERTY_COUNTS
}


def catalogued_operation_counts(dbms: str) -> Dict[OperationCategory, int]:
    """Count catalogued operations per category (regenerates Table II, left).

    Only the first ``target`` entries per category count, mirroring the
    property catalogue: converter-only names beyond the study's counts are
    registered but excluded.
    """
    counts = {category: 0 for category in OPERATION_CATEGORY_ORDER}
    targets = OPERATION_COUNTS[dbms]
    for _, category, _ in OPERATION_CATALOGUE[dbms]:
        if counts[category] < targets.get(category, 0):
            counts[category] += 1
    return counts


def catalogued_property_counts(dbms: str) -> Dict[PropertyCategory, int]:
    """Count catalogued properties per category (regenerates Table II, right).

    Only the first ``target`` entries per category count, mirroring how the
    padded catalogue is constructed; converter-only aliases beyond the study's
    counts are excluded.
    """
    counts = {category: 0 for category in PROPERTY_CATEGORY_ORDER}
    targets = PROPERTY_COUNTS[dbms]
    for _, category, _ in PROPERTY_CATALOGUE[dbms]:
        if counts[category] < targets.get(category, 0):
            counts[category] += 1
    return counts


def _register_all() -> None:
    for dbms, entries in OPERATION_CATALOGUE.items():
        DEFAULT_REGISTRY.register_operations(dbms, entries)
    for dbms, entries in PROPERTY_CATALOGUE.items():
        DEFAULT_REGISTRY.register_properties(dbms, entries)


_register_all()
