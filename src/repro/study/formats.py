"""Table III of the paper: officially supported serialized plan formats."""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Natural formats (optimized for readability) and structured formats
#: (optimized for machine reading), as classified in Section III-E.
NATURAL_FORMATS = ("graph", "text", "table")
STRUCTURED_FORMATS = ("json", "xml", "yaml")

#: Table III: which formats each DBMS officially supports.
FORMAT_SUPPORT: Dict[str, Tuple[str, ...]] = {
    "influxdb": ("text",),
    "mongodb": ("graph", "json"),
    "mysql": ("graph", "table", "json"),
    "neo4j": ("graph", "text", "json"),
    "postgresql": ("text", "table", "json", "xml", "yaml"),
    "sqlserver": ("graph", "text", "table", "xml"),
    "sqlite": ("text",),
    "sparksql": ("graph", "text"),
    "tidb": ("text", "table", "json"),
}


def supports(dbms: str, format_name: str) -> bool:
    """Return whether *dbms* officially supports *format_name*."""
    return format_name.lower() in FORMAT_SUPPORT.get(dbms.lower(), ())


def format_matrix() -> List[Dict[str, object]]:
    """Return Table III as a list of row dictionaries."""
    rows = []
    for dbms in sorted(FORMAT_SUPPORT):
        row: Dict[str, object] = {"DBMS": dbms}
        for format_name in NATURAL_FORMATS + STRUCTURED_FORMATS:
            row[format_name] = supports(dbms, format_name)
        rows.append(row)
    return rows


def format_counts() -> Dict[str, int]:
    """Count supporting DBMSs per format (natural formats dominate)."""
    counts: Dict[str, int] = {}
    for format_name in NATURAL_FORMATS + STRUCTURED_FORMATS:
        counts[format_name] = sum(
            1 for dbms in FORMAT_SUPPORT if supports(dbms, format_name)
        )
    return counts
