"""Table IV of the paper: third-party visualization tools for query plans."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class VisualizationTool:
    """One third-party query plan visualization tool (Table IV)."""

    name: str
    dbms: Tuple[str, ...]
    license: str


#: Table IV — the surveyed third-party tools.
TOOLS: Tuple[VisualizationTool, ...] = (
    VisualizationTool("Postgres Explain Visualizer 2", ("postgresql",), "Open-source"),
    VisualizationTool("pgmustard", ("postgresql",), "Commercial"),
    VisualizationTool("pganalyze", ("postgresql",), "Commercial"),
    VisualizationTool("ApexSQL", ("sqlserver",), "Commercial"),
    VisualizationTool("Plan Explorer", ("sqlserver",), "Commercial"),
    VisualizationTool("Azure Data Studio", ("sqlserver",), "Commercial"),
    VisualizationTool("Dbvisualizer", ("mysql", "postgresql", "sqlserver"), "Commercial"),
)


def table4_rows() -> List[Dict[str, object]]:
    """Return Table IV as a list of row dictionaries."""
    return [
        {"Tool": tool.name, "DBMSs": ", ".join(tool.dbms), "License": tool.license}
        for tool in TOOLS
    ]


def commercial_fraction() -> float:
    """Fraction of surveyed tools that are commercial (6 of 7 in the paper)."""
    commercial = sum(1 for tool in TOOLS if tool.license == "Commercial")
    return commercial / len(TOOLS)
