"""Artefacts of the exploratory case study (Section III, Tables I–IV)."""

from repro.study.profiles import DBMSProfile, PROFILES, profile, studied_dbms_names, table1_rows
from repro.study.catalogues import (
    OPERATION_CATALOGUE,
    OPERATION_COUNTS,
    PROPERTY_CATALOGUE,
    PROPERTY_COUNTS,
    catalogued_operation_counts,
    catalogued_property_counts,
)
from repro.study.formats import (
    FORMAT_SUPPORT,
    NATURAL_FORMATS,
    STRUCTURED_FORMATS,
    format_counts,
    format_matrix,
    supports,
)
from repro.study.tools import TOOLS, VisualizationTool, commercial_fraction, table4_rows

__all__ = [
    "DBMSProfile",
    "PROFILES",
    "profile",
    "studied_dbms_names",
    "table1_rows",
    "OPERATION_CATALOGUE",
    "OPERATION_COUNTS",
    "PROPERTY_CATALOGUE",
    "PROPERTY_COUNTS",
    "catalogued_operation_counts",
    "catalogued_property_counts",
    "FORMAT_SUPPORT",
    "NATURAL_FORMATS",
    "STRUCTURED_FORMATS",
    "format_counts",
    "format_matrix",
    "supports",
    "TOOLS",
    "VisualizationTool",
    "commercial_fraction",
    "table4_rows",
]
