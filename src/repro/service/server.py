"""The asyncio query service.

One :class:`QueryService` owns a TCP endpoint, a tenant registry, and a
worker-thread pool.  The asyncio loop (running on a dedicated background
thread, so the service embeds in synchronous programs and tests) only does
I/O and coordination; every statement executes on a worker thread running
the ordinary dialect stack.

Concurrency contract (the "Service layer" invariants in ROADMAP.md):

* **Statement classification** — a request is *read-only* iff every parsed
  statement is a ``SELECT`` or a plain ``EXPLAIN`` (no ``ANALYZE``;
  ``EXPLAIN ANALYZE`` executes the plan and mutates shared runtime
  counters, so it classifies as a write).
* **Gate discipline** — read-only statements hold the database's
  :class:`~repro.core.concurrency.ReadWriteGate` shared; everything else
  holds it exclusively.  The gate prefers writers, so DDL is linearizable
  under any read load.
* **Snapshot isolation** — before executing, a read-only statement pins a
  :class:`~repro.catalog.database.DatabaseView` at the version it will plan
  against; the vectorized executor reads only that view's snapshots.
  Writers replace snapshots, never mutate them, so a pinned view cannot see
  torn state.  (The planner's lazy auto-analyze may bump the version during
  a read — it recomputes statistics from the same rows and is the one
  benign write allowed under the shared gate.)
* **Sessions** — statements of one session execute in submission order (a
  per-session lock), matching single-connection semantics even when the
  session is addressed from several connections.  Sessions of one tenant
  share that tenant's dialects (and databases); sessions of different
  tenants share nothing.
* **Cancellation** — ``cancel`` (typically sent on a second connection) is
  cooperative: it flags the session's in-flight statement, which aborts at
  its next check; a statement past its last check completes but its result
  is discarded and the client still sees ``StatementCancelled``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.core.concurrency import AtomicCounter
from repro.service import protocol
from repro.service.replica import ProcessReadPool
from repro.service.tenants import TenantCatalog, TenantRegistry
from repro.sqlparser import ast_nodes as ast


class StatementCancelled(Exception):
    """The statement was cancelled before (or while) it ran."""


class _Session:
    """Server-side session state."""

    def __init__(self, session_id: str, catalog: TenantCatalog, dialect) -> None:
        self.id = session_id
        self.catalog = catalog
        self.dialect = dialect
        #: Serializes the session's statements (submission order).
        self.lock = asyncio.Lock()
        #: Set by ``cancel``; checked by the in-flight statement.
        self.cancel_event = threading.Event()
        #: Whether a statement is currently executing (targets for cancel).
        self.inflight = False
        #: Prepared statements: handle -> SQL text.  Plans are cached by the
        #: dialect's prepared-query cache; the handle just pins the text.
        self.prepared: Dict[str, str] = {}
        self._prepared_counter = 0

    def next_prepared_handle(self) -> str:
        self._prepared_counter += 1
        return f"{self.id}/p{self._prepared_counter}"


def _is_read_only(statements) -> bool:
    """Whether every parsed statement can run under the shared gate."""
    for parsed in statements:
        if isinstance(parsed, ast.SelectStatement):
            continue
        if isinstance(parsed, ast.Explain) and not parsed.analyze:
            # Plain EXPLAIN only plans; EXPLAIN ANALYZE executes (and for
            # DML would mutate), so it falls through to the write side.
            continue
        return False
    return True


class QueryService:
    """A multi-tenant query service over the simulated dialect stack."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        read_dispatch: str = "thread",
        process_workers: int = 2,
        registry: Optional[TenantRegistry] = None,
    ) -> None:
        if read_dispatch not in ("thread", "process"):
            raise ValueError("read_dispatch must be 'thread' or 'process'")
        self._host = host
        self._port = port
        self._registry = registry if registry is not None else TenantRegistry()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._read_dispatch = read_dispatch
        self._process_pool: Optional[ProcessReadPool] = None
        if read_dispatch == "process":
            self._process_pool = ProcessReadPool(workers=process_workers)
        self._sessions: Dict[str, _Session] = {}
        self._sessions_lock = threading.Lock()
        self._session_counter = AtomicCounter()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._shutdown: Optional[asyncio.Event] = None
        #: ``(host, port)`` once the listener is bound.
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "QueryService":
        """Bind the listener and serve on a background thread."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Stop serving and release the pools (idempotent)."""
        loop = self._loop
        if loop is not None and self._shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(self._shutdown.set)
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._pool.shutdown(wait=True)
        if self._process_pool is not None:
            self._process_pool.close()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            self._startup_error = exc
            self._started.set()
            return
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()

    # -- connection handling ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                length = int.from_bytes(header, "big")
                if length > protocol.MAX_MESSAGE_BYTES:
                    break
                try:
                    payload = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    request = protocol.decode_payload(payload)
                except protocol.ProtocolError:
                    break
                response = await self._handle_request(request)
                writer.write(protocol.encode_message(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            writer.close()

    async def _handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request.get("id")
        try:
            payload = await self._dispatch(request)
            response = {"ok": True}
            response.update(payload)
        except StatementCancelled as exc:
            response = {
                "ok": False,
                "cancelled": True,
                "error": {"type": "StatementCancelled", "message": str(exc)},
            }
        except Exception as exc:  # noqa: BLE001 - the wire carries the error
            remote_type = getattr(exc, "remote_type", None) or type(exc).__name__
            response = {
                "ok": False,
                "error": {"type": remote_type, "message": str(exc)},
            }
        if request_id is not None:
            response["id"] = request_id
        return response

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"pong": True}
        if op == "open":
            return self._op_open(request)
        if op == "cancel":
            return self._op_cancel(request)
        session = self._session(request)
        if op == "close":
            with self._sessions_lock:
                self._sessions.pop(session.id, None)
            return {"closed": True}
        if op == "execute":
            return await self._op_execute(session, request)
        if op == "execute_prepared":
            handle = request["statement"]
            try:
                sql = session.prepared[handle]
            except KeyError:
                raise KeyError(f"unknown prepared statement {handle!r}")
            return await self._op_execute(session, dict(request, sql=sql))
        if op == "prepare":
            # Parse eagerly so a bad statement fails at prepare time, and so
            # the AST is already cached when the statement first executes.
            session.dialect.prepared.parse(request["sql"])
            handle = session.next_prepared_handle()
            session.prepared[handle] = request["sql"]
            return {"statement": handle}
        if op == "explain":
            return await self._op_explain(session, request)
        if op == "estimate":
            return await self._op_estimate(session, request)
        if op == "analyze":
            await self._run_statement(
                session, lambda: session.dialect.analyze_tables(), read_only=False
            )
            return {"analyzed": True}
        if op == "reset":
            await self._run_statement(
                session, lambda: session.dialect.reset(), read_only=False
            )
            return {"reset": True}
        if op == "catalog":
            return await self._op_catalog(session)
        raise ValueError(f"unknown op {op!r}")

    # -- session management -------------------------------------------------------

    def _op_open(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant_name = request.get("tenant", "default")
        dbms_name = request["dbms"]
        catalog = self._registry.catalog(tenant_name)
        dialect = catalog.dialect(dbms_name, request.get("options"))
        session_id = f"s{self._session_counter.increment()}"
        session = _Session(session_id, catalog, dialect)
        with self._sessions_lock:
            self._sessions[session_id] = session
        return {"session": session_id, "tenant": tenant_name, "dbms": dialect.name}

    def _session(self, request: Dict[str, Any]) -> _Session:
        session_id = request.get("session")
        with self._sessions_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise KeyError(f"unknown session {session_id!r}")
        return session

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # Deliberately does NOT take the session lock: cancel must overtake
        # the statement it targets, not queue behind it.
        session = self._session(request)
        delivered = session.inflight
        if delivered:
            session.cancel_event.set()
        return {"delivered": delivered}

    # -- statement execution ------------------------------------------------------

    async def _op_execute(self, session: _Session, request: Dict[str, Any]) -> Dict[str, Any]:
        sql = request["sql"]
        delay_ms = int(request.get("delay_ms", 0))
        _, statements = session.dialect.prepared.parse(sql)
        read_only = _is_read_only(statements)
        if (
            read_only
            and self._process_pool is not None
            and not any(isinstance(parsed, ast.Explain) for parsed in statements)
        ):
            rows = await self._run_statement(
                session,
                lambda: self._execute_on_replica(session, sql),
                read_only=True,
                delay_ms=delay_ms,
                pin_view=False,
            )
        else:
            rows = await self._run_statement(
                session,
                lambda: session.dialect.execute(sql),
                read_only=read_only,
                delay_ms=delay_ms,
            )
        return {"rows": rows, "read_only": read_only}

    async def _op_explain(self, session: _Session, request: Dict[str, Any]) -> Dict[str, Any]:
        sql = request["sql"]
        format_name = request.get("format")
        analyze = bool(request.get("analyze", False))
        _, statements = session.dialect.prepared.parse(sql)
        read_only = not analyze and _is_read_only(statements)

        def work():
            output = session.dialect.explain(sql, format=format_name, analyze=analyze)
            return {
                "dbms": output.dbms,
                "format": output.format,
                "text": output.text,
                "query": output.query,
                "bound_violations": [dict(item) for item in output.bound_violations],
            }

        return await self._run_statement(session, work, read_only=read_only)

    async def _op_estimate(self, session: _Session, request: Dict[str, Any]) -> Dict[str, Any]:
        sql = request["sql"]

        def work():
            from repro.sqlparser.parser import parse_one

            physical = session.dialect.planner.plan_statement(parse_one(sql))
            return {"rows": max(physical.estimated_rows, 1.0)}

        return await self._run_statement(session, work, read_only=True, pin_view=False)

    async def _op_catalog(self, session: _Session) -> Dict[str, Any]:
        def work():
            database = session.dialect.database
            return {
                "tables": sorted(database.table_names()),
                "indexes": list(database.index_names()),
                "version": database.version,
            }

        return await self._run_statement(session, work, read_only=True, pin_view=False)

    async def _run_statement(
        self,
        session: _Session,
        work,
        read_only: bool,
        delay_ms: int = 0,
        pin_view: bool = True,
    ):
        """Run *work* on the thread pool under the session and gate contracts."""
        async with session.lock:
            if session.cancel_event.is_set():
                session.cancel_event.clear()
                raise StatementCancelled("cancelled before execution")
            session.inflight = True
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(
                self._pool,
                self._call_blocking,
                session,
                work,
                read_only,
                delay_ms,
                pin_view,
            )
            cancel_task = loop.create_task(self._wait_for_cancel(session))
            try:
                done, _ = await asyncio.wait(
                    {future, cancel_task}, return_when=asyncio.FIRST_COMPLETED
                )
                if future in done:
                    return future.result()
                # The worker keeps running (threads cannot be killed) but
                # its result is discarded; the session stays ordered because
                # the lock is held until this point either way.
                _swallow(future)
                raise StatementCancelled("cancelled mid-statement")
            finally:
                cancel_task.cancel()
                session.inflight = False
                session.cancel_event.clear()

    async def _wait_for_cancel(self, session: _Session) -> None:
        while not session.cancel_event.is_set():
            await asyncio.sleep(0.002)

    def _call_blocking(self, session: _Session, work, read_only: bool, delay_ms: int, pin_view: bool):
        if delay_ms:
            # Test hook: simulate a long-running statement in interruptible
            # slices, so cancellation-mid-statement is deterministic.
            deadline = time.monotonic() + delay_ms / 1000.0
            while time.monotonic() < deadline:
                if session.cancel_event.is_set():
                    raise StatementCancelled("cancelled during execution")
                time.sleep(min(0.005, max(deadline - time.monotonic(), 0.0)))
        database = session.dialect.database
        if read_only:
            with database.gate.read_locked():
                if session.cancel_event.is_set():
                    raise StatementCancelled("cancelled during execution")
                if not pin_view:
                    return work()
                executor = session.dialect.executor
                executor.snapshot_view = database.pin_view()
                try:
                    return work()
                finally:
                    # Concurrent readers of the same dialect race on this
                    # attribute, but every view pinned under the shared gate
                    # has identical content (writers are excluded), and a
                    # cleared slot just falls back to the live current-
                    # version snapshot — the same data.
                    executor.snapshot_view = None
        with database.gate.write_locked():
            return work()

    def _execute_on_replica(self, session: _Session, sql: str):
        """Run a read-only SELECT on the process pool (two-trip resync)."""
        database = session.dialect.database
        task = {
            "tenant": session.catalog.name,
            "dbms": session.dialect.name,
            "version": database.version,
            "sql": sql,
        }
        assert self._process_pool is not None
        result = self._process_pool.run(task)
        if result["status"] == "need_catalog":
            # Still under the shared gate (our caller holds it), so the
            # payload is a consistent capture at the task's version.
            task["payload"] = database.to_payload()
            result = self._process_pool.run(task)
        if result["status"] == "ok":
            return result["rows"]
        error = RuntimeError(result.get("message", "replica failure"))
        error.remote_type = result.get("type", "RuntimeError")
        raise error


def _swallow(future) -> None:
    """Consume *future*'s eventual result/exception without raising."""

    def _done(completed) -> None:
        if not completed.cancelled():
            completed.exception()

    future.add_done_callback(_done)
