"""The multi-tenant asyncio query service (PR 9).

An :mod:`asyncio` front end over the thread-safe dialect core: sessions,
per-tenant catalogs, prepared statements, cancellation, and EXPLAIN
passthrough, over a length-prefixed JSON wire protocol.  Read-only
statements run concurrently with snapshot isolation; DDL/DML is
linearizable.  See ``README.md`` ("Serving") and the "Service layer"
invariants block in ``ROADMAP.md``.
"""

from repro.service.client import (
    ServiceClient,
    ServiceDialect,
    ServiceError,
    ServiceSession,
    StatementCancelled,
)
from repro.service.protocol import MAX_MESSAGE_BYTES, FrameDecoder, ProtocolError
from repro.service.server import QueryService
from repro.service.tenants import TenantCatalog, TenantRegistry

__all__ = [
    "QueryService",
    "ServiceClient",
    "ServiceSession",
    "ServiceDialect",
    "ServiceError",
    "StatementCancelled",
    "TenantCatalog",
    "TenantRegistry",
    "FrameDecoder",
    "ProtocolError",
    "MAX_MESSAGE_BYTES",
]
