"""Process read workers: genuine multi-core scaling for read-only traffic.

Python threads share one interpreter lock, so CPU-bound statements on a
worker *thread* pool interleave rather than overlap.  When the service is
configured with ``read_dispatch="process"``, read-only ``execute``
statements are shipped to a small pool of worker processes instead.  Each
worker keeps a **replica cache**: per ``(tenant, dbms)`` it holds a database
rebuilt from :meth:`repro.catalog.database.Database.to_payload` at a known
version.  The dispatch protocol is two-trip on a version miss:

1. the service sends ``(tenant, dbms, version, sql)`` without the catalog;
   a worker whose replica matches the version executes immediately;
2. a worker without a matching replica answers ``need_catalog``; the
   service — still holding the database's read gate, so the capture is
   consistent — re-sends the task with the payload attached, and the worker
   installs the replica before executing.

Workers never write: DDL/DML always executes in the service process under
the exclusive gate, bumping the version, which invalidates every replica
lazily (the next read at the new version triggers a resync).

Results are plain row lists; the executor-equivalence invariants (identical
rows from identical databases, independent of process) are what make the
replica path transparent.
"""

from __future__ import annotations

import multiprocessing
import threading
import traceback
from typing import Any, Dict, List, Optional, Tuple


def _install_replica(dialect, payload: Dict[str, Any]):
    """Point *dialect* at a database rebuilt from *payload*."""
    from repro.catalog.database import Database
    from repro.engine import create_executor

    database = Database.from_payload(payload)
    dialect.database = database
    dialect.planner.database = database
    dialect.executor = create_executor(dialect.executor_kind, database, dialect.planner)
    dialect.prepared.clear()
    return dialect


def _replica_main(task_queue, result_queue) -> None:
    """Worker process loop: execute read-only statements against replicas."""
    from repro.dialects import create_dialect

    replicas: Dict[Tuple[str, str], Tuple[int, Any]] = {}
    while True:
        task = task_queue.get()
        if task is None:
            break
        seq = task["seq"]
        try:
            key = (task["tenant"], task["dbms"])
            cached = replicas.get(key)
            if cached is None or cached[0] != task["version"]:
                payload = task.get("payload")
                if payload is None:
                    result_queue.put({"seq": seq, "status": "need_catalog"})
                    continue
                dialect = (
                    cached[1]
                    if cached is not None
                    else create_dialect(task["dbms"], **task.get("options", {}))
                )
                _install_replica(dialect, payload)
                replicas[key] = (task["version"], dialect)
            dialect = replicas[key][1]
            rows = dialect.execute(task["sql"])
            result_queue.put({"seq": seq, "status": "ok", "rows": rows})
        except Exception as exc:  # noqa: BLE001 - forwarded to the service
            result_queue.put(
                {
                    "seq": seq,
                    "status": "error",
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                }
            )


class _ReplicaWorker:
    """One worker process plus its private task/result queues."""

    def __init__(self, context) -> None:
        self.tasks = context.Queue()
        self.results = context.Queue()
        #: One in-flight task per worker: the submitting thread holds this
        #: while waiting for the matching result, so results cannot cross.
        self.lock = threading.Lock()
        self.process = context.Process(
            target=_replica_main, args=(self.tasks, self.results), daemon=True
        )
        self.process.start()


class ProcessReadPool:
    """A fixed pool of replica workers with round-robin dispatch."""

    def __init__(self, workers: int = 2, context: Optional[Any] = None) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        context = context or multiprocessing.get_context()
        self._workers: List[_ReplicaWorker] = [
            _ReplicaWorker(context) for _ in range(workers)
        ]
        self._next = 0
        self._pick_lock = threading.Lock()
        self._seq = 0
        self._closed = False

    def run(self, task: Dict[str, Any]) -> Dict[str, Any]:
        """Run one task on a worker, blocking until its result arrives."""
        with self._pick_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            worker = self._workers[self._next % len(self._workers)]
            self._next += 1
            self._seq += 1
            task = dict(task, seq=self._seq)
        with worker.lock:
            worker.tasks.put(task)
            return worker.results.get()

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        with self._pick_lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            with worker.lock:
                worker.tasks.put(None)
        for worker in self._workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - hung worker
                worker.process.terminate()
