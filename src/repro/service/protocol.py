"""The service wire protocol: length-prefixed JSON frames.

Every message — request or response — is one UTF-8 JSON object preceded by
its byte length as an unsigned 4-byte big-endian integer.  The framing is
deliberately minimal: any language with sockets and a JSON parser can speak
it, and JSON round-trips every value the dialects produce exactly (Python
ints are arbitrary precision, ``float`` survives ``dumps``/``loads``
bit-for-bit), which is what makes byte-identical campaign results through
the service possible.

Requests carry ``op`` plus op-specific fields and an optional ``id``;
responses echo the ``id`` and carry either ``ok: true`` with a payload or
``ok: false`` with an ``error`` object (``type``/``message``).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Iterator, List, Optional

#: Upper bound on one frame's JSON payload.  Large enough for any plan text
#: or result set the campaigns produce; a violation means a corrupt stream
#: (or a hostile peer), so the connection is dropped rather than buffered.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed frame: bad length prefix or undecodable payload."""


def _scalar_default(value: Any) -> Any:
    # NumPy scalars (possible in rows produced by the array kernels) convert
    # losslessly to the equivalent Python scalar; anything else is a bug.
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"{type(value).__name__} is not JSON serializable")


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialize *message* into one length-prefixed frame."""
    payload = json.dumps(
        message, separators=(",", ":"), default=_scalar_default
    ).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(payload)} bytes exceeds the frame limit")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse one frame's JSON payload."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


class FrameDecoder:
    """Incremental decoder: feed raw bytes, get complete messages out.

    The asyncio server and the blocking client both read from a stream that
    may deliver partial frames; the decoder buffers across ``feed`` calls
    and yields each message exactly once, in order.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb *data* and return every message completed by it."""
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return messages
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_MESSAGE_BYTES:
                raise ProtocolError(f"frame of {length} bytes exceeds the frame limit")
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            messages.append(decode_payload(payload))


# -- blocking socket helpers (client side) --------------------------------------------


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_message(message))


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame from a blocking socket (``None`` on clean EOF)."""
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the frame limit")
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_payload(payload)


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes (``None`` if EOF arrives before byte one)."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
