"""Blocking client for the query service, plus the campaign adapter.

:class:`ServiceClient` owns one socket and is **not** thread-safe — give
each client thread its own instance (sessions are addressable from any
connection, so a second client can cancel a statement the first is blocked
on).

:class:`ServiceDialect` adapts a session to the dialect surface the testing
oracles use (``name`` / ``execute`` / ``explain`` / ``analyze_tables`` /
``estimated_root_rows`` / ``database.index_names``), which is what lets a
whole :class:`~repro.testing.campaign.TestingCampaign` run through a
loopback service — byte-identically to the direct-dialect run, because JSON
round-trips every value exactly and the server executes the very same
stack.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.dialects.base import ExplainOutput
from repro.errors import ReproError
from repro.service import protocol


class ServiceError(ReproError):
    """A request failed on the server; carries the remote error identity."""

    def __init__(self, remote_type: str, remote_message: str) -> None:
        super().__init__(f"{remote_type}: {remote_message}")
        self.remote_type = remote_type
        self.remote_message = remote_message


class StatementCancelled(ServiceError):
    """The in-flight statement was cancelled (usually by another connection)."""


class ServiceClient:
    """One connection to a :class:`~repro.service.server.QueryService`."""

    def __init__(self, address: Tuple[str, int], timeout: Optional[float] = 60.0) -> None:
        self.address = (address[0], address[1])
        self._sock = socket.create_connection(self.address, timeout=timeout)
        self._request_counter = 0

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and return the response payload.

        Raises :class:`StatementCancelled` / :class:`ServiceError` when the
        server reports a failure.
        """
        self._request_counter += 1
        message = {"op": op, "id": self._request_counter}
        message.update(fields)
        protocol.send_message(self._sock, message)
        while True:
            response = protocol.recv_message(self._sock)
            if response is None:
                raise ServiceError("ConnectionClosed", "server closed the connection")
            # Requests on one connection are answered in order; id echo is a
            # sanity check, not a demultiplexer.
            if response.get("id") in (None, message["id"]):
                break
        if response.get("ok"):
            return response
        error = response.get("error", {})
        remote_type = error.get("type", "ServiceError")
        remote_message = error.get("message", "")
        if response.get("cancelled") or remote_type == "StatementCancelled":
            raise StatementCancelled(remote_type, remote_message)
        raise ServiceError(remote_type, remote_message)

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def open_session(
        self,
        dbms: str,
        tenant: str = "default",
        options: Optional[Dict[str, Any]] = None,
    ) -> "ServiceSession":
        """Open a session bound to *tenant*'s *dbms* dialect."""
        response = self.request("open", dbms=dbms, tenant=tenant, options=options or {})
        return ServiceSession(self, response["session"], response["dbms"], tenant)

    def cancel(self, session_id: str) -> bool:
        """Ask the server to cancel *session_id*'s in-flight statement."""
        return bool(self.request("cancel", session=session_id).get("delivered"))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServiceSession:
    """One server-side session, driven through a client connection."""

    def __init__(self, client: ServiceClient, session_id: str, dbms: str, tenant: str) -> None:
        self.client = client
        self.id = session_id
        self.dbms = dbms
        self.tenant = tenant

    def execute(self, sql: str, delay_ms: int = 0) -> List[Dict[str, Any]]:
        """Execute SQL, returning result rows."""
        fields: Dict[str, Any] = {"session": self.id, "sql": sql}
        if delay_ms:
            fields["delay_ms"] = delay_ms
        return self.client.request("execute", **fields)["rows"]

    def explain(
        self, sql: str, format: Optional[str] = None, analyze: bool = False
    ) -> ExplainOutput:
        """EXPLAIN passthrough: the server's plan text, as an ExplainOutput."""
        fields: Dict[str, Any] = {"session": self.id, "sql": sql, "analyze": analyze}
        if format is not None:
            fields["format"] = format
        response = self.client.request("explain", **fields)
        return ExplainOutput(
            dbms=response["dbms"],
            format=response["format"],
            text=response["text"],
            query=response["query"],
            bound_violations=tuple(response["bound_violations"]),
        )

    def estimate(self, sql: str) -> float:
        """The planner's root-cardinality estimate for *sql*."""
        return float(self.client.request("estimate", session=self.id, sql=sql)["rows"])

    def prepare(self, sql: str) -> str:
        """Prepare *sql*, returning a statement handle."""
        return self.client.request("prepare", session=self.id, sql=sql)["statement"]

    def execute_prepared(self, handle: str) -> List[Dict[str, Any]]:
        """Execute a prepared statement by handle."""
        return self.client.request("execute_prepared", session=self.id, statement=handle)["rows"]

    def analyze_tables(self) -> None:
        """Refresh optimizer statistics for every table of the session's DBMS."""
        self.client.request("analyze", session=self.id)

    def reset(self) -> None:
        """Drop every table of the session's DBMS."""
        self.client.request("reset", session=self.id)

    def catalog(self) -> Dict[str, Any]:
        """Table names, index names, and catalog version."""
        response = self.client.request("catalog", session=self.id)
        return {
            "tables": response["tables"],
            "indexes": response["indexes"],
            "version": response["version"],
        }

    def cancel_from_new_connection(self) -> bool:
        """Cancel this session's in-flight statement via a fresh connection.

        The session's own connection is blocked waiting for the statement's
        response, so cancellation must travel out-of-band.
        """
        with ServiceClient(self.client.address) as side_channel:
            return side_channel.cancel(self.id)

    def close(self) -> None:
        self.client.request("close", session=self.id)


class _RemoteCatalog:
    """The minimal ``dialect.database`` surface the oracles touch."""

    def __init__(self, session: ServiceSession) -> None:
        self._session = session

    def index_names(self) -> List[str]:
        return self._session.catalog()["indexes"]

    def table_names(self) -> List[str]:
        return self._session.catalog()["tables"]

    @property
    def version(self) -> int:
        return self._session.catalog()["version"]


class ServiceDialect:
    """A remote session presented as a dialect (for the testing campaign).

    Only the surface the oracles use is implemented; anything else is an
    AttributeError by design — the adapter must never silently run work
    locally that the campaign expects to run on the server.
    """

    def __init__(self, session: ServiceSession) -> None:
        self.session = session
        self.name = session.dbms
        self.database = _RemoteCatalog(session)

    def execute(self, statement: str) -> List[Dict[str, Any]]:
        return self.session.execute(statement)

    def explain(
        self, statement: str, format: Optional[str] = None, analyze: bool = False
    ) -> ExplainOutput:
        return self.session.explain(statement, format=format, analyze=analyze)

    def estimated_root_rows(self, statement: str) -> float:
        return self.session.estimate(statement)

    def analyze_tables(self) -> None:
        self.session.analyze_tables()
