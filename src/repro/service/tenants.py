"""Per-tenant catalogs: explicit handles, no singleton.

Each tenant owns an isolated set of dialect instances (and therefore
databases) — cross-tenant leakage is impossible *by construction*, because
no shared registry, module global, or default catalog exists that two
tenants could reach: a session holds a :class:`TenantCatalog` reference and
every lookup goes through it.  (Compare the ``catalog_manager`` singleton
idiom some systems use, where isolation depends on every call site passing
the right key; here there is no wrong call to make.)

The registry itself is just an object the service owns; tests can build two
registries side by side in one process and nothing will connect them.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.dialects import create_dialect
from repro.dialects.base import SimulatedDBMS

#: Dialect constructor options the service accepts at session open.
DIALECT_OPTION_KEYS = ("prepared_cache", "executor", "decorrelate", "optimize_joins")


class TenantCatalog:
    """One tenant's dialects, keyed by DBMS name.

    Dialects are created lazily on first use and shared by every session of
    the tenant (two sessions of one tenant that open ``postgresql`` see the
    same database — the multi-session semantics the concurrency tests
    exercise).  Creation is lock-guarded so two sessions opening the same
    DBMS concurrently share one instance instead of racing two into
    existence.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._dialects: Dict[str, SimulatedDBMS] = {}
        self._lock = threading.Lock()

    def dialect(self, dbms_name: str, options: Optional[Dict[str, object]] = None) -> SimulatedDBMS:
        """Return (creating on first use) this tenant's *dbms_name* dialect.

        *options* configures the dialect at creation; later calls for an
        existing dialect ignore them (the first opener owns the
        configuration, as with a real server's instance settings).
        """
        key = dbms_name.lower()
        with self._lock:
            dialect = self._dialects.get(key)
            if dialect is None:
                clean = {
                    name: value
                    for name, value in (options or {}).items()
                    if name in DIALECT_OPTION_KEYS
                }
                dialect = create_dialect(key, **clean)
                self._dialects[key] = dialect
            return dialect

    def dbms_names(self) -> List[str]:
        """The DBMS names this tenant has opened so far."""
        with self._lock:
            return sorted(self._dialects)


class TenantRegistry:
    """The explicit collection of tenant catalogs a service serves.

    Deliberately *not* a module-level singleton: the service (or a test)
    constructs one and passes it down, so two services in one process are
    fully independent.
    """

    def __init__(self) -> None:
        self._tenants: Dict[str, TenantCatalog] = {}
        self._lock = threading.Lock()

    def catalog(self, tenant_name: str) -> TenantCatalog:
        """Return (creating on first use) the catalog for *tenant_name*."""
        key = tenant_name
        with self._lock:
            catalog = self._tenants.get(key)
            if catalog is None:
                catalog = TenantCatalog(key)
                self._tenants[key] = catalog
            return catalog

    def tenant_names(self) -> List[str]:
        """Every tenant with a catalog."""
        with self._lock:
            return sorted(self._tenants)
