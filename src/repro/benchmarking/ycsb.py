"""A YCSB-style workload generator for the MongoDB dialect (Table VII)."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple


def load_ycsb(dialect, records: int = 500, seed: int = 11) -> None:
    """Load the YCSB ``usertable`` into the MongoDB dialect."""
    rng = random.Random(seed)
    documents = [
        {
            "_id": f"user{i}",
            **{f"field{f}": rng.randrange(0, 1000) for f in range(10)},
        }
        for i in range(records)
    ]
    dialect.insert_many("usertable", documents)
    dialect.create_index("usertable", "_id")


def workload_a(operations: int = 50, records: int = 500, seed: int = 13) -> List[Dict]:
    """Generate YCSB workload A (50% reads, 50% updates) as find commands.

    Updates are modelled as point reads of the document to be updated, which
    is what their query plans look like (an IXSCAN + FETCH).
    """
    rng = random.Random(seed)
    commands = []
    for _ in range(operations):
        key = f"user{rng.randrange(records)}"
        commands.append({"collection": "usertable", "criteria": {"_id": key}})
    return commands


def workload_scan(operations: int = 20, records: int = 500, seed: int = 17) -> List[Dict]:
    """Generate YCSB workload E-style short scans (range reads)."""
    rng = random.Random(seed)
    commands = []
    for _ in range(operations):
        start = rng.randrange(records)
        commands.append(
            {
                "collection": "usertable",
                "criteria": {"field0": {"$gte": start % 1000}},
                "limit": rng.randrange(5, 50),
            }
        )
    return commands


def explain_workload(dialect, commands: List[Dict]) -> List[str]:
    """Return the explain JSON for every command of a workload."""
    outputs = []
    for command in commands:
        document = dialect.explain_find(
            command["collection"],
            command.get("criteria"),
            limit=command.get("limit"),
        )
        import json

        outputs.append(json.dumps(document, default=str))
    return outputs
