"""The query 11 cross-DBMS analysis (Listing 4 and the 27 % estimate).

The paper compares the unified plans of TPC-H query 11 on PostgreSQL and
TiDB: PostgreSQL scans the three tables twice (once for the main query, once
for the HAVING subquery — six Producer operations), whereas TiDB can reuse
index reads.  Using ``EXPLAIN ANALYZE`` timings of the individual scans, the
paper estimates that eliminating the three redundant scans would save about
27 % of the query's execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.converters import converter_for
from repro.core.categories import OperationCategory
from repro.core.model import UnifiedPlan
from repro.dialects import create_dialect
from repro.benchmarking import tpch


@dataclass
class ScanTiming:
    """Execution timing of one Producer operation."""

    operation: str
    table: str
    milliseconds: float


@dataclass
class Query11Analysis:
    """Everything the Listing 4 analysis produces."""

    postgresql_plan: UnifiedPlan = None
    tidb_plan: UnifiedPlan = None
    postgresql_producer_count: int = 0
    tidb_producer_count: int = 0
    scan_timings: List[ScanTiming] = field(default_factory=list)
    total_time_ms: float = 0.0
    redundant_scan_time_ms: float = 0.0

    @property
    def potential_saving_fraction(self) -> float:
        """Estimated saving from removing the redundant scans (paper: ~27 %)."""
        if self.total_time_ms <= 0:
            return 0.0
        return self.redundant_scan_time_ms / self.total_time_ms


def unified_text(plan: UnifiedPlan) -> str:
    """Render a unified plan in the indented text form used by Listing 4."""
    from repro.core import formats

    return formats.serialize(plan, "text")


def analyse_query11(scale: float = 1.0) -> Query11Analysis:
    """Reproduce the Listing 4 analysis on the simulated PostgreSQL and TiDB."""
    analysis = Query11Analysis()
    query = tpch.QUERIES[11]

    # --- PostgreSQL: unified plan + EXPLAIN ANALYZE timings -------------------
    postgresql = create_dialect("postgresql")
    tpch.load_into(postgresql, scale=scale)
    converter = converter_for("postgresql")
    analyzed = postgresql.explain(query, format="json", analyze=True)
    analysis.postgresql_plan = converter.convert(analyzed.text, format="json")
    analysis.postgresql_producer_count = len(
        analysis.postgresql_plan.operations_in(OperationCategory.PRODUCER)
    )

    # Collect per-scan actual timings from the analyzed physical plan.
    physical = postgresql.planner.plan_statement(
        __import__("repro.sqlparser.parser", fromlist=["parse_one"]).parse_one(query)
    )
    rows = postgresql.executor.execute(physical, analyze=True)
    del rows
    total = physical.runtime.actual_time_ms
    scans: List[ScanTiming] = []
    from repro.optimizer.physical import PRODUCER_KINDS

    for node in physical.walk():
        if node.kind in PRODUCER_KINDS and node.info.get("table"):
            scans.append(
                ScanTiming(
                    operation=node.kind.value,
                    table=node.info["table"],
                    milliseconds=node.runtime.actual_time_ms,
                )
            )
    analysis.scan_timings = scans
    analysis.total_time_ms = max(total, sum(scan.milliseconds for scan in scans), 0.001)
    # The HAVING subquery re-scans partsupp, supplier, and nation.  When those
    # re-scans appear as separate plan nodes their own timings are used;
    # otherwise (the executor evaluates the subquery inline) the re-scan cost
    # equals the cost of scanning the same three tables again.
    if len(scans) > 3:
        redundant = scans[len(scans) // 2 :]
        analysis.redundant_scan_time_ms = sum(scan.milliseconds for scan in redundant)
    else:
        analysis.redundant_scan_time_ms = sum(scan.milliseconds for scan in scans)
        analysis.total_time_ms = max(
            analysis.total_time_ms, 2.0 * analysis.redundant_scan_time_ms + 0.001
        )

    # --- TiDB: unified plan ------------------------------------------------------
    tidb = create_dialect("tidb")
    tpch.load_into(tidb, scale=scale)
    tidb_converter = converter_for("tidb")
    tidb_output = tidb.explain(query, format="table")
    analysis.tidb_plan = tidb_converter.convert(tidb_output.text, format="table")
    analysis.tidb_producer_count = len(
        analysis.tidb_plan.operations_in(OperationCategory.PRODUCER)
    )
    return analysis


def scan_count_comparison(analysis: Query11Analysis) -> Dict[str, int]:
    """Producer-operation counts per DBMS for query 11 (Listing 4's headline)."""
    return {
        "postgresql": analysis.postgresql_producer_count,
        "tidb": analysis.tidb_producer_count,
    }
