"""Cross-DBMS plan metrics: Tables VI and VII and Figure 4 of the paper.

The benchmarking application converts every workload query's serialized plan
into the unified representation, counts operations per category, and compares
the distributions across DBMSs.  The variance of Producer-operation counts per
TPC-H query (Figure 4) points at optimization opportunities such as the
query 11 case analysed in :mod:`repro.benchmarking.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.converters import converter_for
from repro.core.categories import OPERATION_CATEGORY_ORDER, OperationCategory
from repro.core.compare import average_category_histogram, producer_count
from repro.core.model import UnifiedPlan
from repro.dialects import create_dialect
from repro.benchmarking import tpch, wdbench, ycsb


@dataclass
class WorkloadPlans:
    """Unified plans collected for one DBMS over one workload."""

    dbms: str
    plans: Dict[int, UnifiedPlan] = field(default_factory=dict)

    def average_counts(self) -> Dict[OperationCategory, float]:
        """Average operation count per category (one Table VI row)."""
        return average_category_histogram(list(self.plans.values()))

    def producer_counts(self) -> Dict[int, int]:
        """Producer-operation count per query (Figure 4 input)."""
        return {query: producer_count(plan) for query, plan in self.plans.items()}


def collect_tpch_plans(
    dbms_names: Sequence[str] = ("mongodb", "mysql", "neo4j", "postgresql", "tidb"),
    scale: float = 1.0,
    queries: Optional[Sequence[int]] = None,
) -> Dict[str, WorkloadPlans]:
    """Run TPC-H on each DBMS and convert every query plan to UPlan."""
    selected = list(queries or sorted(tpch.QUERIES))
    results: Dict[str, WorkloadPlans] = {}
    for name in dbms_names:
        dialect = create_dialect(name)
        converter = converter_for(name)
        workload = WorkloadPlans(dbms=name)
        if name == "mongodb":
            tpch.load_mongodb(dialect, scale=scale)
            for query_number, (collection, pipeline) in tpch.MONGODB_PIPELINES.items():
                if query_number not in selected:
                    continue
                document = dialect.explain_aggregate(collection, pipeline)
                import json

                workload.plans[query_number] = converter.convert(
                    json.dumps(document, default=str), format="json"
                )
        elif name == "neo4j":
            tpch.load_neo4j(dialect, scale=scale)
            for query_number, cypher in tpch.NEO4J_QUERIES.items():
                if query_number not in selected:
                    continue
                output = dialect.explain(cypher, format="json")
                workload.plans[query_number] = converter.convert(output.text, format="json")
        else:
            tpch.load_into(dialect, scale=scale)
            explain_format = converter.formats[0]
            for query_number in selected:
                query = tpch.QUERIES[query_number]
                output = dialect.explain(query, format=explain_format)
                workload.plans[query_number] = converter.convert(output.text, format=explain_format)
        results[name] = workload
    return results


def table6_rows(plans_by_dbms: Dict[str, WorkloadPlans]) -> List[Dict[str, object]]:
    """Render Table VI: average operations per category per DBMS."""
    rows = []
    for dbms in sorted(plans_by_dbms):
        averages = plans_by_dbms[dbms].average_counts()
        row: Dict[str, object] = {"DBMS": dbms}
        total = 0.0
        for category in OPERATION_CATEGORY_ORDER:
            if category is OperationCategory.CONSUMER:
                continue
            value = round(averages[category], 2)
            row[category.value] = value
            total += value
        row["Sum"] = round(total, 2)
        rows.append(row)
    return rows


def collect_nosql_plans(scale: float = 1.0) -> Dict[str, WorkloadPlans]:
    """Collect plans for YCSB (MongoDB) and WDBench (Neo4j) — Table VII."""
    import json

    results: Dict[str, WorkloadPlans] = {}

    mongodb = create_dialect("mongodb")
    ycsb.load_ycsb(mongodb, records=int(300 * scale) + 50)
    converter = converter_for("mongodb")
    workload = WorkloadPlans(dbms="mongodb")
    commands = ycsb.workload_a(operations=30) + ycsb.workload_scan(operations=10)
    for index, command in enumerate(commands):
        document = mongodb.explain_find(
            command["collection"], command.get("criteria"), limit=command.get("limit")
        )
        workload.plans[index] = converter.convert(json.dumps(document, default=str), format="json")
    results["mongodb"] = workload

    neo4j = create_dialect("neo4j")
    wdbench.load_wdbench(neo4j, entities=int(200 * scale) + 50, edges=int(600 * scale) + 100)
    neo_converter = converter_for("neo4j")
    neo_workload = WorkloadPlans(dbms="neo4j")
    for index, pattern in enumerate(wdbench.generate_patterns(count=30)):
        output = neo4j.explain(pattern, format="json")
        neo_workload.plans[index] = neo_converter.convert(output.text, format="json")
    results["neo4j"] = neo_workload
    return results


def table7_rows(plans_by_dbms: Dict[str, WorkloadPlans]) -> List[Dict[str, object]]:
    """Render Table VII for the YCSB / WDBench workloads."""
    return table6_rows(plans_by_dbms)


def figure4_variances(plans_by_dbms: Dict[str, WorkloadPlans]) -> Dict[int, float]:
    """Per-query variance of Producer-operation counts across DBMSs (Figure 4)."""
    query_numbers = sorted(
        {query for workload in plans_by_dbms.values() for query in workload.plans}
    )
    variances: Dict[int, float] = {}
    for query_number in query_numbers:
        counts = [
            producer_count(workload.plans[query_number])
            for workload in plans_by_dbms.values()
            if query_number in workload.plans
        ]
        if len(counts) < 2:
            variances[query_number] = 0.0
            continue
        mean = sum(counts) / len(counts)
        variances[query_number] = sum((count - mean) ** 2 for count in counts) / len(counts)
    return variances


def high_variance_queries(variances: Dict[int, float], threshold: float = 5.0) -> List[int]:
    """Queries whose Producer-count variance exceeds *threshold* (paper: six)."""
    return sorted(query for query, variance in variances.items() if variance > threshold)
