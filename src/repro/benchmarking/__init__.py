"""Application A.3: cross-DBMS benchmarking on the unified representation."""

from repro.benchmarking import tpch, ycsb, wdbench
from repro.benchmarking.metrics import (
    WorkloadPlans,
    collect_nosql_plans,
    collect_tpch_plans,
    figure4_variances,
    high_variance_queries,
    table6_rows,
    table7_rows,
)
from repro.benchmarking.analysis import (
    Query11Analysis,
    ScanTiming,
    analyse_query11,
    scan_count_comparison,
    unified_text,
)

__all__ = [
    "tpch",
    "ycsb",
    "wdbench",
    "WorkloadPlans",
    "collect_tpch_plans",
    "collect_nosql_plans",
    "table6_rows",
    "table7_rows",
    "figure4_variances",
    "high_variance_queries",
    "Query11Analysis",
    "ScanTiming",
    "analyse_query11",
    "scan_count_comparison",
    "unified_text",
]
