"""A WDBench-style basic-graph-pattern workload for the Neo4j dialect (Table VII).

WDBench consists of Wikidata basic graph patterns; here we generate a
Wikidata-like property graph (items connected by ``P31``/``P279``/... style
relationships) plus a set of single-edge and node-lookup patterns expressed
in the supported Cypher subset.
"""

from __future__ import annotations

import random
from typing import List

PROPERTIES = ("P31", "P279", "P50", "P106", "P131")


def load_wdbench(dialect, entities: int = 400, edges: int = 1200, seed: int = 23) -> None:
    """Load a Wikidata-like graph into the Neo4j dialect."""
    rng = random.Random(seed)
    store = dialect.store
    nodes = []
    for i in range(entities):
        nodes.append(
            store.create_node(
                ["Item"],
                {"qid": f"Q{i}", "label": f"entity {i}", "popularity": rng.randrange(1000)},
            ).node_id
        )
    for _ in range(edges):
        start = rng.choice(nodes)
        end = rng.choice(nodes)
        store.create_relationship(start, rng.choice(PROPERTIES), end, {"rank": rng.random()})
    store.create_index("Item", "qid")


def generate_patterns(count: int = 40, seed: int = 29) -> List[str]:
    """Generate WDBench-style basic graph patterns as Cypher queries."""
    rng = random.Random(seed)
    patterns: List[str] = []
    for index in range(count):
        roll = rng.random()
        predicate = rng.choice(PROPERTIES)
        if roll < 0.5:
            # Single-edge pattern with a filter on the subject.
            patterns.append(
                f"MATCH (s:Item)-[r:{predicate}]->(o:Item) "
                f"WHERE s.popularity > {rng.randrange(500)} RETURN s.qid, o.qid"
            )
        elif roll < 0.8:
            # Edge pattern with aggregation (counting objects per subject).
            patterns.append(
                f"MATCH (s:Item)-[r:{predicate}]->(o:Item) RETURN s.qid, count(o.qid)"
            )
        else:
            # Node lookup by property.
            patterns.append(
                f"MATCH (s:Item) WHERE s.qid = 'Q{rng.randrange(400)}' RETURN s.label"
            )
    return patterns
