"""TPC-H workload: schema, deterministic data generator, and the 22 queries.

The paper evaluates UPlan's benchmarking application on TPC-H (Tables VI,
Figure 4, Listing 4).  The full TPC-H specification uses dates, string
functions, and correlated subqueries beyond the simulated engines' SQL
subset; the queries here are *simplified but faithful* rewrites: every query
touches the same tables, joins, groupings and (sub)query structure as its
original, so the operation-count metrics the paper reports keep their shape.
Dates are encoded as integer day numbers.

For MongoDB the paper rewrites queries 1, 3 and 4 against a single embedded
``orders`` collection; for Neo4j it maps rows to nodes and foreign keys to
relationships.  Both rewrites are provided here as well.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

TPCH_TABLES = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

#: CREATE TABLE statements (types reduced to the simulated engines' subset).
SCHEMA_STATEMENTS: List[str] = [
    "CREATE TABLE region (r_regionkey INT PRIMARY KEY, r_name TEXT)",
    "CREATE TABLE nation (n_nationkey INT PRIMARY KEY, n_name TEXT, n_regionkey INT)",
    "CREATE TABLE supplier (s_suppkey INT PRIMARY KEY, s_name TEXT, s_nationkey INT, s_acctbal FLOAT)",
    "CREATE TABLE customer (c_custkey INT PRIMARY KEY, c_name TEXT, c_nationkey INT, c_acctbal FLOAT, c_mktsegment INT)",
    "CREATE TABLE part (p_partkey INT PRIMARY KEY, p_name TEXT, p_size INT, p_retailprice FLOAT, p_brand INT, p_type INT)",
    "CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_availqty INT, ps_supplycost FLOAT)",
    "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT, o_orderstatus INT, o_totalprice FLOAT, o_orderdate INT, o_orderpriority INT)",
    "CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, l_linenumber INT, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, l_returnflag INT, l_linestatus INT, l_shipdate INT, l_commitdate INT, l_receiptdate INT, l_shipmode INT)",
]

INDEX_STATEMENTS: List[str] = [
    "CREATE INDEX idx_nation_region ON nation(n_regionkey)",
    "CREATE INDEX idx_supplier_nation ON supplier(s_nationkey)",
    "CREATE INDEX idx_customer_nation ON customer(c_nationkey)",
    "CREATE INDEX idx_partsupp_part ON partsupp(ps_partkey)",
    "CREATE INDEX idx_partsupp_supp ON partsupp(ps_suppkey)",
    "CREATE INDEX idx_orders_cust ON orders(o_custkey)",
    "CREATE INDEX idx_lineitem_order ON lineitem(l_orderkey)",
    "CREATE INDEX idx_lineitem_part ON lineitem(l_partkey)",
]

#: Base row counts at scale factor 1/1000 of the official 1 GB scale.
_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10,
    "customer": 150,
    "part": 200,
    "partsupp": 400,
    "orders": 450,
    "lineitem": 1800,
}


def row_counts(scale: float = 1.0) -> Dict[str, int]:
    """Row counts per table for the given (already laptop-sized) scale factor."""
    return {
        table: max(int(count * scale), 1) if table not in ("region", "nation") else count
        for table, count in _BASE_ROWS.items()
    }


def generate_data(scale: float = 1.0, seed: int = 7) -> Dict[str, List[Dict[str, object]]]:
    """Generate deterministic TPC-H-like rows for every table."""
    rng = random.Random(seed)
    counts = row_counts(scale)
    regions = [
        {"r_regionkey": i, "r_name": f"REGION_{i}"} for i in range(counts["region"])
    ]
    nations = [
        {"n_nationkey": i, "n_name": f"NATION_{i}", "n_regionkey": i % counts["region"]}
        for i in range(counts["nation"])
    ]
    suppliers = [
        {
            "s_suppkey": i + 1,
            "s_name": f"Supplier#{i + 1}",
            "s_nationkey": rng.randrange(counts["nation"]),
            "s_acctbal": round(rng.uniform(-999.0, 9999.0), 2),
        }
        for i in range(counts["supplier"])
    ]
    customers = [
        {
            "c_custkey": i + 1,
            "c_name": f"Customer#{i + 1}",
            "c_nationkey": rng.randrange(counts["nation"]),
            "c_acctbal": round(rng.uniform(-999.0, 9999.0), 2),
            "c_mktsegment": rng.randrange(5),
        }
        for i in range(counts["customer"])
    ]
    parts = [
        {
            "p_partkey": i + 1,
            "p_name": f"Part#{i + 1}",
            "p_size": rng.randrange(1, 51),
            "p_retailprice": round(900 + (i % 200) + rng.random(), 2),
            "p_brand": rng.randrange(1, 6),
            "p_type": rng.randrange(1, 26),
        }
        for i in range(counts["part"])
    ]
    partsupps = [
        {
            "ps_partkey": rng.randrange(1, counts["part"] + 1),
            "ps_suppkey": rng.randrange(1, counts["supplier"] + 1),
            "ps_availqty": rng.randrange(1, 10000),
            "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
        }
        for _ in range(counts["partsupp"])
    ]
    orders = [
        {
            "o_orderkey": i + 1,
            "o_custkey": rng.randrange(1, counts["customer"] + 1),
            "o_orderstatus": rng.randrange(3),
            "o_totalprice": round(rng.uniform(1000.0, 400000.0), 2),
            "o_orderdate": rng.randrange(8036, 10592),  # 1992-01-01 .. 1998-12-31 in days
            "o_orderpriority": rng.randrange(1, 6),
        }
        for i in range(counts["orders"])
    ]
    lineitems = [
        {
            "l_orderkey": rng.randrange(1, counts["orders"] + 1),
            "l_partkey": rng.randrange(1, counts["part"] + 1),
            "l_suppkey": rng.randrange(1, counts["supplier"] + 1),
            "l_linenumber": (i % 7) + 1,
            "l_quantity": float(rng.randrange(1, 51)),
            "l_extendedprice": round(rng.uniform(900.0, 100000.0), 2),
            "l_discount": round(rng.uniform(0.0, 0.1), 2),
            "l_tax": round(rng.uniform(0.0, 0.08), 2),
            "l_returnflag": rng.randrange(3),
            "l_linestatus": rng.randrange(2),
            "l_shipdate": rng.randrange(8036, 10592),
            "l_commitdate": rng.randrange(8036, 10592),
            "l_receiptdate": rng.randrange(8036, 10592),
            "l_shipmode": rng.randrange(7),
        }
        for i in range(counts["lineitem"])
    ]
    return {
        "region": regions,
        "nation": nations,
        "supplier": suppliers,
        "customer": customers,
        "part": parts,
        "partsupp": partsupps,
        "orders": orders,
        "lineitem": lineitems,
    }


def load_into(dialect, scale: float = 1.0, seed: int = 7, with_indexes: bool = True) -> None:
    """Create the TPC-H schema and load generated data into a SQL dialect."""
    for statement in SCHEMA_STATEMENTS:
        dialect.execute(statement)
    data = generate_data(scale=scale, seed=seed)
    for table, rows in data.items():
        if not rows:
            continue
        columns = list(rows[0].keys())
        chunks = [rows[i : i + 200] for i in range(0, len(rows), 200)]
        for chunk in chunks:
            values = ", ".join(
                "(" + ", ".join(_sql_literal(row[column]) for column in columns) + ")"
                for row in chunk
            )
            dialect.execute(f"INSERT INTO {table} ({', '.join(columns)}) VALUES {values}")
    if with_indexes:
        for statement in INDEX_STATEMENTS:
            dialect.execute(statement)
    dialect.analyze_tables()


def _sql_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


#: The 22 TPC-H queries, simplified to the supported SQL subset.
QUERIES: Dict[int, str] = {
    1: (
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
        "SUM(l_extendedprice) AS sum_base_price, AVG(l_discount) AS avg_disc, COUNT(*) AS count_order "
        "FROM lineitem WHERE l_shipdate <= 10471 GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    ),
    2: (
        "SELECT s_acctbal, s_name, n_name, p_partkey FROM part, supplier, partsupp, nation, region "
        "WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15 "
        "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_regionkey = 3 "
        "AND ps_supplycost < 500 ORDER BY s_acctbal DESC LIMIT 100"
    ),
    3: (
        "SELECT l_orderkey, SUM(l_extendedprice) AS revenue, o_orderdate FROM customer, orders, lineitem "
        "WHERE c_mktsegment = 1 AND c_custkey = o_custkey AND l_orderkey = o_orderkey "
        "AND o_orderdate < 9204 AND l_shipdate > 9204 GROUP BY l_orderkey, o_orderdate "
        "ORDER BY revenue DESC LIMIT 10"
    ),
    4: (
        "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders "
        "WHERE o_orderdate >= 9131 AND o_orderdate < 9223 AND o_orderkey IN "
        "(SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate) "
        "GROUP BY o_orderpriority ORDER BY o_orderpriority"
    ),
    5: (
        "SELECT n_name, SUM(l_extendedprice) AS revenue FROM customer, orders, lineitem, supplier, nation, region "
        "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey "
        "AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        "AND r_regionkey = 2 AND o_orderdate >= 8766 AND o_orderdate < 9131 "
        "GROUP BY n_name ORDER BY revenue DESC"
    ),
    6: (
        "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
        "WHERE l_shipdate >= 8766 AND l_shipdate < 9131 AND l_discount BETWEEN 0.05 AND 0.07 "
        "AND l_quantity < 24"
    ),
    7: (
        "SELECT n_name, SUM(l_extendedprice) AS revenue FROM supplier, lineitem, orders, customer, nation "
        "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey "
        "AND s_nationkey = n_nationkey AND l_shipdate BETWEEN 9131 AND 9862 "
        "GROUP BY n_name ORDER BY n_name"
    ),
    8: (
        "SELECT o_orderdate, SUM(l_extendedprice) AS mkt_share FROM part, supplier, lineitem, orders, customer, nation, region "
        "WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey "
        "AND o_custkey = c_custkey AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        "AND r_regionkey = 1 AND p_type = 12 GROUP BY o_orderdate ORDER BY o_orderdate"
    ),
    9: (
        "SELECT n_name, SUM(l_extendedprice - l_discount) AS sum_profit FROM part, supplier, lineitem, partsupp, nation "
        "WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey "
        "AND p_partkey = l_partkey AND s_nationkey = n_nationkey AND p_brand = 3 "
        "GROUP BY n_name ORDER BY n_name"
    ),
    10: (
        "SELECT c_custkey, c_name, SUM(l_extendedprice) AS revenue, c_acctbal FROM customer, orders, lineitem, nation "
        "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND o_orderdate >= 8857 "
        "AND o_orderdate < 8948 AND l_returnflag = 2 AND c_nationkey = n_nationkey "
        "GROUP BY c_custkey, c_name, c_acctbal ORDER BY revenue DESC LIMIT 20"
    ),
    11: (
        "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value FROM partsupp, supplier, nation "
        "WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_nationkey = 7 "
        "GROUP BY ps_partkey HAVING SUM(ps_supplycost * ps_availqty) > "
        "(SELECT SUM(ps_supplycost * ps_availqty) * 0.0001 FROM partsupp, supplier, nation "
        "WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_nationkey = 7) "
        "ORDER BY value DESC"
    ),
    12: (
        "SELECT l_shipmode, COUNT(*) AS high_line_count FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND l_shipmode IN (3, 5) AND l_commitdate < l_receiptdate "
        "AND l_shipdate < l_commitdate AND l_receiptdate >= 8766 AND l_receiptdate < 9131 "
        "GROUP BY l_shipmode ORDER BY l_shipmode"
    ),
    13: (
        "SELECT c_count, COUNT(*) AS custdist FROM (SELECT c_custkey AS c_key, COUNT(o_orderkey) AS c_count "
        "FROM customer LEFT JOIN orders ON c_custkey = o_custkey GROUP BY c_custkey) AS c_orders "
        "GROUP BY c_count ORDER BY custdist DESC, c_count DESC"
    ),
    14: (
        "SELECT SUM(l_extendedprice * l_discount) AS promo_revenue FROM lineitem, part "
        "WHERE l_partkey = p_partkey AND l_shipdate >= 9374 AND l_shipdate < 9404"
    ),
    15: (
        "SELECT s_suppkey, s_name, total_revenue FROM supplier, "
        "(SELECT l_suppkey AS supplier_no, SUM(l_extendedprice) AS total_revenue FROM lineitem "
        "WHERE l_shipdate >= 9496 AND l_shipdate < 9587 GROUP BY l_suppkey) AS revenue "
        "WHERE s_suppkey = supplier_no AND total_revenue > 100000 ORDER BY s_suppkey"
    ),
    16: (
        "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt FROM partsupp, part "
        "WHERE p_partkey = ps_partkey AND p_brand <> 4 AND p_size IN (9, 14, 19, 23, 36, 45, 49, 3) "
        "GROUP BY p_brand, p_type, p_size ORDER BY supplier_cnt DESC"
    ),
    17: (
        "SELECT AVG(l_extendedprice) AS avg_yearly FROM lineitem, part "
        "WHERE p_partkey = l_partkey AND p_brand = 2 AND l_quantity < "
        "(SELECT AVG(l_quantity) * 0.2 FROM lineitem)"
    ),
    18: (
        "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) AS total_qty "
        "FROM customer, orders, lineitem WHERE o_orderkey IN "
        "(SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING SUM(l_quantity) > 150) "
        "AND c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice "
        "ORDER BY o_totalprice DESC LIMIT 100"
    ),
    19: (
        "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem, part "
        "WHERE p_partkey = l_partkey AND p_brand = 1 AND l_quantity BETWEEN 1 AND 11 "
        "AND p_size BETWEEN 1 AND 5 AND l_shipmode IN (0, 1)"
    ),
    20: (
        "SELECT s_name FROM supplier, nation WHERE s_suppkey IN "
        "(SELECT ps_suppkey FROM partsupp WHERE ps_partkey IN "
        "(SELECT p_partkey FROM part WHERE p_size > 40) AND ps_availqty > 100) "
        "AND s_nationkey = n_nationkey AND n_nationkey = 3 ORDER BY s_name"
    ),
    21: (
        "SELECT s_name, COUNT(*) AS numwait FROM supplier, lineitem, orders, nation "
        "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND o_orderstatus = 2 "
        "AND l_receiptdate > l_commitdate AND s_nationkey = n_nationkey AND n_nationkey = 20 "
        "GROUP BY s_name ORDER BY numwait DESC, s_name LIMIT 100"
    ),
    22: (
        "SELECT c_nationkey, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal FROM customer "
        "WHERE c_acctbal > (SELECT AVG(c_acctbal) FROM customer WHERE c_acctbal > 0) "
        "AND c_custkey NOT IN (SELECT o_custkey FROM orders) "
        "GROUP BY c_nationkey ORDER BY c_nationkey"
    ),
}

#: MongoDB rewrites of queries 1, 3 and 4, against a single embedded collection.
MONGODB_PIPELINES: Dict[int, Tuple[str, List[Dict[str, object]]]] = {
    1: (
        "orders",
        [
            {"$unwind": "$lineitems"},
            {"$match": {"lineitems.l_shipdate": {"$lte": 10471}}},
            {
                "$group": {
                    "_id": "$lineitems.l_returnflag",
                    "sum_qty": {"$sum": "$lineitems.l_quantity"},
                    "count_order": {"$count": 1},
                }
            },
            {"$sort": {"_id": 1}},
        ],
    ),
    3: (
        "orders",
        [
            {"$match": {"customer.c_mktsegment": 1, "o_orderdate": {"$lt": 9204}}},
            {"$unwind": "$lineitems"},
            {"$match": {"lineitems.l_shipdate": {"$gt": 9204}}},
            {
                "$group": {
                    "_id": "$o_orderkey",
                    "revenue": {"$sum": "$lineitems.l_extendedprice"},
                }
            },
            {"$sort": {"revenue": -1}},
            {"$limit": 10},
        ],
    ),
    4: (
        "orders",
        [
            {"$match": {"o_orderdate": {"$gte": 9131, "$lt": 9223}}},
            {"$group": {"_id": "$o_orderpriority", "order_count": {"$count": 1}}},
            {"$sort": {"_id": 1}},
        ],
    ),
}

#: Neo4j rewrites (nodes = rows, relationships = foreign keys) of queries
#: 1-14 and 16-19, expressed in the supported Cypher subset.
NEO4J_QUERIES: Dict[int, str] = {
    1: "MATCH (l:Lineitem) WHERE l.l_shipdate <= 10471 RETURN sum(l.l_quantity), count(*)",
    2: "MATCH (s:Supplier)-[r:SUPPLIES]->(p:Part) WHERE p.p_size = 15 RETURN s.s_name, p.p_partkey ORDER BY s.s_acctbal DESC LIMIT 100",
    3: "MATCH (o:Orders)-[r:CONTAINS]->(l:Lineitem) WHERE o.o_orderdate < 9204 AND l.l_shipdate > 9204 RETURN o.o_orderkey, sum(l.l_extendedprice)",
    4: "MATCH (o:Orders)-[r:CONTAINS]->(l:Lineitem) WHERE o.o_orderdate >= 9131 AND o.o_orderdate < 9223 RETURN o.o_orderpriority, count(*)",
    5: "MATCH (c:Customer)-[r:PLACED]->(o:Orders) WHERE o.o_orderdate >= 8766 AND o.o_orderdate < 9131 RETURN c.c_nationkey, count(*)",
    6: "MATCH (l:Lineitem) WHERE l.l_shipdate >= 8766 AND l.l_shipdate < 9131 AND l.l_quantity < 24 RETURN sum(l.l_extendedprice)",
    7: "MATCH (s:Supplier)-[r:SHIPPED]->(l:Lineitem) WHERE l.l_shipdate >= 9131 AND l.l_shipdate <= 9862 RETURN s.s_nationkey, sum(l.l_extendedprice)",
    8: "MATCH (o:Orders)-[r:CONTAINS]->(l:Lineitem) WHERE l.l_partkey < 100 RETURN o.o_orderdate, sum(l.l_extendedprice)",
    9: "MATCH (s:Supplier)-[r:SHIPPED]->(l:Lineitem) WHERE l.l_partkey < 60 RETURN s.s_nationkey, sum(l.l_extendedprice)",
    10: "MATCH (c:Customer)-[r:PLACED]->(o:Orders) WHERE o.o_orderdate >= 8857 AND o.o_orderdate < 8948 RETURN c.c_custkey, sum(o.o_totalprice) ORDER BY c.c_custkey LIMIT 20",
    11: "MATCH (s:Supplier)-[r:SUPPLIES]->(p:Part) WHERE s.s_nationkey = 7 RETURN p.p_partkey, sum(r.ps_supplycost)",
    12: "MATCH (o:Orders)-[r:CONTAINS]->(l:Lineitem) WHERE l.l_shipmode <= 5 RETURN l.l_shipmode, count(*)",
    13: "MATCH (c:Customer)-[r:PLACED]->(o:Orders) RETURN c.c_custkey, count(o.o_orderkey)",
    14: "MATCH (l:Lineitem)-[r:OF_PART]->(p:Part) WHERE l.l_shipdate >= 9374 AND l.l_shipdate < 9404 RETURN sum(l.l_extendedprice)",
    16: "MATCH (s:Supplier)-[r:SUPPLIES]->(p:Part) WHERE p.p_brand <> 4 RETURN p.p_brand, count(s.s_suppkey)",
    17: "MATCH (l:Lineitem)-[r:OF_PART]->(p:Part) WHERE p.p_brand = 2 RETURN avg(l.l_extendedprice)",
    18: "MATCH (c:Customer)-[r:PLACED]->(o:Orders) WHERE o.o_totalprice > 150000 RETURN c.c_name, sum(o.o_totalprice) ORDER BY c.c_name LIMIT 100",
    19: "MATCH (l:Lineitem)-[r:OF_PART]->(p:Part) WHERE p.p_brand = 1 AND l.l_quantity <= 11 RETURN sum(l.l_extendedprice)",
}


def load_mongodb(dialect, scale: float = 1.0, seed: int = 7) -> None:
    """Load the embedded-document TPC-H model into the MongoDB dialect."""
    data = generate_data(scale=scale, seed=seed)
    customers = {row["c_custkey"]: row for row in data["customer"]}
    lineitems_by_order: Dict[int, List[Dict[str, object]]] = {}
    for lineitem in data["lineitem"]:
        lineitems_by_order.setdefault(lineitem["l_orderkey"], []).append(lineitem)
    documents = []
    for order in data["orders"]:
        documents.append(
            {
                **order,
                "customer": customers.get(order["o_custkey"], {}),
                "lineitems": lineitems_by_order.get(order["o_orderkey"], []),
            }
        )
    dialect.insert_many("orders", documents)
    dialect.create_index("orders", "o_orderdate")


def load_neo4j(dialect, scale: float = 1.0, seed: int = 7) -> None:
    """Load the graph TPC-H model (rows → nodes, FKs → relationships) into Neo4j."""
    data = generate_data(scale=scale, seed=seed)
    store = dialect.store
    customers = {}
    for row in data["customer"]:
        customers[row["c_custkey"]] = store.create_node(["Customer"], row).node_id
    orders = {}
    for row in data["orders"]:
        orders[row["o_orderkey"]] = store.create_node(["Orders"], row).node_id
        if row["o_custkey"] in customers:
            store.create_relationship(customers[row["o_custkey"]], "PLACED", orders[row["o_orderkey"]])
    parts = {}
    for row in data["part"]:
        parts[row["p_partkey"]] = store.create_node(["Part"], row).node_id
    suppliers = {}
    for row in data["supplier"]:
        suppliers[row["s_suppkey"]] = store.create_node(["Supplier"], row).node_id
    for row in data["partsupp"]:
        if row["ps_suppkey"] in suppliers and row["ps_partkey"] in parts:
            store.create_relationship(
                suppliers[row["ps_suppkey"]], "SUPPLIES", parts[row["ps_partkey"]], row
            )
    for row in data["lineitem"][: max(int(400 * scale), 50)]:
        lineitem_node = store.create_node(["Lineitem"], row).node_id
        if row["l_orderkey"] in orders:
            store.create_relationship(orders[row["l_orderkey"]], "CONTAINS", lineitem_node)
        if row["l_partkey"] in parts:
            store.create_relationship(lineitem_node, "OF_PART", parts[row["l_partkey"]])
        if row["l_suppkey"] in suppliers:
            store.create_relationship(suppliers[row["l_suppkey"]], "SHIPPED", lineitem_node)
    store.create_index("Customer", "c_custkey")
    store.create_index("Orders", "o_orderdate")
