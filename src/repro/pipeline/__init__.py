"""The plan pipeline: canonical, cached, batched ingestion of query plans.

This package is the scale-out layer above the unified representation.  Where
:mod:`repro.converters` turns one raw plan into one
:class:`~repro.core.model.UnifiedPlan`, the pipeline turns *streams* of raw
plans from any mix of the nine DBMSs into a deduplicated corpus:

* :class:`PlanSource` — one raw serialized plan plus its provenance,
* :class:`PlanIngestService` — batched ingestion with source-level dedup,
  LRU-cached conversion (via the
  :class:`~repro.converters.base.ConverterHub`), thread- or process-pooled
  parsing, and fingerprint-level dedup,
* :class:`CoverageStore` — the durable, sharded fingerprint/coverage index
  (append-only JSONL segments keyed by fingerprint prefix, atomic
  save/load, exact cross-process merge) that lets coverage survive
  restarts and campaigns resume,
* :class:`IngestReport` / :class:`ServiceStats` — per-batch and cumulative
  observability (conversions, cache hits, index hits, unique plans,
  per-DBMS splits).

Pipeline invariants:

* **Canonical order** — fingerprints are computed over properties in the
  grammar's category order, so property order never affects plan identity
  (see :meth:`repro.core.model.UnifiedPlan.canonicalize`).
* **Fingerprint stability** — fingerprints depend only on plan content,
  never on process state, so they are stable across processes and runs and
  coverage sets may be merged between campaigns.
* **Frozen plans** — plans returned by the pipeline are shared (between
  duplicates and with the conversion cache) and must not be mutated;
  ``copy()`` first if mutation is needed.
"""

from repro.pipeline.coverage import (
    CoverageSnapshot,
    CoverageStore,
    CoverageStoreError,
    shard_for,
    source_key_digest,
)
from repro.pipeline.ingest import (
    DbmsIngestStats,
    IngestReport,
    IngestedPlan,
    PlanIngestService,
    PlanSource,
    ServiceStats,
)

__all__ = [
    "CoverageSnapshot",
    "CoverageStore",
    "CoverageStoreError",
    "DbmsIngestStats",
    "IngestReport",
    "IngestedPlan",
    "PlanIngestService",
    "PlanSource",
    "ServiceStats",
    "shard_for",
    "source_key_digest",
]
