"""Durable, sharded coverage store for plan fingerprints.

The pipeline's fingerprints are canonical and process-stable by design (see
:meth:`repro.core.model.UnifiedPlan.fingerprint`), which makes coverage sets
mergeable between campaign runs — but the :class:`~repro.pipeline.ingest.PlanIngestService`
index used to die with the process.  :class:`CoverageStore` makes that index
durable and sharded:

* **Shards** — entries are partitioned into ``shard_count`` buckets keyed by
  the fingerprint's leading hex digits, so large corpora split into many
  small segment files and two stores merge shard-by-shard.
* **Append-only segments** — each shard persists as one JSONL segment file
  (``shard-000.jsonl`` …).  A store opened with a directory path appends
  every new record immediately, so a crashed campaign loses at most the
  unflushed tail of each segment; :meth:`load` tolerates a torn final line.
* **Atomic save/load** — :meth:`save` rewrites every segment to a temporary
  file and ``os.replace``-s it into place, then writes the manifest last, so
  a reader never observes a half-written store and two campaign runs in
  different processes can merge their coverage exactly.
* **Record kinds** — besides plan fingerprints (with optional metadata such
  as the structural fingerprint and source DBMS), the store holds a
  *source index* mapping raw-source digests to fingerprints — this is what
  lets a warm-started ingest service skip conversions for already-seen raw
  plans — and *marks*, free-form labels campaigns use to record completed
  rounds for resume.

The store is thread-safe; all mutating operations take an internal lock.

**Sidecar contract** — other durable, per-fingerprint structures may live in
the *same* directory as a store's segments provided their file names do not
collide with ``shard-*.jsonl`` / ``MANIFEST.json``.  Sidecars share the
store's durability primitives (:func:`atomic_write_lines` /
:func:`atomic_write_json` below) and its merge discipline (exact set union).
:class:`repro.similarity.PlanIndex` persists plan embeddings this way
(``sim-*.jsonl`` + ``SIMILARITY.json``), so a campaign directory carries
coverage and its similarity index side by side and both survive crashes the
same way.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

#: Default number of shards; a power of two so hex-prefix keys spread evenly.
DEFAULT_SHARD_COUNT = 16

#: Schema version recorded in the manifest.
_MANIFEST_VERSION = 1

_MANIFEST_NAME = "MANIFEST.json"


def atomic_write_lines(target: str, lines: Iterable[str]) -> int:
    """Write *lines* to *target* via tmp file + fsync + ``os.replace``.

    The write is all-or-nothing: a reader (or a crash) never observes a
    half-written file.  Returns the number of lines written.  This is the
    segment-durability primitive shared by the store and its sidecars.
    """
    tmp = target + ".tmp"
    count = 0
    with open(tmp, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
            count += 1
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    return count


def atomic_write_json(target: str, payload: Dict[str, object]) -> None:
    """Atomically write *payload* as pretty-printed JSON (manifests)."""
    tmp = target + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def shard_for(key: str, shard_count: int) -> int:
    """Map *key* (a fingerprint or digest) to its shard index.

    Fingerprints are hex digests, so the leading four hex digits are a
    uniform shard key; non-hex keys (marks, foreign identifiers) fall back
    to hashing so every string routes deterministically.
    """
    try:
        prefix = int(key[:4], 16)
    except (ValueError, IndexError):
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=4).hexdigest()
        prefix = int(digest, 16)
    return prefix % shard_count


def source_key_digest(dbms: str, format: str, text_hash: str) -> str:
    """Collapse a conversion-cache key into one stable digest string.

    The ingest service keys conversions by ``(canonical dbms, resolved
    format, sha1(source))``; the store persists the triple as a single
    digest so the source index stays one flat mapping.
    """
    joined = "\x00".join((dbms, format, text_hash))
    return hashlib.blake2b(joined.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class CoverageSnapshot:
    """An immutable summary of a store's current contents."""

    entries: int = 0
    sources: int = 0
    marks: int = 0
    shard_count: int = 0
    shard_sizes: List[int] = field(default_factory=list)
    per_dbms: Dict[str, int] = field(default_factory=dict)
    path: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "entries": self.entries,
            "sources": self.sources,
            "marks": self.marks,
            "shard_count": self.shard_count,
            "shard_sizes": list(self.shard_sizes),
            "per_dbms": dict(self.per_dbms),
            "path": self.path,
        }


class CoverageStoreError(Exception):
    """Raised for unrecoverable store problems (e.g. shard-count mismatch)."""


class CoverageStore:
    """A sharded, optionally durable fingerprint/coverage index.

    Parameters
    ----------
    path:
        Directory to persist into.  ``None`` keeps the store purely
        in-memory (``save`` then requires an explicit path).  When the
        directory already holds a store, its contents are loaded and new
        records are appended to the existing segments.
    shard_count:
        Number of segment files.  Must match an existing store's manifest.
    """

    def __init__(
        self, path: Optional[str] = None, shard_count: int = DEFAULT_SHARD_COUNT
    ) -> None:
        if shard_count <= 0:
            raise ValueError("shard_count must be positive")
        self.path = path
        self.shard_count = shard_count
        self._lock = threading.RLock()
        #: fingerprint -> metadata dict (may be empty), per shard.
        self._shards: List[Dict[str, Dict[str, object]]] = []
        #: source digest -> fingerprint, per shard (sharded by the digest).
        self._sources: List[Dict[str, str]] = []
        #: free-form labels (completed campaign rounds etc.), per shard.
        self._marks: List[Set[str]] = []
        self._handles: List[Optional[io.TextIOBase]] = []
        #: Whether records were appended since the last flush (makes
        #: flush() a no-op on the hot path when there is nothing to do).
        self._dirty = False
        self._reset_in_memory()
        if path is not None:
            self._attach(path)

    # -- lifecycle -------------------------------------------------------------

    def _reset_in_memory(self) -> None:
        self._shards = [dict() for _ in range(self.shard_count)]
        self._sources = [dict() for _ in range(self.shard_count)]
        self._marks = [set() for _ in range(self.shard_count)]
        self._close_handles()
        self._handles = [None] * self.shard_count

    def _attach(self, path: str) -> None:
        """Bind the store to *path*, loading any existing segments."""
        os.makedirs(path, exist_ok=True)
        manifest_path = os.path.join(path, _MANIFEST_NAME)
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            stored = int(manifest.get("shard_count", self.shard_count))
            if stored != self.shard_count:
                raise CoverageStoreError(
                    f"store at {path!r} has {stored} shards, "
                    f"requested {self.shard_count}"
                )
        else:
            # A store that crashed before its first save has segments but
            # no manifest; a wrong shard_count would silently drop the
            # out-of-range segments.  Detect stray segments, then write
            # the manifest immediately so future opens validate normally.
            for name in os.listdir(path):
                if not (name.startswith("shard-") and name.endswith(".jsonl")):
                    continue
                try:
                    index = int(name[len("shard-"): -len(".jsonl")])
                except ValueError:
                    continue
                if index >= self.shard_count:
                    raise CoverageStoreError(
                        f"store at {path!r} has segment {name} outside the "
                        f"requested {self.shard_count} shards"
                    )
            self._write_manifest(path)
        self.path = path
        for shard in range(self.shard_count):
            segment = self._segment_path(shard)
            if not os.path.exists(segment):
                continue
            with open(segment, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        # A torn tail from a crashed writer; everything
                        # before it already loaded.  compact() heals it.
                        continue
                    self._apply_record(shard, record)

    @classmethod
    def open(
        cls, path: str, shard_count: int = DEFAULT_SHARD_COUNT
    ) -> "CoverageStore":
        """Open (creating if absent) the store persisted at *path*."""
        return cls(path=path, shard_count=shard_count)

    def close(self) -> None:
        """Flush and close the segment file handles."""
        with self._lock:
            self._close_handles()
            self._handles = [None] * self.shard_count

    def _close_handles(self) -> None:
        for handle in getattr(self, "_handles", []):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass

    def __enter__(self) -> "CoverageStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self._close_handles()
        except Exception:
            pass

    # -- record plumbing -------------------------------------------------------

    def _segment_path(self, shard: int, root: Optional[str] = None) -> str:
        return os.path.join(root or self.path, f"shard-{shard:03d}.jsonl")

    def _apply_record(self, shard: int, record: Dict[str, object]) -> bool:
        """Apply one decoded record to the in-memory index.  True if new."""
        kind = record.get("t")
        if kind == "p":
            fingerprint = record.get("f")
            if not isinstance(fingerprint, str):
                return False
            meta = record.get("m") or {}
            existing = self._shards[shard].get(fingerprint)
            if existing is None:
                self._shards[shard][fingerprint] = dict(meta)
                return True
            # Later records may carry richer metadata (e.g. a structural
            # fingerprint added by a newer writer); merge, never drop.
            for key, value in meta.items():
                existing.setdefault(key, value)
            return False
        if kind == "s":
            digest, fingerprint = record.get("k"), record.get("f")
            if not isinstance(digest, str) or not isinstance(fingerprint, str):
                return False
            if digest in self._sources[shard]:
                return False
            self._sources[shard][digest] = fingerprint
            return True
        if kind == "m":
            label = record.get("k")
            if not isinstance(label, str) or label in self._marks[shard]:
                return False
            self._marks[shard].add(label)
            return True
        return False

    def _append(self, shard: int, record: Dict[str, object]) -> None:
        """Append one record to the shard's segment (durable stores only)."""
        if self.path is None:
            return
        handle = self._handles[shard]
        if handle is None:
            handle = open(self._segment_path(shard), "a", encoding="utf-8")
            self._handles[shard] = handle
        handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
        handle.write("\n")
        self._dirty = True

    # -- core API --------------------------------------------------------------

    def add(self, fingerprint: str, meta: Optional[Dict[str, object]] = None) -> bool:
        """Record *fingerprint*; returns True when it was not yet covered.

        Re-adding a covered fingerprint with richer metadata merges the new
        fields (existing fields win) and — for durable stores — appends the
        enriched record, so learned metadata survives a reload even when no
        explicit :meth:`save` follows.
        """
        with self._lock:
            shard = shard_for(fingerprint, self.shard_count)
            existing = self._shards[shard].get(fingerprint)
            if existing is None:
                self._shards[shard][fingerprint] = dict(meta or {})
                record: Dict[str, object] = {"t": "p", "f": fingerprint}
                if meta:
                    record["m"] = meta
                self._append(shard, record)
                return True
            enriched = False
            for key, value in (meta or {}).items():
                if key not in existing:
                    existing[key] = value
                    enriched = True
            if enriched:
                self._append(shard, {"t": "p", "f": fingerprint, "m": existing})
            return False

    def contains(self, fingerprint: str) -> bool:
        """Whether *fingerprint* is covered."""
        with self._lock:
            shard = shard_for(fingerprint, self.shard_count)
            return fingerprint in self._shards[shard]

    __contains__ = contains

    def get(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The metadata recorded for *fingerprint* (None if not covered)."""
        with self._lock:
            shard = shard_for(fingerprint, self.shard_count)
            meta = self._shards[shard].get(fingerprint)
            return None if meta is None else dict(meta)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(shard) for shard in self._shards)

    def __iter__(self) -> Iterator[str]:
        return iter(self.fingerprints())

    def fingerprints(self) -> List[str]:
        """Every covered fingerprint (shard-major order)."""
        with self._lock:
            collected: List[str] = []
            for shard in self._shards:
                collected.extend(shard)
            return collected

    def structural_fingerprints(self) -> Set[str]:
        """The set of structural fingerprints recorded in entry metadata."""
        with self._lock:
            found: Set[str] = set()
            for shard in self._shards:
                for meta in shard.values():
                    structural = meta.get("s")
                    if isinstance(structural, str):
                        found.add(structural)
            return found

    # -- source index ----------------------------------------------------------

    def map_source(self, digest: str, fingerprint: str) -> bool:
        """Record that the raw source identified by *digest* converts to
        *fingerprint*; returns True when the mapping is new."""
        record = {"t": "s", "k": digest, "f": fingerprint}
        with self._lock:
            shard = shard_for(digest, self.shard_count)
            is_new = self._apply_record(shard, record)
            if is_new:
                self._append(shard, record)
            return is_new

    def lookup_source(self, digest: str) -> Optional[str]:
        """The fingerprint a previously-seen source converts to, if known."""
        with self._lock:
            shard = shard_for(digest, self.shard_count)
            return self._sources[shard].get(digest)

    def source_count(self) -> int:
        """Number of raw-source → fingerprint mappings held."""
        with self._lock:
            return sum(len(shard) for shard in self._sources)

    # -- marks -----------------------------------------------------------------

    def mark(self, label: str) -> bool:
        """Record a free-form completion label; True when newly marked."""
        record = {"t": "m", "k": label}
        with self._lock:
            shard = shard_for(label, self.shard_count)
            is_new = self._apply_record(shard, record)
            if is_new:
                self._append(shard, record)
            return is_new

    def is_marked(self, label: str) -> bool:
        """Whether *label* was previously marked."""
        with self._lock:
            shard = shard_for(label, self.shard_count)
            return label in self._marks[shard]

    def marks(self) -> Set[str]:
        """Every recorded mark."""
        with self._lock:
            collected: Set[str] = set()
            for shard in self._marks:
                collected |= shard
            return collected

    # -- merge -----------------------------------------------------------------

    def merge(
        self,
        other: Union["CoverageStore", Iterable[str], Dict[str, Dict[str, object]]],
    ) -> int:
        """Union *other* into this store; returns newly covered fingerprints.

        Merging is exact set union: fingerprints present in both stores are
        never double-counted, source mappings and marks carry over, and
        metadata merges field-wise (existing fields win).  *other* may be
        another store, a ``fingerprint -> meta`` mapping, or a plain
        iterable of fingerprints.
        """
        added = 0
        if isinstance(other, CoverageStore):
            with other._lock:
                entries = [
                    (fingerprint, dict(meta))
                    for shard in other._shards
                    for fingerprint, meta in shard.items()
                ]
                sources = [
                    (digest, fingerprint)
                    for shard in other._sources
                    for digest, fingerprint in shard.items()
                ]
                marks = [label for shard in other._marks for label in shard]
            for fingerprint, meta in entries:
                if self.add(fingerprint, meta or None):
                    added += 1
            for digest, fingerprint in sources:
                self.map_source(digest, fingerprint)
            for label in marks:
                self.mark(label)
            return added
        if isinstance(other, dict):
            for fingerprint, meta in other.items():
                if self.add(fingerprint, meta or None):
                    added += 1
            return added
        for fingerprint in other:
            if self.add(fingerprint):
                added += 1
        return added

    # -- payload handoff -------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Export the store's full contents as one picklable payload.

        The payload is what a sharded-campaign worker sends back to its
        parent process: plain dicts/lists/sets only, independent of the
        store's shard layout, suitable for :meth:`merge_payload` on any
        other store.  Handles, locks, and the shard structure stay behind.
        """
        with self._lock:
            return {
                "entries": {
                    fingerprint: dict(meta)
                    for shard in self._shards
                    for fingerprint, meta in shard.items()
                },
                "sources": {
                    digest: fingerprint
                    for shard in self._sources
                    for digest, fingerprint in shard.items()
                },
                "marks": sorted(
                    label for shard in self._marks for label in shard
                ),
            }

    def merge_payload(self, payload: Dict[str, object]) -> int:
        """Union a :meth:`to_payload` export into this store.

        Same semantics as :meth:`merge`: exact set union over fingerprints
        (the return value counts the newly covered ones), source mappings
        and marks carry over, metadata merges field-wise with existing
        fields winning.
        """
        added = 0
        for fingerprint, meta in payload.get("entries", {}).items():
            if self.add(fingerprint, meta or None):
                added += 1
        for digest, fingerprint in payload.get("sources", {}).items():
            self.map_source(digest, fingerprint)
        for label in payload.get("marks", ()):
            self.mark(label)
        return added

    # -- snapshot / persistence ------------------------------------------------

    def snapshot(self) -> CoverageSnapshot:
        """An independent summary of the store's current contents."""
        with self._lock:
            per_dbms: Dict[str, int] = {}
            for shard in self._shards:
                for meta in shard.values():
                    dbms = meta.get("d")
                    if isinstance(dbms, str):
                        per_dbms[dbms] = per_dbms.get(dbms, 0) + 1
            return CoverageSnapshot(
                entries=sum(len(shard) for shard in self._shards),
                sources=sum(len(shard) for shard in self._sources),
                marks=sum(len(shard) for shard in self._marks),
                shard_count=self.shard_count,
                shard_sizes=[len(shard) for shard in self._shards],
                per_dbms=per_dbms,
                path=self.path,
            )

    def flush(self) -> None:
        """Flush buffered appends to disk.

        A cheap no-op for in-memory stores and when nothing was appended
        since the last flush — the ingest service calls this once per
        batch, which for single-plan batches is a hot path.
        """
        if self.path is None or not self._dirty:
            return
        with self._lock:
            for handle in self._handles:
                if handle is not None:
                    handle.flush()
            self._dirty = False

    def _shard_records(self, shard: int) -> List[Dict[str, object]]:
        records: List[Dict[str, object]] = []
        for fingerprint in sorted(self._shards[shard]):
            meta = self._shards[shard][fingerprint]
            record: Dict[str, object] = {"t": "p", "f": fingerprint}
            if meta:
                record["m"] = meta
            records.append(record)
        for digest in sorted(self._sources[shard]):
            records.append(
                {"t": "s", "k": digest, "f": self._sources[shard][digest]}
            )
        for label in sorted(self._marks[shard]):
            records.append({"t": "m", "k": label})
        return records

    def _write_segment_atomic(self, shard: int, root: str) -> int:
        """Write one deduplicated segment via tmp-file + rename; line count."""
        return atomic_write_lines(
            self._segment_path(shard, root),
            (
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                for record in self._shard_records(shard)
            ),
        )

    def _write_manifest(self, root: str) -> None:
        atomic_write_json(
            os.path.join(root, _MANIFEST_NAME),
            {
                "version": _MANIFEST_VERSION,
                "shard_count": self.shard_count,
                "entries": sum(len(shard) for shard in self._shards),
                "sources": sum(len(shard) for shard in self._sources),
                "marks": sum(len(shard) for shard in self._marks),
            },
        )

    def save(self, path: Optional[str] = None) -> str:
        """Atomically persist the whole store; returns the directory written.

        Every segment is rewritten deduplicated (tmp file + ``os.replace``)
        and the manifest is written last, so concurrent readers either see
        the previous complete state or the new one — never a torn mix.
        Saving to a new *path* re-binds a previously in-memory store —
        but only into an empty/fresh directory: saving over a *different*
        existing store would silently destroy its contents, so that fails
        loudly (load-and-:meth:`merge` it instead).
        """
        with self._lock:
            root = path or self.path
            if root is None:
                raise CoverageStoreError("in-memory store: save() needs a path")
            if root != self.path and os.path.exists(
                os.path.join(root, _MANIFEST_NAME)
            ):
                raise CoverageStoreError(
                    f"{root!r} already holds a coverage store; open it and "
                    "merge() instead of overwriting"
                )
            os.makedirs(root, exist_ok=True)
            if root == self.path:
                # The append handles hold positions inside files we are about
                # to replace; close them so later appends reopen fresh.
                self._close_handles()
                self._handles = [None] * self.shard_count
            for shard in range(self.shard_count):
                self._write_segment_atomic(shard, root)
            self._write_manifest(root)
            if self.path is None:
                self.path = root
            return root

    def compact(self) -> Tuple[int, int]:
        """Rewrite segments dropping duplicate/torn lines.

        Returns ``(lines_before, lines_after)`` summed over all segments.
        For a durable store this is also how append-only segments that
        accumulated re-merged records are shrunk back to one line per fact.
        """
        with self._lock:
            if self.path is None:
                total = sum(
                    len(self._shard_records(shard))
                    for shard in range(self.shard_count)
                )
                return (total, total)
            before = 0
            for shard in range(self.shard_count):
                segment = self._segment_path(shard)
                if os.path.exists(segment):
                    with open(segment, "r", encoding="utf-8") as handle:
                        before += sum(1 for _ in handle)
            after = 0
            self._close_handles()
            self._handles = [None] * self.shard_count
            for shard in range(self.shard_count):
                after += self._write_segment_atomic(shard, self.path)
            self._write_manifest(self.path)
            return (before, after)
