"""Batched, cached, deduplicating ingestion of raw DBMS query plans.

This module is the pipeline's application layer: it turns raw ``EXPLAIN``
output from any supported DBMS into deduplicated
:class:`~repro.core.model.UnifiedPlan` objects at batch granularity.
The stages are:

1. **Source dedup** — batch entries with an identical ``(dbms, format,
   source-hash)`` key collapse to one conversion before any parsing happens.
2. **Cached conversion** — unique sources convert through the
   :class:`~repro.converters.base.ConverterHub`'s LRU cache (thread-pooled
   when the batch warrants it), so sources seen in earlier batches are not
   re-parsed either.
3. **Fingerprint dedup** — converted plans with equal identity fingerprints
   (see :meth:`~repro.core.model.UnifiedPlan.fingerprint`) collapse to one
   representative, both within the batch and across the service's lifetime.

Invariants the service relies on (and preserves):

* plans returned by the service are **frozen** — they are shared between
  duplicate entries and with the conversion cache, and their fingerprints
  are pre-computed; callers that need to mutate must ``copy()`` first;
* fingerprints are canonical (property-order independent) and stable across
  processes, so coverage sets built from them can be merged between runs.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.converters.base import ConverterHub, default_hub, source_hash
from repro.core.model import UnifiedPlan


@dataclass(frozen=True)
class PlanSource:
    """One raw serialized plan awaiting ingestion."""

    dbms: str
    text: str
    format: Optional[str] = None
    query: str = ""


@dataclass
class IngestedPlan:
    """The outcome of ingesting one :class:`PlanSource`."""

    source: PlanSource
    plan: Optional[UnifiedPlan] = None
    fingerprint: str = ""
    #: Whether this entry triggered an actual conversion (False for source
    #: duplicates within the batch and for conversion-cache hits).
    converted: bool = False
    #: Index of the first batch entry with the same fingerprint, or None if
    #: this entry introduced the fingerprint to the batch.
    duplicate_of: Optional[int] = None
    #: Conversion error message, when the source could not be parsed.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class DbmsIngestStats:
    """Per-DBMS counters of an ingest batch (or of the service lifetime)."""

    sources: int = 0
    conversions: int = 0
    cache_hits: int = 0
    errors: int = 0
    unique_plans: int = 0

    def merge(self, other: "DbmsIngestStats") -> None:
        self.sources += other.sources
        self.conversions += other.conversions
        self.cache_hits += other.cache_hits
        self.errors += other.errors
        # unique_plans is a set size, not additive; the service recomputes it.

    def to_dict(self) -> Dict[str, int]:
        return {
            "sources": self.sources,
            "conversions": self.conversions,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "unique_plans": self.unique_plans,
        }


@dataclass
class IngestReport:
    """Everything :meth:`PlanIngestService.ingest_batch` produced."""

    entries: List[IngestedPlan] = field(default_factory=list)
    #: Number of conversions actually executed for this batch.
    conversions: int = 0
    #: Batch entries served without parsing (intra-batch source duplicates
    #: plus conversion-cache hits from earlier batches).
    cache_hits: int = 0
    #: Distinct identity fingerprints in this batch.
    unique_fingerprints: int = 0
    #: Fingerprints this batch introduced that the service had never seen.
    new_fingerprints: int = 0
    errors: int = 0
    per_dbms: Dict[str, DbmsIngestStats] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def plans(self) -> List[UnifiedPlan]:
        """The batch's deduplicated plans, one per unique fingerprint."""
        seen: Dict[str, UnifiedPlan] = {}
        for entry in self.entries:
            if entry.ok and entry.plan is not None and entry.fingerprint not in seen:
                seen[entry.fingerprint] = entry.plan
        return list(seen.values())

    @property
    def throughput(self) -> float:
        """Ingested sources per second (0.0 for an empty/instant batch)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.entries) / self.elapsed_seconds


@dataclass
class ServiceStats:
    """Cumulative counters over every batch the service has ingested."""

    batches: int = 0
    sources: int = 0
    conversions: int = 0
    cache_hits: int = 0
    errors: int = 0
    unique_plans: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "sources": self.sources,
            "conversions": self.conversions,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "unique_plans": self.unique_plans,
        }


def _default_worker_count() -> int:
    return min(8, max(1, (os.cpu_count() or 2) - 1))


class PlanIngestService:
    """High-throughput ingestion of raw plans into deduplicated UPlans.

    One service wraps one :class:`ConverterHub` (the process-wide default
    unless given) and maintains the cumulative fingerprint index that QPG
    and the testing campaign use as their coverage set.
    """

    def __init__(
        self,
        hub: Optional[ConverterHub] = None,
        max_workers: Optional[int] = None,
        parallel_threshold: int = 8,
    ) -> None:
        self.hub = hub or default_hub()
        self.max_workers = max_workers or _default_worker_count()
        #: Batches with fewer unique sources than this convert sequentially;
        #: thread-pool startup would dominate for tiny batches.
        self.parallel_threshold = parallel_threshold
        self.stats = ServiceStats()
        self._per_dbms: Dict[str, DbmsIngestStats] = {}
        self._seen: Dict[str, UnifiedPlan] = {}

    def _canonical_name(self, dbms: str) -> str:
        """Resolve aliases so 'postgres' and 'postgresql' share one bucket."""
        try:
            return self.hub.resolve_name(dbms)
        except Exception:
            return dbms.strip().lower()

    def _group_key(self, source: PlanSource):
        """Source-identity key for pre-conversion dedup, alias-canonical.

        Returns ``(key, hub_derived)``; hub-derived keys can be handed back
        to :meth:`ConverterHub.convert_traced` to skip re-hashing the text.
        """
        try:
            # The hub's own key also resolves the default format, so
            # format=None and an explicit default-format spelling coincide.
            return self.hub.cache_key(source.dbms, source.text, source.format), True
        except Exception:
            # Unregistered DBMS: group by the raw spelling; the conversion
            # stage will record the per-entry error.
            key = (source.dbms.strip().lower(), source.format, source_hash(source.text))
            return key, False

    # -- single-plan convenience -------------------------------------------------

    def ingest(self, source: PlanSource) -> IngestedPlan:
        """Ingest one source (a batch of one)."""
        report = self.ingest_batch([source])
        return report.entries[0]

    # -- batch ingestion ----------------------------------------------------------

    def ingest_batch(self, sources: Iterable[PlanSource]) -> IngestReport:
        """Ingest *sources*, converting each unique source text exactly once."""
        started = time.perf_counter()
        batch: List[PlanSource] = list(sources)
        report = IngestReport(entries=[IngestedPlan(source) for source in batch])

        # Stage 1: collapse identical sources before converting anything.
        groups: Dict[Tuple[str, Optional[str], str], List[int]] = {}
        hub_derived: Dict[Tuple[str, Optional[str], str], bool] = {}
        for index, source in enumerate(batch):
            key, from_hub = self._group_key(source)
            groups.setdefault(key, []).append(index)
            hub_derived[key] = from_hub

        # Stage 2: convert one representative per group through the hub,
        # reusing the stage-1 key so the source text is hashed only once.
        group_indexes = list(groups.values())
        results = self._convert_many(
            [
                (batch[indexes[0]], key if hub_derived[key] else None)
                for key, indexes in groups.items()
            ]
        )
        for indexes, (plan, error, parsed) in zip(group_indexes, results):
            for index in indexes:
                entry = report.entries[index]
                if error is not None:
                    entry.error = error
                    continue
                entry.plan = plan
                entry.fingerprint = plan.fingerprint()
            # Only the group's representative can have triggered a parse.
            if error is None:
                report.entries[indexes[0]].converted = parsed

        # Stage 3: fingerprint dedup within the batch and against history.
        # Fingerprints new to the whole service are attributed to their
        # (canonical) DBMS incrementally, so no full-index rescan is needed.
        first_with: Dict[str, int] = {}
        new_fingerprints = 0
        new_by_dbms: Dict[str, int] = {}
        for index, entry in enumerate(report.entries):
            if not entry.ok or entry.plan is None:
                continue
            if entry.fingerprint in first_with:
                entry.duplicate_of = first_with[entry.fingerprint]
            else:
                first_with[entry.fingerprint] = index
                if entry.fingerprint not in self._seen:
                    self._seen[entry.fingerprint] = entry.plan
                    new_fingerprints += 1
                    name = self._canonical_name(entry.source.dbms)
                    new_by_dbms[name] = new_by_dbms.get(name, 0) + 1

        # Per-DBMS breakdown (exact: `converted`/`error` are per-entry facts).
        per_dbms_fingerprints: Dict[str, set] = {}
        for entry in report.entries:
            name = self._canonical_name(entry.source.dbms)
            stats = report.per_dbms.setdefault(name, DbmsIngestStats())
            stats.sources += 1
            if not entry.ok:
                stats.errors += 1
            elif entry.converted:
                stats.conversions += 1
            else:
                stats.cache_hits += 1
            if entry.ok:
                per_dbms_fingerprints.setdefault(name, set()).add(entry.fingerprint)
        for name, fingerprints in per_dbms_fingerprints.items():
            report.per_dbms[name].unique_plans = len(fingerprints)

        # Batch-level counters.
        report.errors = sum(stats.errors for stats in report.per_dbms.values())
        report.conversions = sum(stats.conversions for stats in report.per_dbms.values())
        report.cache_hits = sum(stats.cache_hits for stats in report.per_dbms.values())
        report.unique_fingerprints = len(first_with)
        report.new_fingerprints = new_fingerprints
        report.elapsed_seconds = time.perf_counter() - started

        # Cumulative service stats.
        self.stats.batches += 1
        self.stats.sources += len(batch)
        self.stats.conversions += report.conversions
        self.stats.cache_hits += report.cache_hits
        self.stats.errors += report.errors
        self.stats.unique_plans = len(self._seen)
        for name, stats in report.per_dbms.items():
            cumulative = self._per_dbms.setdefault(name, DbmsIngestStats())
            cumulative.merge(stats)
        for name, increment in new_by_dbms.items():
            self._per_dbms.setdefault(name, DbmsIngestStats()).unique_plans += increment
        return report

    def _convert_many(
        self, jobs: Sequence[Tuple[PlanSource, Optional[Tuple[str, str, str]]]]
    ) -> List[Tuple[Optional[UnifiedPlan], Optional[str], bool]]:
        """Convert unique ``(source, precomputed_key)`` jobs, thread-pooled
        for large batches.

        Returns ``(plan, error, parsed)`` triples, where *parsed* records
        whether the hub actually ran a converter (False on a cache hit).
        """

        def convert_one(
            job: Tuple[PlanSource, Optional[Tuple[str, str, str]]],
        ) -> Tuple[Optional[UnifiedPlan], Optional[str], bool]:
            source, key = job
            try:
                plan, parsed = self.hub.convert_traced(
                    source.dbms, source.text, source.format, key=key
                )
                return plan, None, parsed
            except Exception as exc:  # conversion errors become per-entry data
                return None, str(exc), False

        if len(jobs) < self.parallel_threshold or self.max_workers <= 1:
            return [convert_one(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=self.max_workers) as executor:
            return list(executor.map(convert_one, jobs))

    # -- coverage index -----------------------------------------------------------

    def unique_plan_count(self) -> int:
        """Number of distinct plan fingerprints ever ingested."""
        return len(self._seen)

    def fingerprints(self) -> List[str]:
        """Every identity fingerprint the service has seen."""
        return list(self._seen)

    def plan_for(self, fingerprint: str) -> Optional[UnifiedPlan]:
        """The representative plan for *fingerprint*, if ever ingested."""
        return self._seen.get(fingerprint)

    def per_dbms_stats(self) -> Dict[str, DbmsIngestStats]:
        """Cumulative per-DBMS counters (shared objects; do not mutate)."""
        return dict(self._per_dbms)
