"""Batched, cached, deduplicating ingestion of raw DBMS query plans.

This module is the pipeline's application layer: it turns raw ``EXPLAIN``
output from any supported DBMS into deduplicated
:class:`~repro.core.model.UnifiedPlan` objects at batch granularity.
The stages are:

1. **Source dedup** — batch entries with an identical ``(dbms, format,
   source-hash)`` key collapse to one conversion before any parsing happens.
2. **Cached conversion** — unique sources convert through the
   :class:`~repro.converters.base.ConverterHub`'s LRU cache (thread-pooled
   when the batch warrants it), so sources seen in earlier batches are not
   re-parsed either.
3. **Fingerprint dedup** — converted plans with equal identity fingerprints
   (see :meth:`~repro.core.model.UnifiedPlan.fingerprint`) collapse to one
   representative, both within the batch and across the service's lifetime.

On top of the in-process stages, the service integrates the persistent
coverage layer (:mod:`repro.pipeline.coverage`):

* **Warm starts** — with ``persist_to=`` (or an explicit ``coverage=``
  store) the coverage index and a raw-source → fingerprint index survive
  the process.  A warm-started service recognises already-seen raw plans
  *before* converting them and skips the parse entirely, so re-ingesting a
  persisted corpus costs near zero conversions.
* **Process pools** — ``executor="process"`` routes large batches through a
  :class:`~concurrent.futures.ProcessPoolExecutor` (conversion is
  CPU-bound pure Python, so threads alone cannot scale it past the GIL).
  Conversion tasks are picklable ``(dbms, text, format)`` triples handled
  by a per-worker :class:`ConverterHub`; returned plans are seeded back
  into the parent hub's cache.  Small batches fall back to threads.

Invariants the service relies on (and preserves):

* plans returned by the service are **frozen** — they are shared between
  duplicate entries and with the conversion cache, and their fingerprints
  are pre-computed; callers that need to mutate must ``copy()`` first.
  Mutating a returned plan in place invalidates its cached fingerprints:
  the recomputed ``fingerprint()`` then no longer matches the index key
  the plan is filed under (``plan_for``/coverage), silently corrupting
  deduplication for every consumer sharing the object;
* fingerprints are canonical (property-order independent) and stable across
  processes, so coverage sets built from them can be merged between runs.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.converters.base import ConverterHub, default_hub, source_hash
from repro.core.compare import structural_fingerprint
from repro.core.model import UnifiedPlan
from repro.pipeline.coverage import CoverageStore, source_key_digest


#: Per-worker-process converter hub for the process-pool conversion path.
#: Each worker builds its own hub (and name registry) on first use; plans
#: travel back to the parent by pickling, which drops their fingerprint
#: caches, so the parent recomputes (stable) fingerprints on arrival.
_WORKER_HUB: Optional[ConverterHub] = None


def _pool_convert(
    job: Tuple[str, str, Optional[str]],
) -> Tuple[Optional[UnifiedPlan], Optional[str]]:
    """Convert one ``(dbms, text, format)`` triple in a worker process."""
    global _WORKER_HUB
    if _WORKER_HUB is None:
        _WORKER_HUB = ConverterHub()
    dbms, text, format = job
    try:
        return _WORKER_HUB.convert(dbms, text, format), None
    except Exception as exc:  # conversion errors become per-entry data
        return None, str(exc)


@dataclass(frozen=True)
class PlanSource:
    """One raw serialized plan awaiting ingestion."""

    dbms: str
    text: str
    format: Optional[str] = None
    query: str = ""


@dataclass
class IngestedPlan:
    """The outcome of ingesting one :class:`PlanSource`."""

    source: PlanSource
    plan: Optional[UnifiedPlan] = None
    fingerprint: str = ""
    #: Whether this entry triggered an actual conversion (False for source
    #: duplicates within the batch and for conversion-cache hits).
    converted: bool = False
    #: Index of the first batch entry with the same fingerprint, or None if
    #: this entry introduced the fingerprint to the batch.
    duplicate_of: Optional[int] = None
    #: True when the fingerprint was resolved from the persistent coverage
    #: index without converting (warm start); ``plan`` is then only set if a
    #: representative was ingested earlier in this process.
    from_index: bool = False
    #: Conversion error message, when the source could not be parsed.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class DbmsIngestStats:
    """Per-DBMS counters of an ingest batch (or of the service lifetime)."""

    sources: int = 0
    conversions: int = 0
    cache_hits: int = 0
    errors: int = 0
    unique_plans: int = 0

    def merge(self, other: "DbmsIngestStats") -> None:
        self.sources += other.sources
        self.conversions += other.conversions
        self.cache_hits += other.cache_hits
        self.errors += other.errors
        # unique_plans is a set size, not additive; the service recomputes it.

    def to_dict(self) -> Dict[str, int]:
        return {
            "sources": self.sources,
            "conversions": self.conversions,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "unique_plans": self.unique_plans,
        }


@dataclass
class IngestReport:
    """Everything :meth:`PlanIngestService.ingest_batch` produced."""

    entries: List[IngestedPlan] = field(default_factory=list)
    #: Number of conversions actually executed for this batch.
    conversions: int = 0
    #: Batch entries served without parsing (intra-batch source duplicates,
    #: conversion-cache hits from earlier batches, and persistent-index hits).
    cache_hits: int = 0
    #: The subset of ``cache_hits`` resolved from the persistent coverage
    #: index (warm start): the raw source was seen by an earlier run, so the
    #: fingerprint was known without any conversion.
    index_hits: int = 0
    #: Distinct identity fingerprints in this batch.
    unique_fingerprints: int = 0
    #: Fingerprints this batch introduced that the service had never seen.
    new_fingerprints: int = 0
    errors: int = 0
    per_dbms: Dict[str, DbmsIngestStats] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def plans(self) -> List[UnifiedPlan]:
        """The batch's deduplicated plans, one per unique fingerprint.

        Warm-start caveat: entries resolved from the persistent coverage
        index (``from_index``) carry no plan object unless a representative
        was ingested earlier in this process, so on a warm start this list
        can be shorter than ``unique_fingerprints`` — the whole point of the
        index is that those plans were *not* parsed.  Ingest with a fresh
        in-memory service (or consult ``plan_for``/the entries' fingerprints)
        when the plan objects themselves are needed.
        """
        seen: Dict[str, UnifiedPlan] = {}
        for entry in self.entries:
            if entry.ok and entry.plan is not None and entry.fingerprint not in seen:
                seen[entry.fingerprint] = entry.plan
        return list(seen.values())

    @property
    def throughput(self) -> float:
        """Ingested sources per second (0.0 for an empty/instant batch)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.entries) / self.elapsed_seconds


@dataclass
class ServiceStats:
    """Cumulative counters over every batch the service has ingested."""

    batches: int = 0
    sources: int = 0
    conversions: int = 0
    cache_hits: int = 0
    index_hits: int = 0
    errors: int = 0
    unique_plans: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "sources": self.sources,
            "conversions": self.conversions,
            "cache_hits": self.cache_hits,
            "index_hits": self.index_hits,
            "errors": self.errors,
            "unique_plans": self.unique_plans,
        }


def _default_worker_count() -> int:
    return min(8, max(1, (os.cpu_count() or 2) - 1))


class PlanIngestService:
    """High-throughput ingestion of raw plans into deduplicated UPlans.

    One service wraps one :class:`ConverterHub` (the process-wide default
    unless given) and maintains the cumulative fingerprint index that QPG
    and the testing campaign use as their coverage set.  The index lives in
    a :class:`~repro.pipeline.coverage.CoverageStore`; pass ``persist_to=``
    (a directory) to make it durable across processes, in which case the
    service also persists a raw-source index and *skips conversion
    entirely* for sources an earlier run already ingested.

    Parameters
    ----------
    hub:
        The converter hub to parse through (process-wide default if None).
    max_workers:
        Worker count for both the thread and the process conversion path.
    parallel_threshold:
        Batches with fewer unique sources than this convert sequentially;
        pool startup would dominate for tiny batches.
    executor:
        ``"thread"`` (default) or ``"process"``.  The process path parses
        CPU-heavy batches in a :class:`ProcessPoolExecutor` (true
        parallelism beyond the GIL) and falls back to threads for batches
        below *process_threshold* or when no pool can be started.
    process_threshold:
        Minimum number of unconverted unique sources before the process
        pool is engaged.
    persist_to:
        Directory for the durable coverage store.  Existing contents are
        loaded (warm start); new fingerprints are appended per batch.
    coverage:
        An explicit :class:`CoverageStore` to use instead (e.g. one shared
        by several services, or an in-memory store to merge later).  Takes
        precedence over *persist_to*.
    """

    def __init__(
        self,
        hub: Optional[ConverterHub] = None,
        max_workers: Optional[int] = None,
        parallel_threshold: int = 8,
        executor: str = "thread",
        process_threshold: int = 32,
        persist_to: Optional[str] = None,
        coverage: Optional[CoverageStore] = None,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
        self.hub = hub or default_hub()
        self.max_workers = max_workers or _default_worker_count()
        #: Batches with fewer unique sources than this convert sequentially;
        #: thread-pool startup would dominate for tiny batches.
        self.parallel_threshold = parallel_threshold
        self.executor = executor
        self.process_threshold = process_threshold
        if coverage is not None:
            self.coverage = coverage
        else:
            self.coverage = CoverageStore(path=persist_to)
        self.stats = ServiceStats()
        self._per_dbms: Dict[str, DbmsIngestStats] = {}
        self._seen: Dict[str, UnifiedPlan] = {}
        #: Fingerprints whose coverage entry is known complete (metadata
        #: includes the structural fingerprint), so the per-entry dedup
        #: loop can skip the store entirely on repeats — the hot path for
        #: QPG's one-plan-per-query ingests.
        self._indexed: set = set()
        self.stats.unique_plans = len(self.coverage)
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Latched after the first pool failure so a restricted environment
        #: pays the failed pool start-up at most once per service.
        self._pool_broken = False

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down the process pool (if any) and the coverage store."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self.coverage.close()

    def __enter__(self) -> "PlanIngestService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def checkpoint(self) -> Optional[str]:
        """Atomically save the coverage index (durable stores only).

        Appends already flow to disk per batch; ``checkpoint()`` rewrites
        the segments deduplicated and refreshes the manifest, giving other
        processes a consistent point to load or merge from.  Returns the
        directory written, or None for a purely in-memory store.
        """
        if self.coverage.path is None:
            return None
        return self.coverage.save()

    def _canonical_name(self, dbms: str) -> str:
        """Resolve aliases so 'postgres' and 'postgresql' share one bucket."""
        try:
            return self.hub.resolve_name(dbms)
        except Exception:
            return dbms.strip().lower()

    def _group_key(self, source: PlanSource):
        """Source-identity key for pre-conversion dedup, alias-canonical.

        Returns ``(key, hub_derived)``; hub-derived keys can be handed back
        to :meth:`ConverterHub.convert_traced` to skip re-hashing the text.
        """
        try:
            # The hub's own key also resolves the default format, so
            # format=None and an explicit default-format spelling coincide.
            return self.hub.cache_key(source.dbms, source.text, source.format), True
        except Exception:
            # Unregistered DBMS: group by the raw spelling; the conversion
            # stage will record the per-entry error.
            key = (source.dbms.strip().lower(), source.format, source_hash(source.text))
            return key, False

    # -- single-plan convenience -------------------------------------------------

    def ingest(self, source: PlanSource) -> IngestedPlan:
        """Ingest one source (a batch of one)."""
        report = self.ingest_batch([source])
        return report.entries[0]

    # -- batch ingestion ----------------------------------------------------------

    def ingest_batch(self, sources: Iterable[PlanSource]) -> IngestReport:
        """Ingest *sources*, converting each unique source text exactly once."""
        started = time.perf_counter()
        batch: List[PlanSource] = list(sources)
        report = IngestReport(entries=[IngestedPlan(source) for source in batch])

        # Stage 1: collapse identical sources before converting anything.
        groups: Dict[Tuple[str, Optional[str], str], List[int]] = {}
        hub_derived: Dict[Tuple[str, Optional[str], str], bool] = {}
        for index, source in enumerate(batch):
            key, from_hub = self._group_key(source)
            groups.setdefault(key, []).append(index)
            hub_derived[key] = from_hub

        # Stage 2: resolve one representative per group — from the hub's
        # conversion cache, from the persistent source index (warm start:
        # the fingerprint is known without parsing at all), or by actually
        # converting (thread-pooled, or process-pooled for heavy batches).
        group_items = list(groups.items())
        jobs: List[Tuple[PlanSource, Optional[Tuple[str, str, str]]]] = []
        job_positions: List[int] = []
        known_fingerprints: Dict[int, str] = {}
        for position, (key, indexes) in enumerate(group_items):
            if hub_derived[key] and not self.hub.contains_key(key):
                known = self.coverage.lookup_source(source_key_digest(*key))
                if known is not None:
                    known_fingerprints[position] = known
                    continue
            jobs.append((batch[indexes[0]], key if hub_derived[key] else None))
            job_positions.append(position)
        resolved = dict(zip(job_positions, self._convert_many(jobs)))

        for position, (key, indexes) in enumerate(group_items):
            if position in known_fingerprints:
                fingerprint = known_fingerprints[position]
                plan = self._seen.get(fingerprint)
                for index in indexes:
                    entry = report.entries[index]
                    entry.plan = plan
                    entry.fingerprint = fingerprint
                    entry.from_index = True
                continue
            plan, error, parsed = resolved[position]
            for index in indexes:
                entry = report.entries[index]
                if error is not None:
                    entry.error = error
                    continue
                entry.plan = plan
                entry.fingerprint = plan.fingerprint()
            if error is None:
                # Only the group's representative can have triggered a parse.
                report.entries[indexes[0]].converted = parsed
                if parsed and hub_derived[key]:
                    # Remember which raw source this fingerprint came from,
                    # so a future (warm-started) run skips the parse.  Hub
                    # cache hits were mapped when they first parsed, so the
                    # digest work is skipped on repeats.
                    self.coverage.map_source(
                        source_key_digest(*key), plan.fingerprint()
                    )

        # Stage 3: fingerprint dedup within the batch and against the
        # coverage index (which includes fingerprints loaded from disk).
        # Fingerprints new to the whole index are attributed to their
        # (canonical) DBMS incrementally, so no full-index rescan is needed.
        first_with: Dict[str, int] = {}
        new_fingerprints = 0
        new_by_dbms: Dict[str, int] = {}
        # Capture representatives first: a parsed plan may share its
        # fingerprint with an earlier index-hit entry that carried no plan
        # object, and plan_for() must still find it.
        for entry in report.entries:
            if (
                entry.ok
                and entry.plan is not None
                and entry.fingerprint not in self._seen
            ):
                self._seen[entry.fingerprint] = entry.plan
        for index, entry in enumerate(report.entries):
            if not entry.ok or not entry.fingerprint:
                continue
            if entry.fingerprint in first_with:
                entry.duplicate_of = first_with[entry.fingerprint]
                continue
            first_with[entry.fingerprint] = index
            if entry.fingerprint in self._indexed:
                continue  # store entry known complete: nothing to learn
            name = self._canonical_name(entry.source.dbms)
            meta: Dict[str, object] = {"d": name}
            plan = self._seen.get(entry.fingerprint)
            if plan is not None:
                meta["s"] = structural_fingerprint(plan)
            if self.coverage.add(entry.fingerprint, meta):
                new_fingerprints += 1
                new_by_dbms[name] = new_by_dbms.get(name, 0) + 1
            if "s" in meta or "s" in (self.coverage.get(entry.fingerprint) or {}):
                self._indexed.add(entry.fingerprint)

        # Per-DBMS breakdown (exact: `converted`/`error` are per-entry facts).
        per_dbms_fingerprints: Dict[str, set] = {}
        for entry in report.entries:
            name = self._canonical_name(entry.source.dbms)
            stats = report.per_dbms.setdefault(name, DbmsIngestStats())
            stats.sources += 1
            if not entry.ok:
                stats.errors += 1
            elif entry.converted:
                stats.conversions += 1
            else:
                stats.cache_hits += 1
            if entry.ok:
                per_dbms_fingerprints.setdefault(name, set()).add(entry.fingerprint)
        for name, fingerprints in per_dbms_fingerprints.items():
            report.per_dbms[name].unique_plans = len(fingerprints)

        # Batch-level counters.
        report.errors = sum(stats.errors for stats in report.per_dbms.values())
        report.conversions = sum(stats.conversions for stats in report.per_dbms.values())
        report.cache_hits = sum(stats.cache_hits for stats in report.per_dbms.values())
        report.index_hits = sum(1 for entry in report.entries if entry.from_index)
        report.unique_fingerprints = len(first_with)
        report.new_fingerprints = new_fingerprints
        report.elapsed_seconds = time.perf_counter() - started

        # Cumulative service stats.
        self.stats.batches += 1
        self.stats.sources += len(batch)
        self.stats.conversions += report.conversions
        self.stats.cache_hits += report.cache_hits
        self.stats.index_hits += report.index_hits
        self.stats.errors += report.errors
        # Incremental: len(coverage) walks every shard, which would be the
        # dominant cost of single-plan batches.
        self.stats.unique_plans += report.new_fingerprints
        for name, stats in report.per_dbms.items():
            cumulative = self._per_dbms.setdefault(name, DbmsIngestStats())
            cumulative.merge(stats)
        for name, increment in new_by_dbms.items():
            self._per_dbms.setdefault(name, DbmsIngestStats()).unique_plans += increment
        # Checkpoint the (durable) coverage index: appended records flow to
        # the OS per batch, so a crash costs at most the current batch.
        self.coverage.flush()
        return report

    def _convert_many(
        self, jobs: Sequence[Tuple[PlanSource, Optional[Tuple[str, str, str]]]]
    ) -> List[Tuple[Optional[UnifiedPlan], Optional[str], bool]]:
        """Convert unique ``(source, precomputed_key)`` jobs, thread-pooled
        for large batches.

        Returns ``(plan, error, parsed)`` triples, where *parsed* records
        whether the hub actually ran a converter (False on a cache hit).
        """

        def convert_one(
            job: Tuple[PlanSource, Optional[Tuple[str, str, str]]],
        ) -> Tuple[Optional[UnifiedPlan], Optional[str], bool]:
            source, key = job
            try:
                plan, parsed = self.hub.convert_traced(
                    source.dbms, source.text, source.format, key=key
                )
                return plan, None, parsed
            except Exception as exc:  # conversion errors become per-entry data
                return None, str(exc), False

        if (
            self.executor == "process"
            and not self._pool_broken
            and self.max_workers > 1
            and len(jobs) >= self.process_threshold
        ):
            results = self._convert_via_processes(jobs)
            if results is not None:
                return results
            # Pool unavailable (restricted environment): threads still work.
        if len(jobs) < self.parallel_threshold or self.max_workers <= 1:
            return [convert_one(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=self.max_workers) as executor:
            return list(executor.map(convert_one, jobs))

    def _convert_via_processes(
        self, jobs: Sequence[Tuple[PlanSource, Optional[Tuple[str, str, str]]]]
    ) -> Optional[List[Tuple[Optional[UnifiedPlan], Optional[str], bool]]]:
        """Convert *jobs* in the process pool; None when no pool can run.

        Jobs already present in the parent hub's cache resolve locally (a
        cache hit, not a parse); the rest ship as picklable ``(dbms, text,
        format)`` triples to worker processes, each owning a private
        :class:`ConverterHub`.  Returned plans are re-fingerprinted (pickle
        drops the caches; the digest is content-stable) and seeded into the
        parent hub's cache so later batches and services hit it.
        """
        local: Dict[int, Tuple[Optional[UnifiedPlan], Optional[str], bool]] = {}
        remote_positions: List[int] = []
        payload: List[Tuple[str, str, Optional[str]]] = []
        for position, (source, key) in enumerate(jobs):
            if key is not None and self.hub.contains_key(key):
                plan, parsed = self.hub.convert_traced(
                    source.dbms, source.text, source.format, key=key
                )
                local[position] = (plan, None, parsed)
                continue
            remote_positions.append(position)
            # The key's format component is already alias/default-resolved;
            # fall back to the source's own spelling for keyless jobs.
            payload.append(
                (source.dbms, source.text, key[1] if key else source.format)
            )
        outcomes: List[Tuple[Optional[UnifiedPlan], Optional[str]]] = []
        if payload:
            try:
                pool = self._ensure_pool()
                chunksize = max(1, len(payload) // (self.max_workers * 4))
                outcomes = list(
                    pool.map(_pool_convert, payload, chunksize=chunksize)
                )
            except Exception:
                # Pool start-up or dispatch failed (e.g. sandboxed
                # environment without working multiprocessing); the caller
                # falls back to the thread path, and the latch keeps later
                # batches from re-paying the failed start-up.
                self._pool_broken = True
                if self._pool is not None:
                    self._pool.shutdown()
                    self._pool = None
                return None
        for position, (plan, error) in zip(remote_positions, outcomes):
            if plan is not None:
                key = jobs[position][1]
                if key is not None:
                    self.hub.put_cached(key, plan)
                else:
                    plan.fingerprint()
            local[position] = (plan, error, plan is not None)
        return [local[position] for position in range(len(jobs))]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    # -- coverage index -----------------------------------------------------------

    def unique_plan_count(self) -> int:
        """Number of distinct plan fingerprints covered.

        Includes fingerprints loaded from (or merged into) the persistent
        coverage store, not just plans ingested by this process.
        """
        return len(self.coverage)

    def fingerprints(self) -> List[str]:
        """Every identity fingerprint in the coverage index."""
        return self.coverage.fingerprints()

    def plan_for(self, fingerprint: str) -> Optional[UnifiedPlan]:
        """The representative plan for *fingerprint*.

        Only plans actually ingested in this process are held in memory;
        fingerprints known purely from the persistent index return None.
        """
        return self._seen.get(fingerprint)

    def per_dbms_stats(self) -> Dict[str, DbmsIngestStats]:
        """Cumulative per-DBMS counters (shared objects; do not mutate)."""
        return dict(self._per_dbms)
