"""Deterministic plan embeddings: unified plans as fixed-width feature vectors.

:func:`embed_plan` maps a :class:`~repro.core.model.UnifiedPlan` to a fixed
``EMBEDDING_DIMENSIONS``-wide tuple of floats over three feature families:

* **operation-category counts** — one dimension per category in the
  grammar's canonical ``OPERATION_CATEGORY_ORDER`` (Table II's order);
* **property-category counts** — one dimension per category in the
  canonical ``PROPERTY_CATEGORY_ORDER`` (``Cardinality, Cost,
  Configuration, Status``), over plan- and operation-associated properties;
* **tree shape** — node count, depth, leaf count, maximum fan-out, and
  internal-node count;
* **operator-name histogram** — unified operator names (interned through
  :func:`repro.core.naming.intern_identifier`, unstable ``_N`` suffixes
  stripped exactly as the structural fingerprint strips them) hashed into
  ``HISTOGRAM_BUCKETS`` buckets with a content-stable blake2b bucket key.

Determinism contract:

* The embedding is a pure function of plan *content* — ``source_dbms`` and
  ``query`` never contribute, hashing uses blake2b (never Python's
  randomized ``hash()``), so the vector is byte-identical across processes
  and runs, like the Merkle fingerprints.
* Every dimension is an exact non-negative **integer count** represented as
  a float.  This is load-bearing: cosine arithmetic over integer-valued
  float64 vectors (products and sums far below 2**53) is exact, so the
  numpy and pure-list paths of :class:`repro.similarity.PlanIndex` produce
  bit-identical distances.
* The vector is memoised on the plan through the
  :meth:`~repro.core.model.UnifiedPlan.content_cache_get` hooks — the same
  self-validating, dropped-on-pickle cache the fingerprints use — under a
  version-stamped key, so re-embedding a frozen plan is O(1) and a cached
  vector never survives mutation or a format bump.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

from repro.core.categories import (
    OPERATION_CATEGORY_ORDER,
    PROPERTY_CATEGORY_ORDER,
)
from repro.core.compare import strip_unstable_suffix
from repro.core.model import UnifiedPlan
from repro.core.naming import intern_identifier

#: Bump when the feature layout changes; stamped into the cache key and the
#: index manifest so stale vectors are never mixed with current ones.
EMBEDDING_VERSION = 1

#: Operator-name histogram width.  Small enough that vectors stay cheap,
#: large enough that the ~40-name unified vocabulary rarely collides.
HISTOGRAM_BUCKETS = 24

_OPERATION_DIMS = len(OPERATION_CATEGORY_ORDER)
_PROPERTY_DIMS = len(PROPERTY_CATEGORY_ORDER)
_SHAPE_DIMS = 5

#: Total embedding width: 7 operation categories + 4 property categories
#: + 5 tree-shape features + the operator-name histogram.
EMBEDDING_DIMENSIONS = _OPERATION_DIMS + _PROPERTY_DIMS + _SHAPE_DIMS + HISTOGRAM_BUCKETS

_CACHE_KEY = f"embedding:v{EMBEDDING_VERSION}"

#: blake2b bucket keys are content-stable; memoise them per label so the
#: hot path (one embedding per observed plan) hashes each vocabulary name
#: once per process.
_BUCKET_CACHE: Dict[str, int] = {}


def _histogram_bucket(label: str) -> int:
    bucket = _BUCKET_CACHE.get(label)
    if bucket is None:
        digest = hashlib.blake2b(label.encode("utf-8"), digest_size=4).hexdigest()
        bucket = int(digest, 16) % HISTOGRAM_BUCKETS
        if len(_BUCKET_CACHE) < 65536:  # mirror the identifier pool's bound
            _BUCKET_CACHE[label] = bucket
    return bucket


def embed_plan(plan: UnifiedPlan) -> Tuple[float, ...]:
    """Embed *plan* as a deterministic ``EMBEDDING_DIMENSIONS``-tuple.

    The vector is cached on the plan (see module docstring); plans must be
    treated as frozen once embedded, exactly like fingerprinted plans.
    """
    cached = plan.content_cache_get(_CACHE_KEY)
    if cached is not None:
        return cached
    features = [0.0] * EMBEDDING_DIMENSIONS

    category_counts = plan.count_categories()
    for position, category in enumerate(OPERATION_CATEGORY_ORDER):
        features[position] = float(category_counts[category])

    property_counts = plan.count_property_categories()
    for position, category in enumerate(PROPERTY_CATEGORY_ORDER):
        features[_OPERATION_DIMS + position] = float(property_counts[category])

    nodes = plan.nodes()
    leaf_count = 0
    max_fanout = 0
    shape_base = _OPERATION_DIMS + _PROPERTY_DIMS
    histogram_base = shape_base + _SHAPE_DIMS
    for node in nodes:
        fanout = len(node.children)
        if fanout == 0:
            leaf_count += 1
        elif fanout > max_fanout:
            max_fanout = fanout
        operation = node.operation
        name = intern_identifier(strip_unstable_suffix(operation.identifier))
        label = operation.category.value + "->" + name
        features[histogram_base + _histogram_bucket(label)] += 1.0
    features[shape_base] = float(len(nodes))
    features[shape_base + 1] = float(plan.depth())
    features[shape_base + 2] = float(leaf_count)
    features[shape_base + 3] = float(max_fanout)
    features[shape_base + 4] = float(len(nodes) - leaf_count)

    vector = tuple(features)
    plan.content_cache_put(_CACHE_KEY, vector)
    return vector
