"""Plan similarity: embeddings, nearest-neighbour search, and triage.

Exact-fingerprint coverage treats two plans differing by one constant as
distinct while crediting a wildly novel shape the same "+1".  This package
refactors plan identity into a *pluggable similarity* subsystem on top of
the unified representation:

* :func:`embed_plan` — a deterministic, content-pure feature vector per
  plan (operator-name histograms interned via :mod:`repro.core.naming`,
  tree-shape features, property-category counts in the grammar's canonical
  order), cached on the plan like fingerprints;
* :class:`PlanIndex` — a cosine nearest-neighbour index with the
  :mod:`repro.engine.arrays` soft-numpy contract (bit-identical list
  fallback), deterministic ``(distance, fingerprint)`` ordering,
  CoverageStore-sidecar durability, and first-wins exact-union merges for
  sharded-campaign payload handoff;
* :func:`cluster_reports` — similarity-clustered bug-report triage with
  tree-edit-distance exemplar rerank (:func:`repro.core.compare.plan_distance`).

Consumers: :class:`repro.testing.qpg.QueryPlanGuidance` scores candidate
mutations by distance-to-nearest-covered-plan under
``novelty="similarity"`` (the default ``"exact"`` mode is byte-identical to
the pre-similarity behaviour), and
:meth:`repro.testing.campaign.CampaignResult.cluster_reports` triages
Table V reports.
"""

from repro.similarity.embedding import (
    EMBEDDING_DIMENSIONS,
    EMBEDDING_VERSION,
    HISTOGRAM_BUCKETS,
    embed_plan,
)
from repro.similarity.index import (
    PlanIndex,
    PlanIndexError,
    cosine_distance,
)
from repro.similarity.triage import (
    DEFAULT_CLUSTER_THRESHOLD,
    ReportCluster,
    cluster_reports,
)

__all__ = [
    "EMBEDDING_DIMENSIONS",
    "EMBEDDING_VERSION",
    "HISTOGRAM_BUCKETS",
    "embed_plan",
    "PlanIndex",
    "PlanIndexError",
    "cosine_distance",
    "DEFAULT_CLUSTER_THRESHOLD",
    "ReportCluster",
    "cluster_reports",
]
