"""Cosine nearest-neighbour index over plan embeddings.

:class:`PlanIndex` maps fingerprints to embedding vectors and answers
nearest-neighbour queries under cosine distance.  It is built to the same
three contracts as the structures it sits beside:

* **Soft numpy dependency** (the :mod:`repro.engine.arrays` contract) —
  when numpy is importable and enabled, queries run as one matrix·vector
  product over a cached dense matrix; otherwise a pure-list loop computes
  the same distances.  Embedding vectors are integer-valued by construction
  (:mod:`repro.similarity.embedding`), so every product and partial sum is
  exact in float64 and the two paths return **bit-identical** distances —
  not merely close ones.  ``REPRO_DISABLE_NUMPY`` and
  :func:`repro.engine.arrays.set_numpy_enabled` govern this index too.
* **Deterministic ordering** — query results sort by ``(distance,
  fingerprint)``: exact distance ties break by fingerprint, so results are
  stable across shard layouts, insertion orders, numpy on/off, and process
  boundaries.
* **CoverageStore sidecar durability** — with a ``path`` the index persists
  next to a :class:`~repro.pipeline.coverage.CoverageStore`'s segments as
  append-only ``sim-NNN.jsonl`` shards (keyed by the same
  :func:`~repro.pipeline.coverage.shard_for`) plus a ``SIMILARITY.json``
  manifest written last, using the store's tmp-file + ``os.replace``
  primitives.  Loads tolerate a torn final line; :meth:`compact` heals it.
  Merging (:meth:`merge` / :meth:`to_payload` / :meth:`merge_payload`) is
  first-wins exact set union over fingerprints — commutative, associative,
  and idempotent — so :class:`repro.parallel.ShardedCampaign` workers hand
  indexes back to the parent exactly like coverage payloads.
"""

from __future__ import annotations

import json
import math
import os
import threading
from heapq import nsmallest
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engine import arrays
from repro.pipeline.coverage import (
    DEFAULT_SHARD_COUNT,
    atomic_write_json,
    atomic_write_lines,
    shard_for,
)

try:  # pragma: no cover - exercised via both CI jobs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_MANIFEST_NAME = "SIMILARITY.json"
_MANIFEST_VERSION = 1

#: Below this many entries the list loop beats building/consulting the
#: dense matrix; above it the matrix path wins (and stays bit-identical).
_DENSE_MIN_ENTRIES = 8


class PlanIndexError(Exception):
    """Raised for unrecoverable index problems (shard/dimension mismatch)."""


def cosine_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine distance between two equal-width vectors.

    Zero vectors compare at distance 0 to each other and 1 to everything
    else.  For integer-valued vectors the arithmetic is exact (see module
    docstring), which is what makes the numpy path reproducible.
    """
    if len(a) != len(b):
        raise PlanIndexError(
            f"vector width mismatch: {len(a)} vs {len(b)}"
        )
    dot = 0.0
    norm_a = 0.0
    norm_b = 0.0
    for x, y in zip(a, b):
        dot += x * y
        norm_a += x * x
        norm_b += y * y
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0 if norm_a == norm_b else 1.0
    # sqrt(norm_a * norm_b) — one sqrt of the exact product, never
    # sqrt(a)*sqrt(b): for identical vectors the product is a perfect
    # square, whose IEEE sqrt is exact, so self-distance is exactly 0.0.
    # The clamp guards the remaining one-rounding case a few ulps under 0.
    return max(0.0, 1.0 - dot / math.sqrt(norm_a * norm_b))


class PlanIndex:
    """A sharded, optionally durable fingerprint → embedding index.

    Parameters
    ----------
    path:
        Directory to persist into — typically a :class:`CoverageStore`
        directory, where the index's ``sim-*.jsonl`` segments ride as
        sidecars.  ``None`` keeps the index in memory.
    shard_count:
        Number of segment files; must match an existing index's manifest
        (and, when sharing a directory, conventionally the store's).
    """

    def __init__(
        self, path: Optional[str] = None, shard_count: int = DEFAULT_SHARD_COUNT
    ) -> None:
        if shard_count <= 0:
            raise ValueError("shard_count must be positive")
        self.path = path
        self.shard_count = shard_count
        self.dimensions: Optional[int] = None
        self._lock = threading.RLock()
        self._shards: List[Dict[str, Tuple[float, ...]]] = [
            dict() for _ in range(shard_count)
        ]
        self._handles: List[Optional[object]] = [None] * shard_count
        self._dirty = False
        #: Bumped on every mutation; keys the cached dense matrix.
        self._revision = 0
        self._dense: Optional[Tuple[int, List[str], object, object]] = None
        if path is not None:
            self._attach(path)

    # -- lifecycle -------------------------------------------------------------

    def _attach(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)
        manifest_path = os.path.join(path, _MANIFEST_NAME)
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            stored = int(manifest.get("shard_count", self.shard_count))
            if stored != self.shard_count:
                raise PlanIndexError(
                    f"index at {path!r} has {stored} shards, "
                    f"requested {self.shard_count}"
                )
        else:
            # Crashed before the first save: segments without a manifest.
            # Detect out-of-range segments before silently dropping them.
            for name in os.listdir(path):
                if not (name.startswith("sim-") and name.endswith(".jsonl")):
                    continue
                try:
                    index = int(name[len("sim-"): -len(".jsonl")])
                except ValueError:
                    continue
                if index >= self.shard_count:
                    raise PlanIndexError(
                        f"index at {path!r} has segment {name} outside the "
                        f"requested {self.shard_count} shards"
                    )
            self._write_manifest(path)
        self.path = path
        for shard in range(self.shard_count):
            segment = self._segment_path(shard)
            if not os.path.exists(segment):
                continue
            with open(segment, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        # Torn tail from a crashed writer; everything before
                        # it already loaded.  compact() heals the segment.
                        continue
                    self._apply_record(shard, record)

    @classmethod
    def open(
        cls, path: str, shard_count: int = DEFAULT_SHARD_COUNT
    ) -> "PlanIndex":
        """Open (creating if absent) the index persisted at *path*."""
        return cls(path=path, shard_count=shard_count)

    def close(self) -> None:
        """Flush and close the segment file handles."""
        with self._lock:
            self._close_handles()
            self._handles = [None] * self.shard_count

    def _close_handles(self) -> None:
        for handle in getattr(self, "_handles", []):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass

    def __enter__(self) -> "PlanIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self._close_handles()
        except Exception:
            pass

    # -- record plumbing -------------------------------------------------------

    def _segment_path(self, shard: int, root: Optional[str] = None) -> str:
        return os.path.join(root or self.path, f"sim-{shard:03d}.jsonl")

    def _check_dimensions(self, vector: Tuple[float, ...]) -> None:
        if self.dimensions is None:
            self.dimensions = len(vector)
        elif len(vector) != self.dimensions:
            raise PlanIndexError(
                f"vector width {len(vector)} does not match the index "
                f"width {self.dimensions}"
            )

    def _apply_record(self, shard: int, record: Dict[str, object]) -> bool:
        fingerprint = record.get("f")
        vector = record.get("v")
        if not isinstance(fingerprint, str) or not isinstance(vector, list):
            return False
        if fingerprint in self._shards[shard]:
            return False
        values = tuple(float(value) for value in vector)
        self._check_dimensions(values)
        self._shards[shard][fingerprint] = values
        self._revision += 1
        return True

    def _append(self, shard: int, fingerprint: str, vector: Tuple[float, ...]) -> None:
        if self.path is None:
            return
        handle = self._handles[shard]
        if handle is None:
            handle = open(self._segment_path(shard), "a", encoding="utf-8")
            self._handles[shard] = handle
        record = {"f": fingerprint, "v": list(vector)}
        handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
        handle.write("\n")
        self._dirty = True

    # -- core API --------------------------------------------------------------

    def add(self, fingerprint: str, vector: Sequence[float]) -> bool:
        """Record *fingerprint* → *vector*; True when the entry is new.

        First write wins: re-adding an indexed fingerprint never replaces
        its vector (embeddings are content-derived, so conflicting vectors
        for one fingerprint cannot arise from correct callers), which makes
        merges idempotent.
        """
        values = tuple(float(value) for value in vector)
        with self._lock:
            self._check_dimensions(values)
            shard = shard_for(fingerprint, self.shard_count)
            if fingerprint in self._shards[shard]:
                return False
            self._shards[shard][fingerprint] = values
            self._revision += 1
            self._append(shard, fingerprint, values)
            return True

    def contains(self, fingerprint: str) -> bool:
        """Whether *fingerprint* is indexed."""
        with self._lock:
            shard = shard_for(fingerprint, self.shard_count)
            return fingerprint in self._shards[shard]

    __contains__ = contains

    def get(self, fingerprint: str) -> Optional[Tuple[float, ...]]:
        """The vector indexed for *fingerprint* (None when absent)."""
        with self._lock:
            shard = shard_for(fingerprint, self.shard_count)
            return self._shards[shard].get(fingerprint)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(shard) for shard in self._shards)

    def __iter__(self) -> Iterator[str]:
        return iter(self.fingerprints())

    def fingerprints(self) -> List[str]:
        """Every indexed fingerprint, sorted (layout-independent order)."""
        with self._lock:
            collected: List[str] = []
            for shard in self._shards:
                collected.extend(shard)
            collected.sort()
            return collected

    # -- queries ---------------------------------------------------------------

    def _dense_matrix(self):
        """The cached ``(fingerprints, matrix, norms_sq)`` for numpy queries."""
        dense = self._dense
        if dense is not None and dense[0] == self._revision:
            return dense[1], dense[2], dense[3]
        fingerprints: List[str] = []
        vectors: List[Tuple[float, ...]] = []
        for shard in self._shards:
            for fingerprint, vector in shard.items():
                fingerprints.append(fingerprint)
                vectors.append(vector)
        matrix = _np.asarray(vectors, dtype=_np.float64)
        # Squared norms stay exact integers; the sqrt happens per query on
        # the norms_sq * query_norm_sq product (see _distances).
        norms_sq = (matrix * matrix).sum(axis=1)
        self._dense = (self._revision, fingerprints, matrix, norms_sq)
        return fingerprints, matrix, norms_sq

    def _distances(
        self, query: Tuple[float, ...]
    ) -> List[Tuple[float, str]]:
        """``(distance, fingerprint)`` for every entry (unordered)."""
        use_numpy = (
            _np is not None
            and arrays.numpy_enabled()
            and len(self) >= _DENSE_MIN_ENTRIES
        )
        query_norm_sq = 0.0
        for value in query:
            query_norm_sq += value * value
        if use_numpy:
            fingerprints, matrix, norms_sq = self._dense_matrix()
            dots = matrix.dot(_np.asarray(query, dtype=_np.float64))
            if query_norm_sq == 0.0:
                distances = _np.where(norms_sq == 0.0, 0.0, 1.0)
            else:
                # One sqrt of the exact norms_sq product, exactly like the
                # list path and cosine_distance — a perfect square for a
                # self-comparison, so self-distance is exactly 0.0.
                safe = _np.sqrt(
                    _np.where(norms_sq == 0.0, 1.0, norms_sq * query_norm_sq)
                )
                distances = _np.maximum(
                    _np.where(norms_sq == 0.0, 1.0, 1.0 - dots / safe), 0.0
                )
            return [
                (float(distance), fingerprint)
                for distance, fingerprint in zip(distances, fingerprints)
            ]
        pairs: List[Tuple[float, str]] = []
        for shard in self._shards:
            for fingerprint, vector in shard.items():
                dot = 0.0
                norm_sq = 0.0
                for x, y in zip(vector, query):
                    dot += x * y
                    norm_sq += x * x
                if norm_sq == 0.0 or query_norm_sq == 0.0:
                    distance = 0.0 if norm_sq == query_norm_sq else 1.0
                else:
                    distance = max(
                        0.0, 1.0 - dot / math.sqrt(norm_sq * query_norm_sq)
                    )
                pairs.append((distance, fingerprint))
        return pairs

    def query(
        self, vector: Sequence[float], k: int = 1
    ) -> List[Tuple[str, float]]:
        """The *k* nearest entries as ``(fingerprint, distance)`` pairs.

        Results sort by ``(distance, fingerprint)`` — the fingerprint
        tie-break makes the ordering deterministic across shard layouts,
        numpy on/off, and processes.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        query = tuple(float(value) for value in vector)
        with self._lock:
            if self.dimensions is not None and len(query) != self.dimensions:
                raise PlanIndexError(
                    f"query width {len(query)} does not match the index "
                    f"width {self.dimensions}"
                )
            pairs = self._distances(query)
        best = nsmallest(k, pairs)
        return [(fingerprint, distance) for distance, fingerprint in best]

    def nearest(self, vector: Sequence[float]) -> Optional[Tuple[str, float]]:
        """The nearest entry, or None for an empty index."""
        results = self.query(vector, k=1)
        return results[0] if results else None

    def nearest_distance(self, vector: Sequence[float]) -> float:
        """Distance to the nearest entry; 1.0 (maximal) for an empty index."""
        nearest = self.nearest(vector)
        return 1.0 if nearest is None else nearest[1]

    # -- merge / payload handoff -----------------------------------------------

    def merge(
        self, other: Union["PlanIndex", Dict[str, Sequence[float]]]
    ) -> int:
        """Union *other* into this index; returns newly indexed fingerprints.

        First-wins exact set union: commutative and associative over the
        indexed fingerprint *sets*, idempotent, and independent of either
        side's shard layout.
        """
        if isinstance(other, PlanIndex):
            with other._lock:
                entries = [
                    (fingerprint, vector)
                    for shard in other._shards
                    for fingerprint, vector in shard.items()
                ]
        else:
            entries = list(other.items())
        added = 0
        for fingerprint, vector in entries:
            if self.add(fingerprint, vector):
                added += 1
        return added

    def to_payload(self) -> Dict[str, object]:
        """Export the index as one picklable, layout-independent payload.

        This is what a sharded-campaign worker ships back to its parent;
        plain dicts/lists only, suitable for :meth:`merge_payload` on any
        other index.  Floats survive JSON round-trips exactly (json emits
        ``repr``-faithful doubles), so payloads may also ride inside the
        campaign's persisted round files.
        """
        with self._lock:
            return {
                "entries": {
                    fingerprint: list(vector)
                    for shard in self._shards
                    for fingerprint, vector in shard.items()
                },
            }

    def merge_payload(self, payload: Dict[str, object]) -> int:
        """Union a :meth:`to_payload` export into this index."""
        added = 0
        for fingerprint in sorted(payload.get("entries", {})):
            if self.add(fingerprint, payload["entries"][fingerprint]):
                added += 1
        return added

    # -- persistence -----------------------------------------------------------

    def flush(self) -> None:
        """Flush buffered appends to disk (no-op in memory / when clean).

        Also refreshes the manifest so its entry count tracks the durable
        state at every checkpoint, not just after save()/compact().
        """
        if self.path is None or not self._dirty:
            return
        with self._lock:
            for handle in self._handles:
                if handle is not None:
                    handle.flush()
            self._write_manifest(self.path)
            self._dirty = False

    def _shard_lines(self, shard: int) -> Iterable[str]:
        for fingerprint in sorted(self._shards[shard]):
            record = {
                "f": fingerprint,
                "v": list(self._shards[shard][fingerprint]),
            }
            yield json.dumps(record, sort_keys=True, separators=(",", ":"))

    def _write_manifest(self, root: str) -> None:
        atomic_write_json(
            os.path.join(root, _MANIFEST_NAME),
            {
                "version": _MANIFEST_VERSION,
                "shard_count": self.shard_count,
                "entries": sum(len(shard) for shard in self._shards),
                "dimensions": self.dimensions,
            },
        )

    def save(self, path: Optional[str] = None) -> str:
        """Atomically persist the index; returns the directory written.

        Mirrors :meth:`CoverageStore.save`: every segment rewrites through
        a tmp file + ``os.replace`` and the manifest lands last, so readers
        see the old complete state or the new one, never a torn mix.
        Saving an in-memory index to a directory holding a *different*
        index fails loudly instead of clobbering it.
        """
        with self._lock:
            root = path or self.path
            if root is None:
                raise PlanIndexError("in-memory index: save() needs a path")
            if root != self.path and os.path.exists(
                os.path.join(root, _MANIFEST_NAME)
            ):
                raise PlanIndexError(
                    f"{root!r} already holds a similarity index; open it "
                    "and merge() instead of overwriting"
                )
            os.makedirs(root, exist_ok=True)
            if root == self.path:
                self._close_handles()
                self._handles = [None] * self.shard_count
            for shard in range(self.shard_count):
                atomic_write_lines(
                    self._segment_path(shard, root), self._shard_lines(shard)
                )
            self._write_manifest(root)
            if self.path is None:
                self.path = root
            return root

    def compact(self) -> Tuple[int, int]:
        """Rewrite segments dropping duplicate/torn lines.

        Returns ``(lines_before, lines_after)`` summed over all segments.
        """
        with self._lock:
            if self.path is None:
                total = sum(len(shard) for shard in self._shards)
                return (total, total)
            before = 0
            for shard in range(self.shard_count):
                segment = self._segment_path(shard)
                if os.path.exists(segment):
                    with open(segment, "r", encoding="utf-8") as handle:
                        before += sum(1 for _ in handle)
            self._close_handles()
            self._handles = [None] * self.shard_count
            after = 0
            for shard in range(self.shard_count):
                after += atomic_write_lines(
                    self._segment_path(shard), self._shard_lines(shard)
                )
            self._write_manifest(self.path)
            return (before, after)
