"""Similarity-clustered bug-report triage.

A testing campaign attributes every oracle violation to a known bug id, but
distinct bug ids (or duplicate reports folded across rounds) often trigger
through near-identical plans.  :func:`cluster_reports` groups a campaign's
bug reports by plan similarity so a triager reads one exemplar per plan
shape instead of every report:

1. each report's captured trigger plan (``report.trigger_plan``, the
   :meth:`~repro.core.model.UnifiedPlan.to_dict` payload recorded by the
   campaign when the report was filed) is embedded with
   :func:`repro.similarity.embed_plan`;
2. reports greedily join the first existing cluster whose **anchor** (its
   founding report's embedding) lies within ``threshold`` cosine distance —
   nearest anchor wins, exact distance ties resolve to the earliest
   cluster, so clustering is deterministic and independent of numpy on/off;
3. each cluster's exemplar is re-ranked with the public tree-edit distance
   (:func:`repro.core.compare.plan_distance`): the member whose plan
   minimises the total edit distance to its co-members becomes the
   exemplar, ties breaking by structural fingerprint then arrival order.

Reports without a captured plan become singleton clusters in arrival order.
The function is pure — it never mutates the reports — and duck-typed over
any object with ``trigger_plan``, so it clusters live :class:`BugReport`
objects and payload-restored ones identically.  Cluster assignments are
**recomputed wherever they are needed** (in particular by a sharded
campaign's parent after folding worker payloads) rather than shipped across
process boundaries; determinism makes every recomputation agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.compare import plan_distance, structural_fingerprint
from repro.core.model import UnifiedPlan
from repro.similarity.embedding import embed_plan
from repro.similarity.index import cosine_distance

#: Default cosine-distance radius for joining a cluster.  Embeddings are
#: integer count vectors, so 0.15 groups plans sharing operator mix and
#: shape while splitting different plan families (see BENCH_similarity).
DEFAULT_CLUSTER_THRESHOLD = 0.15


@dataclass
class ReportCluster:
    """One similarity cluster of bug reports.

    ``members`` preserves the reports' arrival order; ``exemplar`` is the
    edit-distance medoid of the cluster (see module docstring) and is
    always one of ``members``.
    """

    exemplar: object
    members: List[object] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)


def _trigger_plan(report: object) -> Optional[UnifiedPlan]:
    payload = getattr(report, "trigger_plan", None)
    if not isinstance(payload, dict):
        return None
    try:
        return UnifiedPlan.from_dict(payload)
    except Exception:
        return None


def _rerank_exemplar(
    items: List[Tuple[object, Optional[UnifiedPlan]]]
) -> object:
    """The member minimising total edit distance to its co-members."""
    if len(items) == 1:
        return items[0][0]
    best: Optional[Tuple[int, str, int]] = None
    for position, (_, plan) in enumerate(items):
        total = 0
        for other_position, (_, other_plan) in enumerate(items):
            if other_position != position:
                total += plan_distance(plan, other_plan)
        key = (total, structural_fingerprint(plan), position)
        if best is None or key < best:
            best = key
    return items[best[2]][0]


def cluster_reports(
    reports: Sequence[object],
    *,
    threshold: float = DEFAULT_CLUSTER_THRESHOLD,
) -> List[ReportCluster]:
    """Group *reports* into plan-similarity clusters (see module docstring).

    Deterministic for a given report sequence: greedy nearest-anchor
    assignment in arrival order with fixed tie-breaks, embeddings and
    distances identical with and without numpy.
    """
    clusters: List[dict] = []
    for report in reports:
        plan = _trigger_plan(report)
        if plan is None:
            clusters.append({"anchor": None, "items": [(report, None)]})
            continue
        vector = embed_plan(plan)
        best: Optional[Tuple[float, int]] = None
        for position, cluster in enumerate(clusters):
            if cluster["anchor"] is None:
                continue
            distance = cosine_distance(vector, cluster["anchor"])
            if best is None or distance < best[0]:
                best = (distance, position)
        if best is not None and best[0] <= threshold:
            clusters[best[1]]["items"].append((report, plan))
        else:
            clusters.append({"anchor": vector, "items": [(report, plan)]})
    result: List[ReportCluster] = []
    for cluster in clusters:
        items = cluster["items"]
        if cluster["anchor"] is None:
            exemplar = items[0][0]
        else:
            exemplar = _rerank_exemplar(items)
        result.append(
            ReportCluster(
                exemplar=exemplar, members=[report for report, _ in items]
            )
        )
    return result
