"""Simulated SparkSQL dialect.

SparkSQL is the analytics engine of the study.  Its physical plans are
dominated by Executor-category operations (Exchange, WholeStageCodegen,
ColumnarToRow, AdaptiveSparkPlan), and aggregations are split into
partial/final pairs separated by an ``Exchange hashpartitioning`` — which is
why SparkSQL has the largest Executor operation count in Table II.  Only the
textual ``EXPLAIN`` output (``== Physical Plan ==``) and the Spark UI graph
are officially supported (Table III).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.dialects.base import RawPlan, RawPlanNode, RelationalDialect
from repro.errors import DialectError
from repro.optimizer.cost import CostModel
from repro.optimizer.physical import OpKind, PhysicalNode
from repro.optimizer.planner import PlannerOptions
from repro.sqlparser.printer import print_expression


class SparkSQLDialect(RelationalDialect):
    """The simulated SparkSQL 3.3.2 instance."""

    name = "sparksql"
    version = "3.3.2"
    data_model = "relational"
    plan_formats = ("text", "graph")
    default_format = "text"

    #: Row-count threshold above which a broadcast join is not used.
    broadcast_threshold = 10_000

    def planner_options(self) -> PlannerOptions:
        return PlannerOptions(
            enable_hash_join=True,
            enable_merge_join=True,
            enable_nested_loop_join=True,
            prefer_hash_aggregate=True,
            enable_top_n=True,
        )

    def cost_model(self) -> CostModel:
        return CostModel(seq_page_cost=0.5, parallel_tuple_cost=0.01)

    # ------------------------------------------------------------------ shaping

    def shape_plan(self, physical: PhysicalNode, analyze: bool = False) -> RawPlan:
        shaped = self._shape(physical, analyze)
        root = RawPlanNode("AdaptiveSparkPlan", {"isFinalPlan": not analyze}, [shaped])
        return RawPlan(root=root, properties={})

    def _props(self, node: PhysicalNode, analyze: bool) -> Dict[str, Any]:
        properties: Dict[str, Any] = {"rowCount": int(max(node.estimated_rows, 1))}
        if analyze and node.runtime.executed:
            properties["numOutputRows"] = node.runtime.actual_rows
            properties["estimateFactor"] = round(
                node.runtime.actual_rows / max(node.estimated_rows, 1.0), 2
            )
            bound = node.info.get("size_bound")
            if bound is not None:
                properties["sizeBound"] = int(bound)
        return properties

    def _shape(self, node: PhysicalNode, analyze: bool) -> RawPlanNode:
        kind = node.kind
        children = [self._shape(child, analyze) for child in node.children]
        properties = self._props(node, analyze)

        if kind is OpKind.SEQ_SCAN:
            scan = RawPlanNode(f"Scan ExistingRDD {node.info.get('table')}", properties)
            scan.properties["table"] = node.info.get("table")
            columnar = RawPlanNode("ColumnarToRow", dict(properties), [scan])
            if node.info.get("filter") is not None:
                filter_node = RawPlanNode(
                    f"Filter ({print_expression(node.info['filter'])})",
                    dict(properties),
                    [columnar],
                )
                filter_node.properties["condition"] = print_expression(node.info["filter"])
                return filter_node
            return columnar
        if kind in (OpKind.INDEX_SCAN, OpKind.INDEX_ONLY_SCAN):
            # Spark has no indexes; an index access degenerates into a
            # filtered scan with pushed-down predicates.
            scan = RawPlanNode(f"Scan ExistingRDD {node.info.get('table')}", properties)
            scan.properties["table"] = node.info.get("table")
            pushed = node.info.get("index_condition")
            if pushed is not None:
                scan.properties["PushedFilters"] = print_expression(pushed)
            columnar = RawPlanNode("ColumnarToRow", dict(properties), [scan])
            residual = node.info.get("filter")
            if residual is not None:
                return RawPlanNode(
                    f"Filter ({print_expression(residual)})",
                    dict(properties),
                    [columnar],
                )
            return columnar
        if kind is OpKind.SUBQUERY_SCAN:
            return RawPlanNode("Subquery", properties, children)
        if kind in (OpKind.VALUES, OpKind.RESULT):
            return RawPlanNode("LocalTableScan", properties, children)

        if kind is OpKind.HASH_JOIN:
            small_side = min(child.estimated_rows for child in node.children)
            condition = (
                print_expression(node.info["condition"])
                if node.info.get("condition") is not None
                else ""
            )
            join_type = node.info.get("join_type", "Inner").title()
            if small_side <= self.broadcast_threshold:
                exchange = RawPlanNode("BroadcastExchange", {}, [children[1]])
                return RawPlanNode(
                    f"BroadcastHashJoin [{condition}] {join_type}",
                    properties,
                    [children[0], exchange],
                )
            left_exchange = RawPlanNode("Exchange hashpartitioning", {}, [children[0]])
            right_exchange = RawPlanNode("Exchange hashpartitioning", {}, [children[1]])
            return RawPlanNode(
                f"SortMergeJoin [{condition}] {join_type}",
                properties,
                [left_exchange, right_exchange],
            )
        if kind in (OpKind.SEMI_JOIN, OpKind.ANTI_JOIN):
            # Spark broadcasts the (typically small) subquery side and marks
            # the join type LeftSemi / LeftAnti.
            join_type = "LeftSemi" if kind is OpKind.SEMI_JOIN else "LeftAnti"
            probe = node.info.get("probe")
            condition = (
                f"{print_expression(probe)} = {node.info.get('inner_column')}"
                if probe is not None
                else ""
            )
            exchange = RawPlanNode("BroadcastExchange", {}, [children[1]])
            return RawPlanNode(
                f"BroadcastHashJoin [{condition}] {join_type}",
                properties,
                [children[0], exchange],
            )
        if kind is OpKind.MERGE_JOIN:
            condition = (
                print_expression(node.info["condition"])
                if node.info.get("condition") is not None
                else ""
            )
            return RawPlanNode(
                f"SortMergeJoin [{condition}] Inner", properties, children
            )
        if kind is OpKind.NESTED_LOOP_JOIN:
            return RawPlanNode("BroadcastNestedLoopJoin BuildRight", properties, children)

        if kind in (OpKind.HASH_AGGREGATE, OpKind.SORT_AGGREGATE):
            group_keys = node.info.get("group_keys", [])
            aggregates = node.info.get("aggregates", [])
            keys_text = ", ".join(print_expression(key) for key in group_keys)
            functions_text = ", ".join(print_expression(agg) for agg in aggregates)
            partial = RawPlanNode(
                f"HashAggregate(keys=[{keys_text}], functions=[partial_{functions_text}])",
                dict(properties),
                children,
            )
            exchange = RawPlanNode(
                f"Exchange hashpartitioning({keys_text or 'single'}, 200)", {}, [partial]
            )
            final = RawPlanNode(
                f"HashAggregate(keys=[{keys_text}], functions=[{functions_text}])",
                properties,
                [exchange],
            )
            final.properties["keys"] = keys_text
            final.properties["functions"] = functions_text
            return final

        if kind is OpKind.FILTER:
            raw = RawPlanNode(
                f"Filter ({print_expression(node.info['predicate'])})"
                if node.info.get("predicate") is not None
                else "Filter",
                properties,
                children,
            )
            for subplan in node.info.get("subplans", []):
                raw.children.append(RawPlanNode("Subquery", {}, [self._shape(subplan, analyze)]))
            return raw
        if kind is OpKind.PROJECT:
            items = node.info.get("items", [])
            names = ", ".join(name for _, name in items)
            return RawPlanNode(f"Project [{names}]", properties, children)
        if kind is OpKind.DISTINCT:
            exchange = RawPlanNode("Exchange hashpartitioning", {}, children)
            return RawPlanNode("HashAggregate(keys=[all], functions=[])", properties, [exchange])
        if kind in (OpKind.SORT, OpKind.TOP_N):
            keys = node.info.get("sort_keys", [])
            keys_text = ", ".join(
                print_expression(expr) + (" DESC" if desc else " ASC") for expr, desc in keys
            )
            if kind is OpKind.TOP_N:
                return RawPlanNode(
                    f"TakeOrderedAndProject(limit=?, orderBy=[{keys_text}])",
                    properties,
                    children,
                )
            exchange = RawPlanNode("Exchange rangepartitioning", {}, children)
            return RawPlanNode(f"Sort [{keys_text}], true, 0", properties, [exchange])
        if kind is OpKind.LIMIT:
            return RawPlanNode("CollectLimit", properties, children)
        if kind is OpKind.APPEND:
            return RawPlanNode("Union", properties, children)
        if kind is OpKind.INTERSECT:
            return RawPlanNode("Intersect", properties, children)
        if kind is OpKind.EXCEPT:
            return RawPlanNode("Except", properties, children)
        if kind in (OpKind.MATERIALIZE, OpKind.GATHER, OpKind.HASH_BUILD):
            return RawPlanNode("Exchange SinglePartition", properties, children)
        if kind in (OpKind.INSERT, OpKind.UPDATE, OpKind.DELETE):
            return RawPlanNode(
                f"Execute {kind.value}Command {node.info.get('table')}", properties, children
            )
        if kind in (OpKind.CREATE_TABLE, OpKind.CREATE_INDEX, OpKind.DROP_TABLE):
            return RawPlanNode("Execute CreateTableCommand", properties, children)
        raise DialectError(self.name, f"cannot shape operator {kind.value}")

    # ------------------------------------------------------------------ serialization

    def serialize_plan(self, plan: RawPlan, format_name: str) -> str:
        if format_name == "text":
            return self._serialize_text(plan)
        if format_name == "graph":
            return self._serialize_graph(plan)
        raise DialectError(self.name, f"unknown format {format_name!r}")

    def _serialize_text(self, plan: RawPlan) -> str:
        lines = ["== Physical Plan =="]
        counter = [0]

        def visit(node: RawPlanNode, depth: int) -> None:
            counter[0] += 1
            indent = "   " * depth
            prefix = "+- " if depth > 0 else ""
            stage = f"*({counter[0]}) " if not node.name.startswith(("Exchange", "Adaptive")) else ""
            lines.append(f"{indent}{prefix}{stage}{node.name}")
            for child in node.children:
                visit(child, depth + 1)

        if plan.root is not None:
            visit(plan.root, 0)
        return "\n".join(lines)

    def _serialize_graph(self, plan: RawPlan) -> str:
        lines = ["digraph spark_plan {", "  node [shape=box];"]
        counter = [0]

        def visit(node: RawPlanNode) -> int:
            counter[0] += 1
            node_id = counter[0]
            label = node.name.replace('"', "'")
            lines.append(f'  n{node_id} [label="{label}"];')
            for child in node.children:
                child_id = visit(child)
                lines.append(f"  n{child_id} -> n{node_id};")
            return node_id

        if plan.root is not None:
            visit(plan.root)
        lines.append("}")
        return "\n".join(lines)
