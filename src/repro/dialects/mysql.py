"""Simulated MySQL dialect.

MySQL 8 exposes query plans in three official formats (Table III of the
paper): the traditional tabular ``EXPLAIN`` output, ``FORMAT=JSON`` and the
Workbench graph view.  We additionally provide ``FORMAT=TREE`` (introduced in
8.0.16) since the converters exercise it.  The plan vocabulary is compact —
MySQL does not expose separate projection or filter operators — which is why
its query plans carry fewer operations than PostgreSQL's or TiDB's
(Table VI).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.dialects.base import (
    RawPlan,
    RawPlanNode,
    RelationalDialect,
    format_number,
    render_table_plan,
)
from repro.errors import DialectError
from repro.optimizer.cost import CostModel
from repro.optimizer.physical import OpKind, PhysicalNode
from repro.optimizer.planner import PlannerOptions
from repro.sqlparser.printer import print_expression


class MySQLDialect(RelationalDialect):
    """The simulated MySQL 8.0.32 instance."""

    name = "mysql"
    version = "8.0.32"
    data_model = "relational"
    plan_formats = ("table", "json", "tree", "graph")
    default_format = "table"

    def planner_options(self) -> PlannerOptions:
        return PlannerOptions(
            enable_hash_join=True,
            enable_merge_join=False,
            enable_nested_loop_join=True,
            prefer_hash_aggregate=False,
            enable_top_n=False,
        )

    def cost_model(self) -> CostModel:
        return CostModel(random_page_cost=2.0, cpu_tuple_cost=0.02)

    # ------------------------------------------------------------------ shaping

    def shape_plan(self, physical: PhysicalNode, analyze: bool = False) -> RawPlan:
        root = self._shape(physical, analyze)
        return RawPlan(root=root, properties={})

    def _cost_props(self, node: PhysicalNode, analyze: bool) -> Dict[str, Any]:
        properties: Dict[str, Any] = {
            "cost": round(node.cost.total, 2),
            "rows": int(max(node.estimated_rows, 1)),
        }
        if analyze and node.runtime.executed:
            properties["actual_rows"] = node.runtime.actual_rows
            properties["actual_time_ms"] = round(node.runtime.actual_time_ms, 3)
            properties["estimate_factor"] = round(
                node.runtime.actual_rows / max(node.estimated_rows, 1.0), 2
            )
            bound = node.info.get("size_bound")
            if bound is not None:
                properties["size_bound"] = int(bound)
        return properties

    def _shape(self, node: PhysicalNode, analyze: bool) -> RawPlanNode:
        kind = node.kind
        children = [self._shape(child, analyze) for child in node.children]
        properties = self._cost_props(node, analyze)

        if kind is OpKind.SEQ_SCAN:
            raw = RawPlanNode(f"Table scan on {node.info.get('table')}", properties)
            raw.properties["table"] = node.info.get("table")
            raw.properties["access_type"] = "ALL"
            if node.info.get("filter") is not None:
                parent = RawPlanNode(
                    f"Filter: {print_expression(node.info['filter'])}", dict(properties)
                )
                parent.properties["attached_condition"] = print_expression(node.info["filter"])
                parent.children.append(raw)
                return parent
            return raw

        if kind in (OpKind.INDEX_SCAN, OpKind.INDEX_ONLY_SCAN):
            access = "ref" if kind is OpKind.INDEX_SCAN else "index"
            condition = node.info.get("index_condition")
            label = (
                f"Index lookup on {node.info.get('table')} using {node.info.get('index')}"
                if condition is not None
                else f"Index scan on {node.info.get('table')} using {node.info.get('index')}"
            )
            raw = RawPlanNode(label, properties)
            raw.properties["table"] = node.info.get("table")
            raw.properties["key"] = node.info.get("index")
            raw.properties["access_type"] = access
            if condition is not None:
                raw.properties["index_condition"] = print_expression(condition)
            if node.info.get("filter") is not None:
                raw.properties["attached_condition"] = print_expression(node.info["filter"])
            return raw

        if kind is OpKind.SUBQUERY_SCAN:
            raw = RawPlanNode(
                f"Materialize derived table {node.info.get('alias')}", properties, children
            )
            raw.properties["table"] = node.info.get("alias")
            raw.properties["access_type"] = "ALL"
            return raw

        if kind in (OpKind.VALUES, OpKind.RESULT):
            return RawPlanNode("Rows fetched before execution", properties, children)

        if kind is OpKind.HASH_JOIN:
            join_type = node.info.get("join_type", "INNER").lower()
            raw = RawPlanNode(f"Hash {join_type} join", properties, children)
            if node.info.get("condition") is not None:
                raw.properties["join_condition"] = print_expression(node.info["condition"])
            return raw

        if kind in (OpKind.NESTED_LOOP_JOIN, OpKind.MERGE_JOIN):
            join_type = node.info.get("join_type", "INNER").lower()
            raw = RawPlanNode(f"Nested loop {join_type} join", properties, children)
            if node.info.get("condition") is not None:
                raw.properties["join_condition"] = print_expression(node.info["condition"])
            return raw

        if kind in (OpKind.SEMI_JOIN, OpKind.ANTI_JOIN):
            # MySQL 8 FORMAT=TREE spells decorrelated IN/EXISTS like this.
            label = "Hash semijoin" if kind is OpKind.SEMI_JOIN else "Hash antijoin"
            raw = RawPlanNode(label, properties, children)
            if node.info.get("probe") is not None:
                raw.properties["join_condition"] = (
                    f"{print_expression(node.info['probe'])} = "
                    f"{node.info.get('inner_column')}"
                )
            return raw

        if kind in (OpKind.HASH_AGGREGATE, OpKind.SORT_AGGREGATE):
            group_keys = node.info.get("group_keys", [])
            if node.info.get("deduplicate") or node.info.get("set_operator") == "UNION":
                return RawPlanNode("Union materialize with deduplication", properties, children)
            if group_keys:
                label = "Aggregate using temporary table"
                raw = RawPlanNode(label, properties, children)
                raw.properties["group_by"] = ", ".join(
                    print_expression(key) for key in group_keys
                )
            else:
                raw = RawPlanNode("Aggregate: no GROUP BY", properties, children)
            aggregates = node.info.get("aggregates", [])
            if aggregates:
                raw.properties["functions"] = ", ".join(
                    print_expression(aggregate) for aggregate in aggregates
                )
            return raw

        if kind is OpKind.FILTER:
            predicate = node.info.get("predicate")
            raw = RawPlanNode(
                f"Filter: {print_expression(predicate)}" if predicate is not None else "Filter",
                properties,
                children,
            )
            if predicate is not None:
                raw.properties["attached_condition"] = print_expression(predicate)
            for subplan in node.info.get("subplans", []):
                child = self._shape(subplan, analyze)
                child.properties["select_type"] = "SUBQUERY"
                raw.children.append(child)
            return raw

        if kind is OpKind.PROJECT:
            # MySQL does not expose a projection operator.
            return children[0]

        if kind is OpKind.DISTINCT:
            return RawPlanNode("Temporary table with deduplication", properties, children)

        if kind in (OpKind.SORT, OpKind.TOP_N):
            keys = node.info.get("sort_keys", [])
            rendered = ", ".join(
                print_expression(expression) + (" DESC" if descending else "")
                for expression, descending in keys
            )
            raw = RawPlanNode(f"Sort: {rendered}" if rendered else "Sort", properties, children)
            raw.properties["sort_key"] = rendered
            return raw

        if kind is OpKind.LIMIT:
            limit_expression = node.info.get("limit")
            hint = (
                f"Limit: {print_expression(limit_expression)} row(s)"
                if limit_expression is not None
                else "Limit"
            )
            return RawPlanNode(hint, properties, children)

        if kind is OpKind.APPEND:
            return RawPlanNode("Append", properties, children)
        if kind is OpKind.INTERSECT:
            return RawPlanNode("Intersect materialize", properties, children)
        if kind is OpKind.EXCEPT:
            return RawPlanNode("Except materialize", properties, children)
        if kind in (OpKind.MATERIALIZE, OpKind.GATHER, OpKind.HASH_BUILD):
            return RawPlanNode("Materialize", properties, children)

        if kind in (OpKind.INSERT, OpKind.UPDATE, OpKind.DELETE):
            raw = RawPlanNode(f"{kind.value} on {node.info.get('table')}", properties, children)
            raw.properties["table"] = node.info.get("table")
            return raw
        if kind in (OpKind.CREATE_TABLE, OpKind.CREATE_INDEX, OpKind.DROP_TABLE):
            return RawPlanNode(f"Utility {kind.value}", properties, children)

        raise DialectError(self.name, f"cannot shape operator {kind.value}")

    # ------------------------------------------------------------------ serialization

    def serialize_plan(self, plan: RawPlan, format_name: str) -> str:
        if format_name == "table":
            return self._serialize_table(plan)
        if format_name == "json":
            return self._serialize_json(plan)
        if format_name == "tree":
            return self._serialize_tree(plan)
        if format_name == "graph":
            return self._serialize_graph(plan)
        raise DialectError(self.name, f"unknown format {format_name!r}")

    def _serialize_table(self, plan: RawPlan) -> str:
        columns = [
            "id",
            "select_type",
            "table",
            "type",
            "possible_keys",
            "key",
            "rows",
            "filtered",
            "Extra",
        ]

        def row_builder(node: RawPlanNode, node_id: int, parent_id, depth: int) -> List[str]:
            select_type = node.properties.get("select_type", "SIMPLE")
            table = node.properties.get("table", "")
            access = node.properties.get("access_type", "")
            key = node.properties.get("key", "")
            rows = node.properties.get("rows", "")
            extras = []
            if "attached_condition" in node.properties:
                extras.append("Using where")
            if "index_condition" in node.properties:
                extras.append("Using index condition")
            if node.name.startswith("Sort"):
                extras.append("Using filesort")
            if "temporary" in node.name.lower():
                extras.append("Using temporary")
            return [
                str(node_id),
                select_type,
                table or "",
                access,
                key or "",
                key or "",
                str(rows),
                "100.00",
                "; ".join(extras),
            ]

        # The tabular format only lists table-access rows, as real MySQL does.
        table_plan = RawPlan(root=None, properties=dict(plan.properties))
        table_nodes = [
            node
            for node in (plan.root.walk() if plan.root else [])
            if node.properties.get("table")
        ]
        if not table_nodes and plan.root is not None:
            table_nodes = [plan.root]
        pseudo_root = RawPlanNode("__root__", {}, [])
        pseudo_root.children = [
            RawPlanNode(node.name, dict(node.properties)) for node in table_nodes
        ]
        lines = render_table_plan(
            RawPlan(root=pseudo_root, properties={}), columns, row_builder
        ).splitlines()
        # Drop the pseudo-root row (id 1, blank table).
        filtered = [
            line
            for index, line in enumerate(lines)
            if not (index == 3 and "__root__" in line)
        ]
        return "\n".join(filtered)

    def _serialize_json(self, plan: RawPlan) -> str:
        def node_to_dict(node: RawPlanNode) -> Dict[str, Any]:
            data: Dict[str, Any] = {"operation": node.name}
            data.update(
                {
                    key: value
                    for key, value in node.properties.items()
                    if key not in ("select_type",)
                }
            )
            if node.children:
                data["nested_operations"] = [node_to_dict(child) for child in node.children]
            return data

        document = {
            "query_block": {
                "select_id": 1,
                "cost_info": {
                    "query_cost": str(
                        plan.root.properties.get("cost", 0.0) if plan.root else 0.0
                    )
                },
            }
        }
        if plan.root is not None:
            document["query_block"]["plan"] = node_to_dict(plan.root)
        return json.dumps(document, indent=2)

    def _serialize_tree(self, plan: RawPlan) -> str:
        lines: List[str] = []

        def visit(node: RawPlanNode, depth: int) -> None:
            indent = "    " * depth
            cost = node.properties.get("cost", 0.0)
            rows = node.properties.get("rows", 0)
            lines.append(f"{indent}-> {node.name}  (cost={cost} rows={rows})")
            for child in node.children:
                visit(child, depth + 1)

        if plan.root is not None:
            visit(plan.root, 0)
        return "\n".join(lines)

    def _serialize_graph(self, plan: RawPlan) -> str:
        lines = ["digraph mysql_plan {", "  rankdir=BT;", "  node [shape=record];"]
        counter = [0]

        def visit(node: RawPlanNode) -> int:
            counter[0] += 1
            node_id = counter[0]
            label = node.name.replace('"', "'")
            lines.append(f'  n{node_id} [label="{label}"];')
            for child in node.children:
                child_id = visit(child)
                lines.append(f"  n{child_id} -> n{node_id};")
            return node_id

        if plan.root is not None:
            visit(plan.root)
        lines.append("}")
        return "\n".join(lines)
