"""Simulated PostgreSQL dialect.

Reproduces the structure of PostgreSQL 14 query plans as used throughout the
paper (Listing 1, Figure 2, Listing 4): ``Seq Scan`` / ``Index Scan`` leaves
with ``Filter`` and ``Index Cond`` properties, ``Hash Join`` with a separate
``Hash`` build child, ``HashAggregate`` / ``GroupAggregate``, ``Append`` for
set operations, ``Gather`` for parallel scans, and ``cost= rows= width=``
annotations.  Serialized formats: text, JSON, XML, YAML (Table III), plus a
DOT rendering standing in for the pgAdmin graph view.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.dialects.base import (
    RawPlan,
    RawPlanNode,
    RelationalDialect,
    format_number,
    render_json_plan,
)
from repro.errors import DialectError
from repro.optimizer.cost import CostModel
from repro.optimizer.physical import OpKind, PhysicalNode
from repro.optimizer.planner import PlannerOptions
from repro.sqlparser.printer import print_expression


class PostgreSQLDialect(RelationalDialect):
    """The simulated PostgreSQL 14.7 instance."""

    name = "postgresql"
    version = "14.7"
    data_model = "relational"
    plan_formats = ("text", "table", "json", "xml", "yaml", "graph")
    default_format = "text"

    #: Tables with at least this many rows get a parallel plan (Gather).
    parallel_threshold = 50_000

    def planner_options(self) -> PlannerOptions:
        return PlannerOptions(
            enable_hash_join=True,
            enable_merge_join=True,
            enable_nested_loop_join=True,
            prefer_hash_aggregate=True,
            parallel_threshold_rows=self.parallel_threshold,
        )

    def cost_model(self) -> CostModel:
        return CostModel()

    # ------------------------------------------------------------------ shaping

    def shape_plan(self, physical: PhysicalNode, analyze: bool = False) -> RawPlan:
        root = self._shape(physical, analyze)
        plan = RawPlan(root=root)
        plan.properties["Planning Time"] = round(0.05 + 0.01 * physical.size(), 3)
        if analyze:
            plan.properties["Execution Time"] = round(
                physical.runtime.actual_time_ms, 3
            )
        return plan

    def _common_properties(self, node: PhysicalNode, analyze: bool) -> Dict[str, Any]:
        properties: Dict[str, Any] = {
            "Startup Cost": round(node.cost.startup, 2),
            "Total Cost": round(node.cost.total, 2),
            "Plan Rows": int(max(node.estimated_rows, 1)),
            "Plan Width": node.width,
        }
        if analyze and node.runtime.executed:
            properties["Actual Rows"] = node.runtime.actual_rows
            properties["Actual Total Time"] = round(node.runtime.actual_time_ms, 3)
            properties["Actual Loops"] = max(node.runtime.loops, 1)
            # Estimated-vs-actual misestimation factor plus the proven
            # intermediate-size bound (repro.optimizer.bounds): an actual
            # row count above the bound is an engine bug, never a
            # misestimate — the campaign's "Bound" oracle reports it.
            properties["Estimate Factor"] = round(
                node.runtime.actual_rows / max(node.estimated_rows, 1.0), 2
            )
            bound = node.info.get("size_bound")
            if bound is not None:
                properties["Size Bound"] = int(bound)
        return properties

    def _shape(self, node: PhysicalNode, analyze: bool) -> RawPlanNode:
        kind = node.kind
        children = [self._shape(child, analyze) for child in node.children]
        properties = self._common_properties(node, analyze)

        if kind is OpKind.SEQ_SCAN:
            raw = RawPlanNode("Seq Scan", properties)
            raw.properties["Relation Name"] = node.info.get("table")
            raw.properties["Alias"] = node.info.get("alias")
            if node.info.get("filter") is not None:
                raw.properties["Filter"] = print_expression(node.info["filter"])
            if node.info.get("table_rows", 0) >= self.parallel_threshold:
                raw.name = "Parallel Seq Scan"
                gather = RawPlanNode("Gather", dict(properties))
                gather.properties["Workers Planned"] = 2
                gather.children.append(raw)
                return gather
            return raw

        if kind in (OpKind.INDEX_SCAN, OpKind.INDEX_ONLY_SCAN):
            label = "Index Scan" if kind is OpKind.INDEX_SCAN else "Index Only Scan"
            raw = RawPlanNode(label, properties)
            raw.properties["Relation Name"] = node.info.get("table")
            raw.properties["Alias"] = node.info.get("alias")
            raw.properties["Index Name"] = node.info.get("index")
            if node.info.get("index_condition") is not None:
                raw.properties["Index Cond"] = print_expression(node.info["index_condition"])
            if node.info.get("filter") is not None:
                raw.properties["Filter"] = print_expression(node.info["filter"])
            return raw

        if kind is OpKind.SUBQUERY_SCAN:
            raw = RawPlanNode("Subquery Scan", properties, children)
            raw.properties["Alias"] = node.info.get("alias")
            if node.info.get("filter") is not None:
                raw.properties["Filter"] = print_expression(node.info["filter"])
            return raw

        if kind is OpKind.VALUES:
            return RawPlanNode("Values Scan", properties, children)

        if kind is OpKind.RESULT:
            return RawPlanNode("Result", properties, children)

        if kind is OpKind.HASH_JOIN:
            raw = RawPlanNode("Hash Join", properties)
            raw.properties["Join Type"] = node.info.get("join_type", "Inner").title()
            if node.info.get("condition") is not None:
                raw.properties["Hash Cond"] = print_expression(node.info["condition"])
            raw.children.append(children[0])
            hash_node = RawPlanNode(
                "Hash", self._common_properties(node.children[1], analyze)
            )
            hash_node.children.append(children[1])
            raw.children.append(hash_node)
            return raw

        if kind in (OpKind.SEMI_JOIN, OpKind.ANTI_JOIN):
            # PostgreSQL displays decorrelated IN/EXISTS as semi/anti hash
            # joins, with the inner side behind a Hash build, exactly like a
            # plain hash join.
            label = "Hash Semi Join" if kind is OpKind.SEMI_JOIN else "Hash Anti Join"
            raw = RawPlanNode(label, properties)
            raw.properties["Join Type"] = node.info.get("join_type", "Semi")
            if node.info.get("probe") is not None:
                raw.properties["Hash Cond"] = (
                    f"{print_expression(node.info['probe'])} = "
                    f"{node.info.get('inner_column')}"
                )
            raw.children.append(children[0])
            hash_node = RawPlanNode(
                "Hash", self._common_properties(node.children[1], analyze)
            )
            hash_node.children.append(children[1])
            raw.children.append(hash_node)
            return raw

        if kind is OpKind.MERGE_JOIN:
            raw = RawPlanNode("Merge Join", properties)
            raw.properties["Join Type"] = node.info.get("join_type", "Inner").title()
            if node.info.get("condition") is not None:
                raw.properties["Merge Cond"] = print_expression(node.info["condition"])
            for child, physical_child in zip(children, node.children):
                sort = RawPlanNode("Sort", dict(self._common_properties(physical_child, analyze)))
                if node.info.get("condition") is not None:
                    sort.properties["Sort Key"] = print_expression(node.info["condition"])
                sort.children.append(child)
                raw.children.append(sort)
            return raw

        if kind is OpKind.NESTED_LOOP_JOIN:
            raw = RawPlanNode("Nested Loop", properties, children)
            raw.properties["Join Type"] = node.info.get("join_type", "Inner").title()
            if node.info.get("condition") is not None:
                raw.properties["Join Filter"] = print_expression(node.info["condition"])
            return raw

        if kind is OpKind.HASH_AGGREGATE:
            raw = RawPlanNode("HashAggregate", properties, children)
            group_keys = node.info.get("group_keys", [])
            if group_keys:
                raw.properties["Group Key"] = ", ".join(
                    print_expression(key) for key in group_keys
                )
            return raw

        if kind is OpKind.SORT_AGGREGATE:
            group_keys = node.info.get("group_keys", [])
            label = "GroupAggregate" if group_keys else "Aggregate"
            raw = RawPlanNode(label, properties, children)
            if group_keys:
                raw.properties["Group Key"] = ", ".join(
                    print_expression(key) for key in group_keys
                )
            return raw

        if kind is OpKind.FILTER:
            # PostgreSQL attaches residual predicates to the node below; any
            # subqueries inside the predicate appear as SubPlan children.
            predicate = node.info.get("predicate")
            target = children[0]
            if predicate is not None:
                existing = target.properties.get("Filter")
                printed = print_expression(predicate)
                target.properties["Filter"] = (
                    f"{existing} AND {printed}" if existing else printed
                )
            for subplan_physical in node.info.get("subplans", []):
                subplan_raw = self._shape(subplan_physical, analyze)
                subplan_raw.properties["Parent Relationship"] = "SubPlan"
                target.children.append(subplan_raw)
            return target

        if kind is OpKind.PROJECT:
            # PostgreSQL has no explicit projection operator; the target list
            # lives on the node below.
            target = children[0]
            items = node.info.get("items", [])
            output = [name for _, name in items]
            if output and "Output" not in target.properties:
                target.properties["Output"] = ", ".join(output)
            return target

        if kind is OpKind.DISTINCT:
            return RawPlanNode("Unique", properties, children)

        if kind in (OpKind.SORT, OpKind.TOP_N):
            raw = RawPlanNode("Sort", properties, children)
            keys = node.info.get("sort_keys", [])
            if keys:
                raw.properties["Sort Key"] = ", ".join(
                    print_expression(expression) + (" DESC" if descending else "")
                    for expression, descending in keys
                )
            if kind is OpKind.TOP_N:
                limit = RawPlanNode("Limit", dict(properties))
                limit.children.append(raw)
                return limit
            return raw

        if kind is OpKind.LIMIT:
            return RawPlanNode("Limit", properties, children)

        if kind is OpKind.APPEND:
            return RawPlanNode("Append", properties, children)

        if kind is OpKind.INTERSECT:
            raw = RawPlanNode("SetOp Intersect", properties, children)
            return raw
        if kind is OpKind.EXCEPT:
            raw = RawPlanNode("SetOp Except", properties, children)
            return raw

        if kind is OpKind.MATERIALIZE:
            return RawPlanNode("Materialize", properties, children)
        if kind is OpKind.GATHER:
            return RawPlanNode("Gather", properties, children)

        if kind in (OpKind.INSERT, OpKind.UPDATE, OpKind.DELETE):
            raw = RawPlanNode("ModifyTable", properties, children)
            raw.properties["Operation"] = kind.value
            raw.properties["Relation Name"] = node.info.get("table")
            return raw

        if kind in (OpKind.CREATE_TABLE, OpKind.CREATE_INDEX, OpKind.DROP_TABLE):
            raw = RawPlanNode("Utility", properties, children)
            raw.properties["Statement"] = kind.value
            return raw

        raise DialectError(self.name, f"cannot shape operator {kind.value}")

    # ------------------------------------------------------------------ serialization

    def serialize_plan(self, plan: RawPlan, format_name: str) -> str:
        if format_name == "text":
            return self._serialize_text(plan)
        if format_name == "table":
            return self._serialize_table(plan)
        if format_name == "json":
            return render_json_plan(plan, node_key="Node Type")
        if format_name == "xml":
            return self._serialize_xml(plan)
        if format_name == "yaml":
            return self._serialize_yaml(plan)
        if format_name == "graph":
            return self._serialize_graph(plan)
        raise DialectError(self.name, f"unknown format {format_name!r}")

    _HEADLINE_KEYS = (
        "Startup Cost",
        "Total Cost",
        "Plan Rows",
        "Plan Width",
        "Relation Name",
        "Alias",
        "Index Name",
        "Join Type",
        "Actual Rows",
        "Actual Total Time",
        "Actual Loops",
        "Operation",
        "Statement",
        "Output",
        "Parent Relationship",
    )

    def _node_headline(self, node: RawPlanNode) -> str:
        name = node.name
        relation = node.properties.get("Relation Name")
        alias = node.properties.get("Alias")
        index_name = node.properties.get("Index Name")
        if index_name and relation:
            name = f"{name} using {index_name} on {relation}"
        elif relation:
            name = f"{name} on {relation}"
            if alias and alias != relation:
                name = f"{name} {alias}"
        cost = (
            f"cost={format_number(node.properties.get('Startup Cost', 0.0))}"
            f"..{format_number(node.properties.get('Total Cost', 0.0))}"
        )
        rows = f"rows={node.properties.get('Plan Rows', 0)}"
        width = f"width={node.properties.get('Plan Width', 0)}"
        headline = f"{name}  ({cost} {rows} {width}"
        if "Actual Rows" in node.properties:
            headline += (
                f") (actual time={format_number(node.properties.get('Actual Total Time', 0.0), 3)}"
                f" rows={node.properties['Actual Rows']} loops={node.properties.get('Actual Loops', 1)}"
            )
        return headline + ")"

    def _node_property_lines(self, node: RawPlanNode) -> List[str]:
        lines = []
        for key, value in node.properties.items():
            if key in self._HEADLINE_KEYS:
                continue
            lines.append(f"{key}: {value}")
        return lines

    def _serialize_text(self, plan: RawPlan) -> str:
        lines: List[str] = []

        def visit(node: RawPlanNode, depth: int) -> None:
            indent = "  " * depth
            arrow = "->  " if depth > 0 else ""
            lines.append(f"{indent}{arrow}{self._node_headline(node)}")
            for extra in self._node_property_lines(node):
                lines.append(f"{indent}{'      ' if depth > 0 else '  '}{extra}")
            for child in node.children:
                visit(child, depth + 1)

        if plan.root is not None:
            visit(plan.root, 0)
        for key, value in plan.properties.items():
            lines.append(f"{key}: {value} ms")
        return "\n".join(lines)

    def _serialize_table(self, plan: RawPlan) -> str:
        """A psql-style single-column ``QUERY PLAN`` table."""
        body = self._serialize_text(plan).splitlines()
        width = max([len("QUERY PLAN")] + [len(line) for line in body])
        lines = [" QUERY PLAN".ljust(width + 2), "-" * (width + 2)]
        lines.extend(" " + line.ljust(width + 1) for line in body)
        lines.append(f"({len(body)} rows)")
        return "\n".join(lines)

    def _serialize_xml(self, plan: RawPlan) -> str:
        from xml.etree import ElementTree

        def node_element(node: RawPlanNode) -> ElementTree.Element:
            element = ElementTree.Element("Plan")
            ElementTree.SubElement(element, "Node-Type").text = node.name
            for key, value in node.properties.items():
                child = ElementTree.SubElement(element, key.replace(" ", "-"))
                child.text = str(value)
            if node.children:
                plans = ElementTree.SubElement(element, "Plans")
                for child_node in node.children:
                    plans.append(node_element(child_node))
            return element

        root = ElementTree.Element(
            "explain", xmlns="http://www.postgresql.org/2009/explain"
        )
        query = ElementTree.SubElement(root, "Query")
        if plan.root is not None:
            query.append(node_element(plan.root))
        for key, value in plan.properties.items():
            extra = ElementTree.SubElement(query, key.replace(" ", "-"))
            extra.text = str(value)
        return ElementTree.tostring(root, encoding="unicode")

    def _serialize_yaml(self, plan: RawPlan) -> str:
        lines: List[str] = []

        def emit(node: RawPlanNode, depth: int) -> None:
            pad = "  " * depth
            lines.append(f"{pad}- Node Type: \"{node.name}\"")
            for key, value in node.properties.items():
                rendered = f'"{value}"' if isinstance(value, str) else value
                lines.append(f"{pad}  {key}: {rendered}")
            if node.children:
                lines.append(f"{pad}  Plans:")
                for child in node.children:
                    emit(child, depth + 1)

        lines.append("- Plan:")
        if plan.root is not None:
            emit(plan.root, 1)
        for key, value in plan.properties.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)

    def _serialize_graph(self, plan: RawPlan) -> str:
        lines = ["digraph plan {", "  node [shape=box];"]
        counter = [0]

        def visit(node: RawPlanNode) -> int:
            counter[0] += 1
            node_id = counter[0]
            label = node.name.replace('"', "'")
            lines.append(f'  n{node_id} [label="{label}"];')
            for child in node.children:
                child_id = visit(child)
                lines.append(f"  n{node_id} -> n{child_id};")
            return node_id

        if plan.root is not None:
            visit(plan.root)
        lines.append("}")
        return "\n".join(lines)
