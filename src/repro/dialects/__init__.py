"""The nine simulated DBMSs of the case study (Table I)."""

from typing import Dict, List, Type

from repro.dialects.base import (
    ExplainOutput,
    RawPlan,
    RawPlanNode,
    RelationalDialect,
    SimulatedDBMS,
)
from repro.dialects.influxdb import InfluxDBDialect
from repro.dialects.mongodb import MongoDBDialect
from repro.dialects.mysql import MySQLDialect
from repro.dialects.neo4j import Neo4jDialect
from repro.dialects.postgresql import PostgreSQLDialect
from repro.dialects.sparksql import SparkSQLDialect
from repro.dialects.sqlite import SQLiteDialect
from repro.dialects.sqlserver import SQLServerDialect
from repro.dialects.tidb import TiDBDialect

#: All simulated DBMSs keyed by their lower-case name.
DIALECTS: Dict[str, Type[SimulatedDBMS]] = {
    "influxdb": InfluxDBDialect,
    "mongodb": MongoDBDialect,
    "mysql": MySQLDialect,
    "neo4j": Neo4jDialect,
    "postgresql": PostgreSQLDialect,
    "sqlserver": SQLServerDialect,
    "sqlite": SQLiteDialect,
    "sparksql": SparkSQLDialect,
    "tidb": TiDBDialect,
}

#: The SQL-speaking dialects built on the shared relational substrate.
RELATIONAL_DIALECTS = ("mysql", "postgresql", "sqlite", "sqlserver", "sparksql", "tidb")


def create_dialect(name: str, **options) -> SimulatedDBMS:
    """Instantiate the simulated DBMS called *name*.

    Keyword options (``prepared_cache=``, ``executor=``, ``decorrelate=``,
    ``optimize_joins=``) are forwarded to the dialect constructor —
    relational dialects accept all four.
    """
    try:
        dialect_class = DIALECTS[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown DBMS {name!r}; available: {sorted(DIALECTS)}") from exc
    return dialect_class(**options)


def available_dialects() -> List[str]:
    """Return the names of every simulated DBMS."""
    return sorted(DIALECTS)


__all__ = [
    "SimulatedDBMS",
    "RelationalDialect",
    "RawPlan",
    "RawPlanNode",
    "ExplainOutput",
    "DIALECTS",
    "RELATIONAL_DIALECTS",
    "create_dialect",
    "available_dialects",
    "InfluxDBDialect",
    "MongoDBDialect",
    "MySQLDialect",
    "Neo4jDialect",
    "PostgreSQLDialect",
    "SparkSQLDialect",
    "SQLiteDialect",
    "SQLServerDialect",
    "TiDBDialect",
]
