"""Simulated MongoDB dialect.

MongoDB stores documents and exposes query plans through ``explain()`` as a
JSON document whose ``queryPlanner.winningPlan`` nests stages via
``inputStage`` (COLLSCAN, IXSCAN, FETCH, PROJECTION_SIMPLE, SORT, LIMIT,
GROUP).  Queries are issued either as Python dictionaries (``find`` /
``aggregate``) or as a JSON command string through ``execute``.

MongoDB has no Join-category operations (Table II / VI of the paper): the
document model embeds related entities in a single document, which is exactly
how the paper rewrites TPC-H queries 1, 3 and 4 for MongoDB.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dialects.base import ExplainOutput, SimulatedDBMS
from repro.errors import DialectError
from repro.storage.document_store import Document, DocumentStore, match_filter


class MongoDBDialect(SimulatedDBMS):
    """The simulated MongoDB 6.0.5 instance."""

    name = "mongodb"
    version = "6.0.5"
    data_model = "document"
    plan_formats = ("json", "graph")
    default_format = "json"

    def __init__(self) -> None:
        self.store = DocumentStore()

    # ------------------------------------------------------------------ data API

    def insert_many(self, collection: str, documents: Sequence[Document]) -> int:
        """Insert documents into a collection (created on first use)."""
        return self.store.collection(collection).insert_many(documents)

    def create_index(self, collection: str, field: str) -> str:
        """Create a single-field ascending index."""
        return self.store.collection(collection).create_index(field)

    # ------------------------------------------------------------------ queries

    def find(
        self,
        collection: str,
        criteria: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
    ) -> List[Document]:
        """Run a ``find`` query and return matching documents."""
        documents = [
            document
            for document in self.store.collection(collection).documents
            if match_filter(document, criteria or {})
        ]
        if sort:
            for field, direction in reversed(sort):
                documents.sort(
                    key=lambda doc: (doc.get(field) is None, doc.get(field)),
                    reverse=direction < 0,
                )
        if limit is not None:
            documents = documents[:limit]
        if projection:
            documents = [
                {key: document.get(key) for key, keep in projection.items() if keep}
                for document in documents
            ]
        return documents

    def aggregate(self, collection: str, pipeline: Sequence[Dict[str, Any]]) -> List[Document]:
        """Run an aggregation pipeline ($match, $group, $project, $sort, $limit, $unwind)."""
        documents = [dict(doc) for doc in self.store.collection(collection).documents]
        for stage in pipeline:
            documents = self._apply_stage(documents, stage)
        return documents

    def _apply_stage(self, documents: List[Document], stage: Dict[str, Any]) -> List[Document]:
        if "$match" in stage:
            return [doc for doc in documents if match_filter(doc, stage["$match"])]
        if "$unwind" in stage:
            path = stage["$unwind"].lstrip("$")
            output = []
            for doc in documents:
                values = doc.get(path) or []
                for value in values if isinstance(values, list) else [values]:
                    copy = dict(doc)
                    copy[path] = value
                    output.append(copy)
            return output
        if "$group" in stage:
            spec = stage["$group"]
            groups: Dict[Any, Document] = {}
            order: List[Any] = []
            for doc in documents:
                key = self._resolve(doc, spec["_id"])
                marker = json.dumps(key, sort_keys=True, default=str)
                if marker not in groups:
                    groups[marker] = {"_id": key}
                    for field, accumulator in spec.items():
                        if field != "_id":
                            groups[marker][field] = None
                    order.append(marker)
                entry = groups[marker]
                for field, accumulator in spec.items():
                    if field == "_id":
                        continue
                    operator, operand = next(iter(accumulator.items()))
                    value = self._resolve(doc, operand)
                    entry[field] = self._accumulate(entry[field], operator, value)
            return [groups[marker] for marker in order]
        if "$project" in stage:
            spec = stage["$project"]
            return [
                {
                    field: (self._resolve(doc, rule) if not isinstance(rule, int) else doc.get(field))
                    for field, rule in spec.items()
                    if rule
                }
                for doc in documents
            ]
        if "$sort" in stage:
            for field, direction in reversed(list(stage["$sort"].items())):
                documents.sort(
                    key=lambda doc: (doc.get(field) is None, doc.get(field)),
                    reverse=direction < 0,
                )
            return documents
        if "$limit" in stage:
            return documents[: int(stage["$limit"])]
        raise DialectError(self.name, f"unsupported pipeline stage {list(stage)[0]!r}")

    def _resolve(self, document: Document, expression: Any) -> Any:
        if isinstance(expression, str) and expression.startswith("$"):
            current: Any = document
            for part in expression[1:].split("."):
                current = current.get(part) if isinstance(current, dict) else None
            return current
        if isinstance(expression, dict):
            if "$multiply" in expression:
                product = 1.0
                for operand in expression["$multiply"]:
                    value = self._resolve(document, operand)
                    if value is None:
                        return None
                    product *= value
                return product
            if "$subtract" in expression:
                left, right = (self._resolve(document, op) for op in expression["$subtract"])
                return None if left is None or right is None else left - right
            if "$add" in expression:
                total = 0.0
                for operand in expression["$add"]:
                    value = self._resolve(document, operand)
                    if value is None:
                        return None
                    total += value
                return total
        return expression

    def _accumulate(self, current: Any, operator: str, value: Any) -> Any:
        if operator == "$sum":
            increment = value if isinstance(value, (int, float)) else 0
            return (current or 0) + increment
        if operator == "$avg":
            # Stored as (total, count) tuple internally; finalised lazily.
            total, count = current if isinstance(current, tuple) else (0.0, 0)
            if isinstance(value, (int, float)):
                return (total + value, count + 1)
            return (total, count)
        if operator == "$min":
            if value is None:
                return current
            return value if current is None or value < current else current
        if operator == "$max":
            if value is None:
                return current
            return value if current is None or value > current else current
        if operator == "$first":
            return current if current is not None else value
        if operator == "$count":
            return (current or 0) + 1
        raise DialectError(self.name, f"unsupported accumulator {operator!r}")

    # ------------------------------------------------------------------ explain

    def explain_find(
        self,
        collection: str,
        criteria: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Build the explain document for a ``find`` query."""
        stage = self._access_stage(collection, criteria or {})
        if sort:
            stage = {"stage": "SORT", "sortPattern": dict(sort), "inputStage": stage}
        if limit is not None:
            stage = {"stage": "LIMIT", "limitAmount": limit, "inputStage": stage}
        if projection:
            stage = {
                "stage": "PROJECTION_SIMPLE",
                "transformBy": projection,
                "inputStage": stage,
            }
        return self._wrap_plan(collection, stage)

    def explain_aggregate(
        self, collection: str, pipeline: Sequence[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Build the explain document for an aggregation pipeline."""
        criteria = {}
        for stage_spec in pipeline:
            if "$match" in stage_spec:
                criteria = stage_spec["$match"]
                break
        stage = self._access_stage(collection, criteria)
        for stage_spec in pipeline:
            if "$unwind" in stage_spec:
                stage = {"stage": "UNWIND", "inputStage": stage}
            elif "$group" in stage_spec:
                stage = {
                    "stage": "GROUP",
                    "idExpression": stage_spec["$group"].get("_id"),
                    "inputStage": stage,
                }
            elif "$project" in stage_spec:
                stage = {
                    "stage": "PROJECTION_DEFAULT",
                    "transformBy": stage_spec["$project"],
                    "inputStage": stage,
                }
            elif "$sort" in stage_spec:
                stage = {
                    "stage": "SORT",
                    "sortPattern": stage_spec["$sort"],
                    "inputStage": stage,
                }
            elif "$limit" in stage_spec:
                stage = {
                    "stage": "LIMIT",
                    "limitAmount": stage_spec["$limit"],
                    "inputStage": stage,
                }
        return self._wrap_plan(collection, stage)

    def _access_stage(self, collection: str, criteria: Dict[str, Any]) -> Dict[str, Any]:
        indexed_field = None
        for field in criteria:
            if field.startswith("$"):
                continue
            if self.store.collection(collection).index_for(field):
                indexed_field = field
                break
        if indexed_field is not None:
            index_scan = {
                "stage": "IXSCAN",
                "indexName": self.store.collection(collection).index_for(indexed_field),
                "keyPattern": {indexed_field: 1},
                "direction": "forward",
            }
            return {"stage": "FETCH", "filter": criteria, "inputStage": index_scan}
        return {"stage": "COLLSCAN", "filter": criteria, "direction": "forward"}

    def _wrap_plan(self, collection: str, winning: Dict[str, Any]) -> Dict[str, Any]:
        documents = len(self.store.collection(collection).documents)
        return {
            "queryPlanner": {
                "namespace": f"benchmark.{collection}",
                "winningPlan": winning,
                "rejectedPlans": [],
            },
            "executionStats": {
                "nReturned": documents,
                "totalKeysExamined": documents,
                "totalDocsExamined": documents,
                "executionTimeMillis": 1,
            },
            "serverInfo": {"version": self.version},
        }

    # ------------------------------------------------------------------ SimulatedDBMS API

    def execute(self, statement: str) -> List[Document]:
        """Execute a JSON command: ``{"find"| "aggregate"| "insert": ...}``."""
        command = json.loads(statement)
        if "insert" in command:
            self.insert_many(command["insert"], command.get("documents", []))
            return [{"ok": 1}]
        if "find" in command:
            return self.find(
                command["find"],
                command.get("filter"),
                command.get("projection"),
                [tuple(item) for item in command.get("sort", [])] or None,
                command.get("limit"),
            )
        if "aggregate" in command:
            return self.aggregate(command["aggregate"], command.get("pipeline", []))
        raise DialectError(self.name, f"unsupported command: {sorted(command)}")

    def explain(
        self, statement: str, format: Optional[str] = None, analyze: bool = False
    ) -> ExplainOutput:
        chosen = self._check_format(format)
        command = json.loads(statement)
        if "find" in command:
            document = self.explain_find(
                command["find"],
                command.get("filter"),
                command.get("projection"),
                [tuple(item) for item in command.get("sort", [])] or None,
                command.get("limit"),
            )
        elif "aggregate" in command:
            document = self.explain_aggregate(command["aggregate"], command.get("pipeline", []))
        else:
            raise DialectError(self.name, "explain requires a find or aggregate command")
        if chosen == "json":
            text = json.dumps(document, indent=2, default=str)
        else:  # graph
            text = self._graph_from_plan(document)
        return ExplainOutput(dbms=self.name, format=chosen, text=text, query=statement)

    def _graph_from_plan(self, document: Dict[str, Any]) -> str:
        lines = ["digraph mongodb_plan {", "  node [shape=box];"]
        counter = [0]

        def visit(stage: Dict[str, Any]) -> int:
            counter[0] += 1
            node_id = counter[0]
            lines.append(f'  n{node_id} [label="{stage.get("stage", "?")}"];')
            inner = stage.get("inputStage")
            if inner:
                child_id = visit(inner)
                lines.append(f"  n{node_id} -> n{child_id};")
            return node_id

        visit(document["queryPlanner"]["winningPlan"])
        lines.append("}")
        return "\n".join(lines)
