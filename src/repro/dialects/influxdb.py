"""Simulated InfluxDB dialect.

InfluxDB is the time-series DBMS of the study and the outlier in Table II: its
``EXPLAIN`` output contains *no operations at all*, only a list of
plan-associated properties (expression, number of shards, series, files,
blocks, and block size).  The unified representation handles this case with a
tree-less plan consisting solely of plan-associated properties.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.dialects.base import ExplainOutput, SimulatedDBMS
from repro.errors import DialectError
from repro.storage.timeseries_store import Point, TimeSeriesStore

_SELECT_PATTERN = re.compile(
    r"SELECT\s+(?P<fields>.+?)\s+FROM\s+\"?(?P<measurement>\w+)\"?"
    r"(?:\s+WHERE\s+(?P<where>.+?))?(?:\s+GROUP\s+BY\s+(?P<group>.+?))?\s*$",
    re.IGNORECASE | re.DOTALL,
)


class InfluxDBDialect(SimulatedDBMS):
    """The simulated InfluxDB 2.7.0 instance."""

    name = "influxdb"
    version = "2.7.0"
    data_model = "time-series"
    plan_formats = ("text",)
    default_format = "text"

    def __init__(self) -> None:
        self.store = TimeSeriesStore()

    # ------------------------------------------------------------------ data API

    def write_points(self, measurement: str, points: List[Point]) -> int:
        """Write points into a measurement."""
        return self.store.write(measurement, points)

    # ------------------------------------------------------------------ queries

    def _parse(self, statement: str) -> Dict[str, Any]:
        text = statement.strip().rstrip(";")
        if text.upper().startswith("EXPLAIN"):
            text = text[len("EXPLAIN") :].strip()
        match = _SELECT_PATTERN.match(" ".join(text.split()))
        if not match:
            raise DialectError(self.name, f"unsupported InfluxQL statement: {statement!r}")
        return {
            "fields": [field.strip() for field in match.group("fields").split(",")],
            "measurement": match.group("measurement"),
            "where": match.group("where"),
            "group": match.group("group"),
        }

    def execute(self, statement: str) -> List[Dict[str, Any]]:
        """Execute an InfluxQL SELECT over the store."""
        query = self._parse(statement)
        points = self.store.points(query["measurement"])
        rows: List[Dict[str, Any]] = []
        for point in points:
            row: Dict[str, Any] = {"time": point.timestamp}
            row.update(point.tags)
            row.update(point.fields)
            rows.append(row)
        return rows

    # ------------------------------------------------------------------ explain

    def explain_properties(self, statement: str) -> Dict[str, Any]:
        """Compute the plan-associated properties for a query."""
        query = self._parse(statement)
        measurement = query["measurement"]
        fields = ", ".join(query["fields"])
        return {
            "EXPRESSION": fields,
            "NUMBER OF SHARDS": self.store.shard_count(measurement),
            "NUMBER OF SERIES": self.store.series_count(measurement),
            "CACHED VALUES": 0,
            "NUMBER OF FILES": max(self.store.shard_count(measurement), 1),
            "NUMBER OF BLOCKS": self.store.block_count(measurement),
            "SIZE OF BLOCKS": self.store.block_count(measurement) * 4096,
        }

    def explain(
        self, statement: str, format: Optional[str] = None, analyze: bool = False
    ) -> ExplainOutput:
        chosen = self._check_format(format)
        properties = self.explain_properties(statement)
        lines = ["QUERY PLAN", "----------"]
        for key, value in properties.items():
            lines.append(f"{key}: {value}")
        return ExplainOutput(
            dbms=self.name, format=chosen, text="\n".join(lines), query=statement
        )
