"""Simulated Neo4j dialect.

Neo4j exposes execution plans for Cypher queries; the plan is a table of
operators (Figure 1 of the paper) with plan-level properties such as the
planner, runtime version, and total database accesses.  The supported Cypher
subset covers the workloads the paper uses (WDBench basic graph patterns and
the TPC-H rewrites): ``MATCH`` of a node pattern or a single relationship
pattern, ``WHERE`` property comparisons, ``RETURN`` items with ``count``/
``sum`` aggregation, ``ORDER BY`` and ``LIMIT``.

The operator vocabulary maps onto the paper's categories: node/relationship
scans are Producers or Joins (relationship scans recombine the two endpoint
tuples), ``Expand(All)`` is a Join, ``EagerAggregation`` is a Folder,
``Projection``/``ProduceResults`` are Projectors, and ``Filter``/``Sort`` are
Executors/Combinators.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dialects.base import ExplainOutput, SimulatedDBMS
from repro.errors import DialectError
from repro.storage.graph_store import GraphStore


@dataclass
class CypherQuery:
    """A parsed Cypher query (the supported subset)."""

    node_variable: Optional[str] = None
    node_label: Optional[str] = None
    rel_variable: Optional[str] = None
    rel_type: Optional[str] = None
    end_variable: Optional[str] = None
    end_label: Optional[str] = None
    directed: bool = True
    has_relationship: bool = False
    predicates: List[Tuple[str, str, str, Any]] = field(default_factory=list)
    return_items: List[str] = field(default_factory=list)
    aggregations: List[Tuple[str, str]] = field(default_factory=list)
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None
    raw: str = ""


_MATCH_PATTERN = re.compile(
    r"MATCH\s*\((?P<v1>\w*)(?::(?P<l1>\w+))?\)"
    r"(?:\s*(?P<left><)?-\[(?P<rv>\w*)(?::(?P<rt>\w+))?\]-(?P<right>>)?\s*"
    r"\((?P<v2>\w*)(?::(?P<l2>\w+))?\))?",
    re.IGNORECASE,
)
_WHERE_PATTERN = re.compile(r"WHERE\s+(?P<where>.*?)(?:\s+RETURN\s)", re.IGNORECASE | re.DOTALL)
_RETURN_PATTERN = re.compile(
    r"RETURN\s+(?P<items>.*?)(?:\s+ORDER\s+BY\s+(?P<order>[\w.()]+)(?P<desc>\s+DESC)?)?"
    r"(?:\s+LIMIT\s+(?P<limit>\d+))?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_PREDICATE_PATTERN = re.compile(
    r"(?P<var>\w+)\.(?P<prop>\w+)\s*(?P<op>=|<>|<=|>=|<|>|ENDS WITH|STARTS WITH|CONTAINS)\s*"
    r"(?P<value>'[^']*'|[-\d.]+)",
    re.IGNORECASE,
)
_AGG_PATTERN = re.compile(r"(?P<fn>count|sum|avg|min|max)\s*\(\s*(?P<arg>[\w.*]+)\s*\)", re.IGNORECASE)


def parse_cypher(query: str) -> CypherQuery:
    """Parse the supported Cypher subset into a :class:`CypherQuery`."""
    parsed = CypherQuery(raw=query)
    text = " ".join(query.strip().split())
    match = _MATCH_PATTERN.search(text)
    if not match:
        raise DialectError("neo4j", f"unsupported Cypher query: {query!r}")
    parsed.node_variable = match.group("v1") or None
    parsed.node_label = match.group("l1")
    if match.group("rv") is not None or match.group("rt") is not None or match.group("v2"):
        parsed.has_relationship = match.group("v2") is not None or bool(match.group("rv"))
    if match.group("v2") is not None:
        parsed.has_relationship = True
        parsed.rel_variable = match.group("rv") or None
        parsed.rel_type = match.group("rt")
        parsed.end_variable = match.group("v2") or None
        parsed.end_label = match.group("l2")
        parsed.directed = bool(match.group("right")) or bool(match.group("left"))
    where_match = _WHERE_PATTERN.search(text)
    if where_match:
        for predicate in _PREDICATE_PATTERN.finditer(where_match.group("where")):
            value_text = predicate.group("value")
            value: Any
            if value_text.startswith("'"):
                value = value_text.strip("'")
            else:
                value = float(value_text) if "." in value_text else int(value_text)
            parsed.predicates.append(
                (
                    predicate.group("var"),
                    predicate.group("prop"),
                    predicate.group("op").upper(),
                    value,
                )
            )
    return_match = _RETURN_PATTERN.search(text)
    if return_match:
        items = return_match.group("items")
        for aggregation in _AGG_PATTERN.finditer(items):
            parsed.aggregations.append(
                (aggregation.group("fn").lower(), aggregation.group("arg"))
            )
        parsed.return_items = [item.strip() for item in items.split(",")]
        if return_match.group("order"):
            parsed.order_by = return_match.group("order")
            parsed.descending = bool(return_match.group("desc"))
        if return_match.group("limit"):
            parsed.limit = int(return_match.group("limit"))
    return parsed


class Neo4jDialect(SimulatedDBMS):
    """The simulated Neo4j 5.6.0 instance."""

    name = "neo4j"
    version = "5.6.0"
    data_model = "graph"
    plan_formats = ("text", "json", "graph")
    default_format = "text"

    def __init__(self) -> None:
        self.store = GraphStore()

    # ------------------------------------------------------------------ execution

    def execute(self, statement: str) -> List[Dict[str, Any]]:
        """Execute a Cypher query and return result records."""
        query = parse_cypher(statement)
        bindings = self._match(query)
        bindings = [b for b in bindings if self._satisfies(b, query.predicates)]
        if query.aggregations:
            record: Dict[str, Any] = {}
            for function, argument in query.aggregations:
                values = [self._value(binding, argument) for binding in bindings]
                non_null = [value for value in values if value is not None]
                if function == "count":
                    record[f"{function}({argument})"] = len(bindings if argument == "*" else non_null)
                elif function == "sum":
                    record[f"{function}({argument})"] = sum(non_null) if non_null else 0
                elif function == "avg":
                    record[f"{function}({argument})"] = (
                        sum(non_null) / len(non_null) if non_null else None
                    )
                elif function == "min":
                    record[f"{function}({argument})"] = min(non_null) if non_null else None
                elif function == "max":
                    record[f"{function}({argument})"] = max(non_null) if non_null else None
            return [record]
        records = []
        for binding in bindings:
            record = {}
            for item in query.return_items:
                record[item] = self._value(binding, item)
            records.append(record)
        if query.order_by:
            records.sort(
                key=lambda r: (r.get(query.order_by) is None, r.get(query.order_by)),
                reverse=query.descending,
            )
        if query.limit is not None:
            records = records[: query.limit]
        return records

    def _match(self, query: CypherQuery) -> List[Dict[str, Any]]:
        bindings: List[Dict[str, Any]] = []
        if not query.has_relationship:
            for node in self.store.nodes(query.node_label):
                bindings.append({query.node_variable or "n": node})
            return bindings
        relationships = self.store.relationships(query.rel_type)
        for relationship in relationships:
            start = self.store.node(relationship.start)
            end = self.store.node(relationship.end)
            if query.node_label and query.node_label not in start.labels:
                continue
            if query.end_label and query.end_label not in end.labels:
                continue
            binding = {}
            if query.node_variable:
                binding[query.node_variable] = start
            if query.end_variable:
                binding[query.end_variable] = end
            if query.rel_variable:
                binding[query.rel_variable] = relationship
            bindings.append(binding)
        return bindings

    def _value(self, binding: Dict[str, Any], expression: str) -> Any:
        if expression == "*":
            return 1
        if "." in expression:
            variable, prop = expression.split(".", 1)
            entity = binding.get(variable)
            if entity is None:
                return None
            return entity.properties.get(prop)
        entity = binding.get(expression)
        if entity is None:
            return None
        return getattr(entity, "properties", None)

    def _satisfies(
        self, binding: Dict[str, Any], predicates: List[Tuple[str, str, str, Any]]
    ) -> bool:
        for variable, prop, operator, expected in predicates:
            entity = binding.get(variable)
            actual = entity.properties.get(prop) if entity is not None else None
            if actual is None:
                return False
            if operator == "=" and actual != expected:
                return False
            if operator == "<>" and actual == expected:
                return False
            if operator == "<" and not actual < expected:
                return False
            if operator == "<=" and not actual <= expected:
                return False
            if operator == ">" and not actual > expected:
                return False
            if operator == ">=" and not actual >= expected:
                return False
            if operator == "ENDS WITH" and not str(actual).endswith(str(expected)):
                return False
            if operator == "STARTS WITH" and not str(actual).startswith(str(expected)):
                return False
            if operator == "CONTAINS" and str(expected) not in str(actual):
                return False
        return True

    # ------------------------------------------------------------------ planning

    def build_plan(self, statement: str) -> List[Dict[str, Any]]:
        """Build the operator list (root first) for a Cypher query."""
        query = parse_cypher(statement)
        operators: List[Dict[str, Any]] = []

        # Leaf: how the pattern is located.
        predicate_vars = {variable for variable, _, _, _ in query.predicates}
        if query.has_relationship:
            if query.rel_variable in predicate_vars and any(
                op in {"ENDS WITH", "STARTS WITH", "CONTAINS"}
                for _, _, op, _ in query.predicates
            ):
                leaf = "UndirectedRelationshipIndexContainsScan"
            elif query.rel_type:
                leaf = (
                    "DirectedRelationshipTypeScan"
                    if query.directed
                    else "UndirectedRelationshipTypeScan"
                )
            else:
                leaf = "DirectedAllRelationshipsScan"
            operators.append({"Operator": leaf, "Details": query.rel_type or "[r]"})
            operators.append({"Operator": "Expand(All)", "Details": "(a)-->(b)"})
        else:
            indexed = query.node_label is not None and any(
                self.store.has_index(query.node_label, prop)
                for variable, prop, _, _ in query.predicates
                if variable == query.node_variable
            )
            if indexed:
                leaf = "NodeIndexSeek"
            elif query.node_label:
                leaf = "NodeByLabelScan"
            else:
                leaf = "AllNodesScan"
            operators.append({"Operator": leaf, "Details": query.node_label or "(n)"})
        if query.predicates:
            operators.append(
                {
                    "Operator": "Filter",
                    "Details": " AND ".join(
                        f"{variable}.{prop} {operator} {value!r}"
                        for variable, prop, operator, value in query.predicates
                    ),
                }
            )
        if query.aggregations:
            operators.append(
                {
                    "Operator": "EagerAggregation",
                    "Details": ", ".join(f"{fn}({arg})" for fn, arg in query.aggregations),
                }
            )
        else:
            operators.append(
                {"Operator": "Projection", "Details": ", ".join(query.return_items)}
            )
        if query.order_by:
            operators.append({"Operator": "Sort", "Details": query.order_by})
        if query.limit is not None:
            operators.append({"Operator": "Limit", "Details": str(query.limit)})
        operators.append({"Operator": "ProduceResults", "Details": ", ".join(query.return_items)})
        operators.reverse()  # Root (ProduceResults) first, as Neo4j prints it.
        estimated = max(self.store.node_count, self.store.relationship_count, 1)
        for position, operator in enumerate(operators):
            operator["EstimatedRows"] = max(estimated // (position + 1), 1)
        return operators

    # ------------------------------------------------------------------ explain

    def explain(
        self, statement: str, format: Optional[str] = None, analyze: bool = False
    ) -> ExplainOutput:
        chosen = self._check_format(format)
        operators = self.build_plan(statement)
        plan_properties = {
            "Planner": "COST",
            "Runtime": "PIPELINED",
            "Runtime version": self.version.rsplit(".", 1)[0],
            "Total database accesses": self.store.node_count + self.store.relationship_count,
            "Total allocated memory": 184,
        }
        if chosen == "json":
            text = json.dumps({"plan": operators, "summary": plan_properties}, indent=2)
        elif chosen == "text":
            text = self._render_table(operators, plan_properties)
        else:
            text = self._render_graph(operators)
        return ExplainOutput(dbms=self.name, format=chosen, text=text, query=statement)

    def _render_table(
        self, operators: List[Dict[str, Any]], plan_properties: Dict[str, Any]
    ) -> str:
        lines = [f"Planner {plan_properties['Planner']}"]
        lines.append(f"Runtime version {plan_properties['Runtime version']}")
        header = f"| {'Operator':<45} | {'Details':<40} | {'Estimated Rows':>14} |"
        separator = "+" + "-" * (len(header) - 2) + "+"
        lines.extend([separator, header, separator])
        for operator in operators:
            lines.append(
                f"| +{operator['Operator']:<44} | {str(operator['Details'])[:40]:<40} | "
                f"{operator['EstimatedRows']:>14} |"
            )
        lines.append(separator)
        lines.append(
            f"Total database accesses: {plan_properties['Total database accesses']}, "
            f"total allocated memory: {plan_properties['Total allocated memory']}"
        )
        return "\n".join(lines)

    def _render_graph(self, operators: List[Dict[str, Any]]) -> str:
        lines = ["digraph neo4j_plan {", "  node [shape=box];"]
        for index, operator in enumerate(operators):
            lines.append(f'  n{index} [label="{operator["Operator"]}"];')
            if index > 0:
                lines.append(f"  n{index} -> n{index - 1};")
        lines.append("}")
        return "\n".join(lines)
