"""Base classes for the simulated DBMSs.

Each simulated DBMS (a *dialect*) owns its own database instance, planner and
executor, and exposes the two entry points the paper's applications need:

``execute(statement)``
    Run a statement and return its result rows.

``explain(statement, format=..., analyze=...)``
    Return a *serialized query plan* in one of the DBMS's native formats
    (Table III of the paper lists which formats each DBMS officially offers).

Internally, relational dialects plan queries with the shared optimizer and
then *shape* the dialect-neutral physical plan into a :class:`RawPlanNode`
tree carrying DBMS-specific operator names and properties, which is finally
serialized into the requested native format.  The UPlan converters
(:mod:`repro.converters`) parse those native strings back — they never see the
physical plan, exactly as a converter for a real DBMS only sees ``EXPLAIN``
output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.catalog.database import Database
from repro.dialects.prepared import PreparedQueryCache, reset_runtime
from repro.engine import create_executor
from repro.engine.executor import Executor, Row
from repro.errors import DialectError, ParseError, UnsupportedFormatError
from repro.optimizer.bounds import bound_violations
from repro.optimizer.cost import CostModel
from repro.optimizer.physical import PhysicalNode
from repro.optimizer.planner import Planner, PlannerOptions
from repro.sqlparser import ast_nodes as ast


@dataclass
class RawPlanNode:
    """One node of a DBMS-native plan tree (before serialization)."""

    name: str
    properties: Dict[str, Any] = field(default_factory=dict)
    children: List["RawPlanNode"] = field(default_factory=list)

    def walk(self) -> Iterator["RawPlanNode"]:
        """Yield this node and its descendants in pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def size(self) -> int:
        """Return the number of nodes in the subtree."""
        return 1 + sum(child.size() for child in self.children)


@dataclass
class RawPlan:
    """A DBMS-native plan: a tree plus plan-level properties."""

    root: Optional[RawPlanNode] = None
    properties: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ExplainOutput:
    """The result of an ``explain`` call."""

    dbms: str
    format: str
    text: str
    query: str = ""
    #: ``EXPLAIN ANALYZE`` only: operators whose actual row count exceeded
    #: their proven intermediate-size bound (see :mod:`repro.optimizer.bounds`).
    #: Always empty for a correct engine — any entry is an optimizer or
    #: executor bug, which the campaign's "Bound" oracle reports.
    bound_violations: Sequence[Dict[str, Any]] = ()


class SimulatedDBMS:
    """Common interface of every simulated DBMS."""

    #: Lower-case identifier, e.g. ``"postgresql"``.
    name: str = "abstract"
    #: Version string mirroring Table I of the paper.
    version: str = "0.0"
    #: Data model, one of relational / document / graph / time-series.
    data_model: str = "relational"
    #: Officially supported serialized plan formats (Table III).
    plan_formats: Sequence[str] = ()
    #: The format used when none is requested.
    default_format: str = "text"

    def execute(self, statement: str) -> List[Row]:
        """Execute a statement and return result rows."""
        raise NotImplementedError

    def explain(
        self, statement: str, format: Optional[str] = None, analyze: bool = False
    ) -> ExplainOutput:
        """Return the serialized query plan for *statement*."""
        raise NotImplementedError

    def supported_formats(self) -> List[str]:
        """Return the native serialized plan formats this DBMS offers."""
        return list(self.plan_formats)

    def _check_format(self, format_name: Optional[str]) -> str:
        chosen = (format_name or self.default_format).lower()
        if chosen not in {name.lower() for name in self.plan_formats}:
            raise UnsupportedFormatError(
                self.name,
                f"format {chosen!r} is not supported; available: {sorted(self.plan_formats)}",
            )
        return chosen


class RelationalDialect(SimulatedDBMS):
    """Base class of the six simulated relational / SQL-speaking DBMSs."""

    #: Counter seed for per-plan operator identifiers (e.g. TiDB's ``_5``).
    identifier_seed: int = 3

    def __init__(
        self,
        prepared_cache: bool = True,
        executor: str = "vectorized",
        decorrelate: bool = True,
        optimize_joins: bool = True,
    ) -> None:
        self.database = Database(self.name)
        #: Whether the planner rewrites uncorrelated ``IN`` / ``EXISTS``
        #: predicates into hash semi/anti joins (the default) or keeps the
        #: per-row subquery filter path (the correctness oracle).  The two
        #: produce identical result rows and row order
        #: (tests/test_decorrelate.py); only the plans differ.
        #: ``optimize_joins`` likewise toggles predicate pushdown and
        #: cost-based join reordering against the as-written plan shape
        #: (tests/test_optimizer.py) — identical result rows (identical
        #: order for ORDER BY queries), different plans.
        self.planner = Planner(
            self.database,
            cost_model=self.cost_model(),
            options=self.planner_options(),
            decorrelate=decorrelate,
            optimize_joins=optimize_joins,
        )
        #: Which executor implementation runs plans: ``"vectorized"`` (the
        #: columnar batch engine, the default) or ``"row"`` (the row-at-a-
        #: time interpreter, kept as the correctness oracle).  The two are
        #: interchangeable — identical results, row order, and ``EXPLAIN
        #: ANALYZE`` row counts (tests/test_vectorized_equivalence.py).
        self.executor_kind = executor
        self.executor = create_executor(executor, self.database, self.planner)
        self._statements_executed = 0
        #: Memoised lex→parse→plan results for the campaign hot path.  The
        #: cache is keyed on the database's catalog version, so DDL / DML /
        #: ``analyze_tables`` invalidate it implicitly; ``prepared_cache=False``
        #: (or ``self.prepared.enabled = False``) turns it off with byte-for-
        #: byte identical results — see tests/test_prepared_cache.py.
        self.prepared = PreparedQueryCache(enabled=prepared_cache)

    # -- per-dialect configuration ------------------------------------------------

    def set_executor(self, kind: str) -> None:
        """Switch the executor implementation (``"row"`` / ``"vectorized"``).

        Safe at any point: executors are stateless between statements (all
        state lives in the database), so switching mid-stream only changes
        *how* the next plan is interpreted, never what it returns.
        """
        if kind != self.executor_kind:
            self.executor_kind = kind
            self.executor = create_executor(kind, self.database, self.planner)

    def set_decorrelate(self, enabled: bool) -> None:
        """Toggle subquery decorrelation (plans change, results never do).

        Cached physical plans were produced under the previous setting, so
        the prepared-query cache is dropped on an actual switch — the
        catalog version alone would not invalidate them.
        """
        if enabled != self.planner.decorrelate:
            self.planner.decorrelate = enabled
            self.prepared.clear()

    def set_optimize_joins(self, enabled: bool) -> None:
        """Toggle predicate pushdown + cost-based join reordering.

        ``False`` plans joins in the written FROM order with all WHERE
        conjuncts filtered above them — the as-written correctness oracle.
        Same toggle hygiene as :meth:`set_decorrelate`: cached physical
        plans were produced under the previous setting, so the prepared-
        query cache is dropped on an actual switch.
        """
        if enabled != self.planner.optimize_joins:
            self.planner.optimize_joins = enabled
            self.prepared.clear()

    def planner_options(self) -> PlannerOptions:
        """Planner options for this dialect (overridden by subclasses)."""
        return PlannerOptions()

    def cost_model(self) -> CostModel:
        """Cost model for this dialect (overridden by subclasses)."""
        return CostModel()

    def shape_plan(self, physical: PhysicalNode, analyze: bool = False) -> RawPlan:
        """Translate a physical plan into this DBMS's native plan tree."""
        raise NotImplementedError

    def serialize_plan(self, plan: RawPlan, format_name: str) -> str:
        """Serialize a native plan tree into the requested native format."""
        raise NotImplementedError

    # -- statement execution --------------------------------------------------------

    def execute(self, statement: str) -> List[Row]:
        """Parse, plan, and execute one or more SQL statements.

        Parsing and planning go through :attr:`prepared`: repeated statement
        texts reuse their AST, and their physical plan too as long as the
        database's catalog version is unchanged.  Plans for each statement of
        a multi-statement script are keyed at the version current when that
        statement runs, so earlier statements' mutations are always seen.
        """
        results: List[Row] = []
        text_key, statements = self.prepared.parse(statement)
        for index, parsed in enumerate(statements):
            if isinstance(parsed, ast.Explain):
                output = self.explain(
                    statement, format=parsed.format, analyze=parsed.analyze
                )
                return [{"QUERY PLAN": output.text}]
            plan = self.prepared.plan(
                text_key,
                index,
                self.database.version,
                lambda parsed=parsed: self.planner.plan_statement(parsed),
            )
            results = self.executor.execute(plan)
            self._statements_executed += 1
            if isinstance(parsed, (ast.Insert, ast.Delete, ast.Update, ast.CreateIndex)):
                # Keep optimizer statistics reasonably fresh, as autovacuum /
                # auto-analyze would in the real systems.
                self._maybe_analyze(parsed)
        return results

    def _maybe_analyze(self, statement: ast.Statement) -> None:
        table_name = getattr(statement, "table", None)
        if table_name and self.database.has_table(table_name):
            self.database.analyze(table_name)

    def explain(
        self, statement: str, format: Optional[str] = None, analyze: bool = False
    ) -> ExplainOutput:
        """Plan (and optionally execute) a statement, returning its native plan."""
        chosen = self._check_format(format)
        text_key, statements = self.prepared.parse(statement)
        if len(statements) != 1:
            raise ParseError(
                f"expected exactly one statement, found {len(statements)}"
            )
        parsed = statements[0]
        if isinstance(parsed, ast.Explain):
            analyze = analyze or parsed.analyze
            if parsed.format:
                chosen = self._check_format(parsed.format)
            parsed = parsed.statement
        physical = self.prepared.plan(
            text_key,
            0,
            self.database.version,
            lambda: self.planner.plan_statement(parsed),
        )
        violations: Sequence[Dict[str, Any]] = ()
        if analyze:
            # The cached tree is shared across executions; report this run's
            # statistics, not an accumulation over every run the tree saw.
            self.executor.execute(reset_runtime(physical), analyze=True)
            # With fresh runtime counters in hand, check every operator's
            # actual row count against its proven intermediate-size bound.
            violations = tuple(bound_violations(physical))
        raw = self.shape_plan(physical, analyze=analyze)
        text = self.serialize_plan(raw, chosen)
        return ExplainOutput(
            dbms=self.name,
            format=chosen,
            text=text,
            query=statement,
            bound_violations=violations,
        )

    def reset(self) -> None:
        """Drop every table, returning the DBMS to a pristine state."""
        for table_name in list(self.database.table_names()):
            self.database.drop_table(table_name)

    def analyze_tables(self) -> None:
        """Refresh optimizer statistics for every table."""
        self.database.analyze()


# ---------------------------------------------------------------------------
# Shared serialization helpers
# ---------------------------------------------------------------------------


def render_indented_text(
    plan: RawPlan,
    node_renderer: Callable[[RawPlanNode], str],
    property_renderer: Callable[[RawPlanNode], List[str]],
    indent: str = "  ",
    child_prefix: str = "->",
) -> str:
    """Render a raw plan as indented text (PostgreSQL-style)."""
    lines: List[str] = []

    def visit(node: RawPlanNode, depth: int) -> None:
        prefix = indent * depth
        arrow = f"{child_prefix}" if depth > 0 else ""
        lines.append(f"{prefix}{arrow}{node_renderer(node)}")
        for extra in property_renderer(node):
            lines.append(f"{prefix}{' ' * max(len(child_prefix), 2)}{extra}")
        for child in node.children:
            visit(child, depth + 1)

    if plan.root is not None:
        visit(plan.root, 0)
    for key, value in plan.properties.items():
        lines.append(f"{key}: {value}")
    return "\n".join(lines)


def render_json_plan(plan: RawPlan, node_key: str = "Node Type") -> str:
    """Render a raw plan as a generic JSON document."""

    def node_to_dict(node: RawPlanNode) -> Dict[str, Any]:
        data: Dict[str, Any] = {node_key: node.name}
        data.update(node.properties)
        if node.children:
            data["Plans"] = [node_to_dict(child) for child in node.children]
        return data

    document: Dict[str, Any] = {}
    if plan.root is not None:
        document["Plan"] = node_to_dict(plan.root)
    document.update(plan.properties)
    return json.dumps([document], indent=2)


def render_table_plan(
    plan: RawPlan,
    columns: Sequence[str],
    row_builder: Callable[[RawPlanNode, int, Optional[int], int], List[str]],
) -> str:
    """Render a raw plan as an ASCII table (MySQL / TiDB style).

    ``row_builder`` receives ``(node, node_id, parent_id, depth)`` and returns
    one cell value per column.
    """
    rows: List[List[str]] = []
    counter = [0]

    def visit(node: RawPlanNode, parent_id: Optional[int], depth: int) -> None:
        counter[0] += 1
        node_id = counter[0]
        rows.append([str(cell) for cell in row_builder(node, node_id, parent_id, depth)])
        for child in node.children:
            visit(child, node_id, depth + 1)

    if plan.root is not None:
        visit(plan.root, None, 0)

    widths = [
        max([len(column)] + [len(row[i]) for row in rows]) if rows else len(column)
        for i, column in enumerate(columns)
    ]

    def separator() -> str:
        return "+" + "+".join("-" * (width + 2) for width in widths) + "+"

    def format_row(cells: Sequence[str]) -> str:
        return "|" + "|".join(f" {cell.ljust(widths[i])} " for i, cell in enumerate(cells)) + "|"

    lines = [separator(), format_row(list(columns)), separator()]
    lines.extend(format_row(row) for row in rows)
    lines.append(separator())
    for key, value in plan.properties.items():
        lines.append(f"{key}: {value}")
    return "\n".join(lines)


def format_number(value: float, decimals: int = 2) -> str:
    """Format a cost/row number the way EXPLAIN outputs usually do."""
    return f"{value:.{decimals}f}"
