"""The prepared-query cache: memoised lex→parse→plan for the campaign hot path.

Differential-testing campaigns (QPG, TLP, CERT) issue the same query texts
over and over: QPG explains *and* executes every generated query, TLP runs
``SELECT * FROM t`` once per oracle check, and mutation rounds repeat whole
query shapes.  Without caching, every occurrence re-lexes, re-parses, and
re-plans the text from scratch.

:class:`PreparedQueryCache` memoises the two pure stages of the lifecycle:

* **Parsing** — keyed by the normalized statement text alone.  Parsing is
  schema-independent, so a parsed AST never goes stale.  Consumers share the
  cached AST objects and must treat them as frozen (the planner and executor
  only read them).
* **Planning** — keyed by ``(normalized text, statement index, catalog
  version)``.  The catalog version (:attr:`repro.catalog.database.Database.version`)
  advances on every DDL/DML/statistics mutation, so a plan cached against a
  since-mutated database simply misses and is re-planned; stale plans are
  unreachable by construction.  Entries for dead versions age out of the LRU.

The cache is semantically invisible: with ``enabled=False`` every lookup
misses and the dialect behaves exactly as before (asserted by the
cache-on/cache-off campaign-equivalence tests).

Normalization collapses whitespace runs only when the text provably contains
no construct whose meaning depends on whitespace or raw text (string
literals, quoted identifiers, comments, ``-``/``/`` that could open a
comment); anything else is keyed by its stripped raw text.  Two texts that
normalize alike therefore always tokenize alike.
"""

from __future__ import annotations

import re
from typing import Callable, List, Tuple

from repro.core.caching import CacheStats, LRUCache
from repro.optimizer.physical import PhysicalNode, RuntimeStats
from repro.sqlparser import ast_nodes as ast
from repro.sqlparser.parser import parse_sql

#: Characters whose presence makes whitespace-collapsing unsafe: quotes keep
#: raw text, ``-`` and ``/`` may open comments (a line comment's terminating
#: newline must not be folded into a space).
_UNSAFE_CHARS = ("'", '"', "`", "-", "/")
_WHITESPACE_RUN = re.compile(r"\s+")


def normalize_sql(sql: str) -> str:
    """Return the cache key for *sql*: whitespace-insensitive where safe."""
    if any(ch in sql for ch in _UNSAFE_CHARS):
        return sql.strip()
    return _WHITESPACE_RUN.sub(" ", sql.strip())


class PreparedQueryCache:
    """LRU caches for parsed statements and version-keyed physical plans.

    One instance belongs to one dialect (and therefore one
    :class:`~repro.catalog.database.Database`); the catalog version in the
    plan key refers to that database.
    """

    def __init__(self, ast_size: int = 512, plan_size: int = 1024, enabled: bool = True) -> None:
        self._asts = LRUCache(maxsize=ast_size)
        self._plans = LRUCache(maxsize=plan_size)
        #: When False, every lookup misses and nothing is stored: the
        #: lifecycle behaves exactly as if the cache did not exist.
        self.enabled = enabled

    # -- parsing -----------------------------------------------------------------

    def parse(self, sql: str) -> Tuple[str, List[ast.Statement]]:
        """Parse *sql* through the cache.

        Returns ``(normalized key, statements)``; the statement list and its
        AST nodes are shared between callers and must not be mutated.
        """
        if not self.enabled:
            return sql, parse_sql(sql)
        key = normalize_sql(sql)
        statements = self._asts.get(key)
        if statements is None:
            statements = parse_sql(sql)
            self._asts.put(key, statements)
        return key, statements

    # -- planning ----------------------------------------------------------------

    def plan(
        self,
        text_key: str,
        index: int,
        version: int,
        planner_callable: Callable[[], PhysicalNode],
    ) -> PhysicalNode:
        """Return the cached plan for statement *index* of *text_key*.

        *version* is the owning database's current catalog version; a miss
        invokes *planner_callable* and stores its plan under that version.
        The returned tree is shared across repeats of the same text: the
        executor treats plans as read-only (runtime statistics excepted —
        see :func:`reset_runtime`), and dialects re-shape them per call.
        """
        if not self.enabled:
            return planner_callable()
        key = (text_key, index, version)
        plan = self._plans.get(key)
        if plan is None:
            plan = planner_callable()
            self._plans.put(key, plan)
        return plan

    # -- introspection -----------------------------------------------------------

    @property
    def ast_stats(self) -> CacheStats:
        """Live hit/miss counters of the parse cache."""
        return self._asts.stats

    @property
    def plan_stats(self) -> CacheStats:
        """Live hit/miss counters of the plan cache."""
        return self._plans.stats

    def clear(self, reset_stats: bool = False) -> None:
        """Drop all cached ASTs and plans."""
        self._asts.clear(reset_stats=reset_stats)
        self._plans.clear(reset_stats=reset_stats)

    def __len__(self) -> int:
        return len(self._asts) + len(self._plans)


def reset_runtime(plan: PhysicalNode) -> PhysicalNode:
    """Zero the runtime statistics of every node in *plan* (in place).

    Cached plans are shared across executions; an ``EXPLAIN ANALYZE`` must
    report the statistics of *its* run, not an accumulation over every run
    the cached tree has seen, so analyzing executions reset first.
    Returns the plan for chaining.
    """
    for node in plan.walk():
        node.runtime = RuntimeStats()
    return plan
