"""Simulated TiDB dialect.

TiDB is the distributed relational DBMS of the study.  Its plans differ from
single-node DBMSs in two ways the paper highlights:

* operators carry auto-generated numeric suffixes (``TableFullScan_5``) that
  are unstable across runs — the original QPG TiDB parser failed to strip
  them, which is the implementation bug the paper reports;
* scans are wrapped in *reader* operators that collect data from storage
  nodes (``TableReader``/``IndexReader``/``IndexLookUp``), and distributed
  exchange operators appear — these map to the Executor category.

Serialized formats: the classic tabular ``EXPLAIN`` (``id`` / ``estRows`` /
``task`` / ``access object`` / ``operator info``), text (tree drawing only),
and JSON.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.dialects.base import RawPlan, RawPlanNode, RelationalDialect, format_number
from repro.errors import DialectError
from repro.optimizer.cost import CostModel
from repro.optimizer.physical import OpKind, PhysicalNode
from repro.optimizer.planner import PlannerOptions
from repro.sqlparser.printer import print_expression


class TiDBDialect(RelationalDialect):
    """The simulated TiDB 6.5.1 instance."""

    name = "tidb"
    version = "6.5.1"
    data_model = "relational"
    plan_formats = ("table", "text", "json")
    default_format = "table"

    def __init__(self, **options) -> None:
        super().__init__(**options)
        self._identifier_counter = self.identifier_seed

    def planner_options(self) -> PlannerOptions:
        return PlannerOptions(
            enable_hash_join=True,
            enable_merge_join=True,
            enable_nested_loop_join=True,
            prefer_hash_aggregate=True,
            enable_top_n=True,
            # TiDB favours index paths because row lookups are distributed.
            index_selectivity_threshold=0.45,
        )

    def cost_model(self) -> CostModel:
        return CostModel(random_page_cost=1.5, parallel_tuple_cost=0.05)

    # ------------------------------------------------------------------ shaping

    def _next_id(self) -> int:
        self._identifier_counter += 1
        return self._identifier_counter

    def _label(self, name: str) -> str:
        return f"{name}_{self._next_id()}"

    def shape_plan(self, physical: PhysicalNode, analyze: bool = False) -> RawPlan:
        root = self._shape(physical, analyze, task="root")
        return RawPlan(root=root, properties={})

    def _props(self, node: PhysicalNode, analyze: bool, task: str) -> Dict[str, Any]:
        properties: Dict[str, Any] = {
            "estRows": round(max(node.estimated_rows, 1.0), 2),
            "task": task,
            "estCost": round(node.cost.total, 2),
        }
        if analyze and node.runtime.executed:
            properties["actRows"] = node.runtime.actual_rows
            properties["execution info"] = f"time:{node.runtime.actual_time_ms:.3f}ms"
            properties["estFactor"] = round(
                node.runtime.actual_rows / max(node.estimated_rows, 1.0), 2
            )
            bound = node.info.get("size_bound")
            if bound is not None:
                properties["sizeBound"] = int(bound)
        return properties

    def _shape(self, node: PhysicalNode, analyze: bool, task: str) -> RawPlanNode:
        kind = node.kind

        if kind is OpKind.SEQ_SCAN:
            scan = RawPlanNode(
                self._label("TableFullScan"), self._props(node, analyze, "cop[tikv]")
            )
            scan.properties["access object"] = f"table:{node.info.get('table')}"
            scan.properties["operator info"] = "keep order:false"
            inner = scan
            if node.info.get("filter") is not None:
                selection = RawPlanNode(
                    self._label("Selection"), self._props(node, analyze, "cop[tikv]")
                )
                selection.properties["operator info"] = print_expression(node.info["filter"])
                selection.children.append(scan)
                inner = selection
            reader = RawPlanNode(self._label("TableReader"), self._props(node, analyze, task))
            reader.properties["operator info"] = "data:" + inner.name
            reader.children.append(inner)
            return reader

        if kind is OpKind.INDEX_ONLY_SCAN:
            index_scan = RawPlanNode(
                self._label("IndexRangeScan"), self._props(node, analyze, "cop[tikv]")
            )
            index_scan.properties["access object"] = (
                f"table:{node.info.get('table')}, index:{node.info.get('index')}"
            )
            if node.info.get("index_condition") is not None:
                index_scan.properties["operator info"] = print_expression(
                    node.info["index_condition"]
                )
            reader = RawPlanNode(self._label("IndexReader"), self._props(node, analyze, task))
            reader.properties["operator info"] = "index:" + index_scan.name
            reader.children.append(index_scan)
            return reader

        if kind is OpKind.INDEX_SCAN:
            lookup = RawPlanNode(self._label("IndexLookUp"), self._props(node, analyze, task))
            index_scan = RawPlanNode(
                self._label("IndexRangeScan"), self._props(node, analyze, "cop[tikv]")
            )
            index_scan.properties["access object"] = (
                f"table:{node.info.get('table')}, index:{node.info.get('index')}"
            )
            if node.info.get("index_condition") is not None:
                index_scan.properties["operator info"] = print_expression(
                    node.info["index_condition"]
                )
            index_scan.properties["build side"] = "build"
            row_scan = RawPlanNode(
                self._label("TableRowIDScan"), self._props(node, analyze, "cop[tikv]")
            )
            row_scan.properties["access object"] = f"table:{node.info.get('table')}"
            row_scan.properties["probe side"] = "probe"
            if node.info.get("filter") is not None:
                selection = RawPlanNode(
                    self._label("Selection"), self._props(node, analyze, "cop[tikv]")
                )
                selection.properties["operator info"] = print_expression(node.info["filter"])
                selection.children.append(row_scan)
                lookup.children = [index_scan, selection]
            else:
                lookup.children = [index_scan, row_scan]
            return lookup

        children = [self._shape(child, analyze, "root") for child in node.children]
        properties = self._props(node, analyze, task)

        if kind is OpKind.SUBQUERY_SCAN:
            raw = RawPlanNode(self._label("Projection"), properties, children)
            raw.properties["operator info"] = f"derived:{node.info.get('alias')}"
            return raw
        if kind in (OpKind.VALUES, OpKind.RESULT):
            return RawPlanNode(self._label("TableDual"), properties, children)

        if kind is OpKind.HASH_JOIN:
            raw = RawPlanNode(self._label("HashJoin"), properties, children)
            raw.properties["operator info"] = (
                f"{node.info.get('join_type', 'inner').lower()} join, equal:"
                + (print_expression(node.info["condition"]) if node.info.get("condition") else "")
            )
            return raw
        if kind in (OpKind.SEMI_JOIN, OpKind.ANTI_JOIN):
            # TiDB keeps the HashJoin operator and marks the semantics in
            # the operator info, as the real system does.
            raw = RawPlanNode(self._label("HashJoin"), properties, children)
            semantics = "semi join" if kind is OpKind.SEMI_JOIN else "anti semi join"
            probe = node.info.get("probe")
            equal = (
                f"{print_expression(probe)} = {node.info.get('inner_column')}"
                if probe is not None
                else ""
            )
            raw.properties["operator info"] = f"{semantics}, equal:{equal}"
            return raw
        if kind is OpKind.MERGE_JOIN:
            raw = RawPlanNode(self._label("MergeJoin"), properties, children)
            if node.info.get("condition") is not None:
                raw.properties["operator info"] = print_expression(node.info["condition"])
            return raw
        if kind is OpKind.NESTED_LOOP_JOIN:
            raw = RawPlanNode(self._label("IndexHashJoin"), properties, children)
            if node.info.get("condition") is not None:
                raw.properties["operator info"] = print_expression(node.info["condition"])
            return raw

        if kind in (OpKind.HASH_AGGREGATE, OpKind.SORT_AGGREGATE):
            label = "HashAgg" if kind is OpKind.HASH_AGGREGATE else "StreamAgg"
            raw = RawPlanNode(self._label(label), properties, children)
            group_keys = node.info.get("group_keys", [])
            aggregates = node.info.get("aggregates", [])
            info_parts = []
            if group_keys:
                info_parts.append(
                    "group by:" + ", ".join(print_expression(key) for key in group_keys)
                )
            if aggregates:
                info_parts.append(
                    "funcs:" + ", ".join(print_expression(agg) for agg in aggregates)
                )
            if node.info.get("deduplicate"):
                info_parts.append("deduplicate")
            raw.properties["operator info"] = "; ".join(info_parts)
            return raw

        if kind is OpKind.FILTER:
            raw = RawPlanNode(self._label("Selection"), properties, children)
            if node.info.get("predicate") is not None:
                raw.properties["operator info"] = print_expression(node.info["predicate"])
            for subplan in node.info.get("subplans", []):
                raw.children.append(self._shape(subplan, analyze, "root"))
            return raw

        if kind is OpKind.PROJECT:
            raw = RawPlanNode(self._label("Projection"), properties, children)
            items = node.info.get("items", [])
            raw.properties["operator info"] = ", ".join(name for _, name in items)
            return raw

        if kind is OpKind.DISTINCT:
            raw = RawPlanNode(self._label("HashAgg"), properties, children)
            raw.properties["operator info"] = "distinct"
            return raw

        if kind is OpKind.SORT:
            raw = RawPlanNode(self._label("Sort"), properties, children)
            keys = node.info.get("sort_keys", [])
            raw.properties["operator info"] = ", ".join(
                print_expression(expr) + (":desc" if desc else "") for expr, desc in keys
            )
            return raw
        if kind is OpKind.TOP_N:
            raw = RawPlanNode(self._label("TopN"), properties, children)
            keys = node.info.get("sort_keys", [])
            raw.properties["operator info"] = ", ".join(
                print_expression(expr) + (":desc" if desc else "") for expr, desc in keys
            )
            return raw
        if kind is OpKind.LIMIT:
            raw = RawPlanNode(self._label("Limit"), properties, children)
            if node.info.get("limit") is not None:
                raw.properties["operator info"] = (
                    "offset:0, count:" + print_expression(node.info["limit"])
                )
            return raw

        if kind is OpKind.APPEND:
            return RawPlanNode(self._label("Union"), properties, children)
        if kind is OpKind.INTERSECT:
            return RawPlanNode(self._label("Intersect"), properties, children)
        if kind is OpKind.EXCEPT:
            return RawPlanNode(self._label("Except"), properties, children)
        if kind in (OpKind.MATERIALIZE, OpKind.GATHER, OpKind.HASH_BUILD):
            return RawPlanNode(self._label("Projection"), properties, children)

        if kind in (OpKind.INSERT, OpKind.UPDATE, OpKind.DELETE):
            raw = RawPlanNode(self._label(kind.value), properties, children)
            raw.properties["access object"] = f"table:{node.info.get('table')}"
            return raw
        if kind in (OpKind.CREATE_TABLE, OpKind.CREATE_INDEX, OpKind.DROP_TABLE):
            return RawPlanNode(self._label("DDL"), properties, children)

        raise DialectError(self.name, f"cannot shape operator {kind.value}")

    # ------------------------------------------------------------------ serialization

    def serialize_plan(self, plan: RawPlan, format_name: str) -> str:
        if format_name == "table":
            return self._serialize_table(plan)
        if format_name == "text":
            return self._serialize_text(plan)
        if format_name == "json":
            return self._serialize_json(plan)
        raise DialectError(self.name, f"unknown format {format_name!r}")

    def _tree_prefix(self, depth: int, is_last: bool) -> str:
        if depth == 0:
            return ""
        return "  " * (depth - 1) + ("└─" if is_last else "├─")

    def _serialize_table(self, plan: RawPlan) -> str:
        rows: List[List[str]] = []

        def visit(node: RawPlanNode, depth: int, is_last: bool) -> None:
            rows.append(
                [
                    self._tree_prefix(depth, is_last) + node.name,
                    str(node.properties.get("estRows", "")),
                    str(node.properties.get("task", "root")),
                    str(node.properties.get("access object", "")),
                    str(node.properties.get("operator info", "")),
                ]
            )
            for index, child in enumerate(node.children):
                visit(child, depth + 1, index == len(node.children) - 1)

        if plan.root is not None:
            visit(plan.root, 0, True)
        columns = ["id", "estRows", "task", "access object", "operator info"]
        widths = [
            max([len(columns[i])] + [len(row[i]) for row in rows]) if rows else len(columns[i])
            for i in range(len(columns))
        ]

        def separator() -> str:
            return "+" + "+".join("-" * (width + 2) for width in widths) + "+"

        def fmt(cells: List[str]) -> str:
            return "|" + "|".join(
                f" {cell.ljust(widths[i])} " for i, cell in enumerate(cells)
            ) + "|"

        lines = [separator(), fmt(columns), separator()]
        lines.extend(fmt(row) for row in rows)
        lines.append(separator())
        return "\n".join(lines)

    def _serialize_text(self, plan: RawPlan) -> str:
        lines: List[str] = []

        def visit(node: RawPlanNode, depth: int, is_last: bool) -> None:
            lines.append(self._tree_prefix(depth, is_last) + node.name)
            for index, child in enumerate(node.children):
                visit(child, depth + 1, index == len(node.children) - 1)

        if plan.root is not None:
            visit(plan.root, 0, True)
        return "\n".join(lines)

    def _serialize_json(self, plan: RawPlan) -> str:
        def node_to_dict(node: RawPlanNode) -> Dict[str, Any]:
            data: Dict[str, Any] = {"id": node.name}
            data.update(node.properties)
            if node.children:
                data["subOperators"] = [node_to_dict(child) for child in node.children]
            return data

        document = node_to_dict(plan.root) if plan.root is not None else {}
        return json.dumps([document], indent=2)
