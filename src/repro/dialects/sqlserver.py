"""Simulated SQL Server dialect.

SQL Server is the commercial, closed-source DBMS of the study.  Its showplan
vocabulary differs from the open-source systems: ``Table Scan`` /
``Clustered Index Seek`` leaves, ``Hash Match`` covering both joins and
aggregation, ``Nested Loops``, ``Compute Scalar``, ``Stream Aggregate`` and
``Top``.  Serialized formats: SHOWPLAN_TEXT-style text, SHOWPLAN_XML-style
XML, a tabular SHOWPLAN_ALL-style output, and a DOT graph standing in for the
Management Studio graphical plan.
"""

from __future__ import annotations

from typing import Any, Dict, List
from xml.etree import ElementTree

from repro.dialects.base import RawPlan, RawPlanNode, RelationalDialect, render_table_plan
from repro.errors import DialectError
from repro.optimizer.cost import CostModel
from repro.optimizer.physical import OpKind, PhysicalNode
from repro.optimizer.planner import PlannerOptions
from repro.sqlparser.printer import print_expression


class SQLServerDialect(RelationalDialect):
    """The simulated SQL Server 16.0 (2022) instance."""

    name = "sqlserver"
    version = "16.0.4015.1"
    data_model = "relational"
    plan_formats = ("text", "table", "xml", "graph")
    default_format = "text"

    def planner_options(self) -> PlannerOptions:
        return PlannerOptions(
            enable_hash_join=True,
            enable_merge_join=True,
            enable_nested_loop_join=True,
            prefer_hash_aggregate=True,
        )

    def cost_model(self) -> CostModel:
        return CostModel(random_page_cost=3.0, cpu_operator_cost=0.002)

    # ------------------------------------------------------------------ shaping

    def shape_plan(self, physical: PhysicalNode, analyze: bool = False) -> RawPlan:
        root = self._shape(physical, analyze)
        return RawPlan(root=root, properties={"StatementType": "SELECT"})

    def _props(self, node: PhysicalNode, analyze: bool) -> Dict[str, Any]:
        properties: Dict[str, Any] = {
            "EstimateRows": round(max(node.estimated_rows, 1.0), 2),
            "EstimatedTotalSubtreeCost": round(node.cost.total / 100.0, 4),
            "AvgRowSize": node.width,
        }
        if analyze and node.runtime.executed:
            properties["ActualRows"] = node.runtime.actual_rows
            properties["ActualElapsedms"] = round(node.runtime.actual_time_ms, 3)
            properties["EstimateFactor"] = round(
                node.runtime.actual_rows / max(node.estimated_rows, 1.0), 2
            )
            bound = node.info.get("size_bound")
            if bound is not None:
                properties["SizeBound"] = int(bound)
        return properties

    def _shape(self, node: PhysicalNode, analyze: bool) -> RawPlanNode:
        kind = node.kind
        children = [self._shape(child, analyze) for child in node.children]
        properties = self._props(node, analyze)

        if kind is OpKind.SEQ_SCAN:
            raw = RawPlanNode("Table Scan", properties)
            raw.properties["Object"] = f"[{node.info.get('table')}]"
            if node.info.get("filter") is not None:
                raw.properties["Predicate"] = print_expression(node.info["filter"])
            return raw
        if kind is OpKind.INDEX_SCAN:
            raw = RawPlanNode("Index Seek", properties)
            raw.properties["Object"] = (
                f"[{node.info.get('table')}].[{node.info.get('index')}]"
            )
            if node.info.get("index_condition") is not None:
                raw.properties["SeekPredicates"] = print_expression(node.info["index_condition"])
            if node.info.get("filter") is not None:
                raw.properties["Predicate"] = print_expression(node.info["filter"])
            return raw
        if kind is OpKind.INDEX_ONLY_SCAN:
            raw = RawPlanNode("Clustered Index Seek", properties)
            raw.properties["Object"] = (
                f"[{node.info.get('table')}].[{node.info.get('index')}]"
            )
            if node.info.get("index_condition") is not None:
                raw.properties["SeekPredicates"] = print_expression(node.info["index_condition"])
            return raw
        if kind is OpKind.SUBQUERY_SCAN:
            return RawPlanNode("Table Spool", properties, children)
        if kind in (OpKind.VALUES, OpKind.RESULT):
            return RawPlanNode("Constant Scan", properties, children)

        if kind is OpKind.HASH_JOIN:
            raw = RawPlanNode("Hash Match", properties, children)
            raw.properties["LogicalOp"] = f"{node.info.get('join_type', 'Inner').title()} Join"
            if node.info.get("condition") is not None:
                raw.properties["HashKeysProbe"] = print_expression(node.info["condition"])
            return raw
        if kind in (OpKind.SEMI_JOIN, OpKind.ANTI_JOIN):
            raw = RawPlanNode("Hash Match", properties, children)
            raw.properties["LogicalOp"] = (
                "Left Semi Join" if kind is OpKind.SEMI_JOIN else "Left Anti Semi Join"
            )
            if node.info.get("probe") is not None:
                raw.properties["HashKeysProbe"] = print_expression(node.info["probe"])
            return raw
        if kind is OpKind.MERGE_JOIN:
            raw = RawPlanNode("Merge Join", properties, children)
            raw.properties["LogicalOp"] = f"{node.info.get('join_type', 'Inner').title()} Join"
            if node.info.get("condition") is not None:
                raw.properties["Residual"] = print_expression(node.info["condition"])
            return raw
        if kind is OpKind.NESTED_LOOP_JOIN:
            raw = RawPlanNode("Nested Loops", properties, children)
            raw.properties["LogicalOp"] = f"{node.info.get('join_type', 'Inner').title()} Join"
            if node.info.get("condition") is not None:
                raw.properties["Predicate"] = print_expression(node.info["condition"])
            return raw

        if kind is OpKind.HASH_AGGREGATE:
            raw = RawPlanNode("Hash Match", properties, children)
            raw.properties["LogicalOp"] = "Aggregate"
            group_keys = node.info.get("group_keys", [])
            if group_keys:
                raw.properties["GroupBy"] = ", ".join(print_expression(k) for k in group_keys)
            return raw
        if kind is OpKind.SORT_AGGREGATE:
            raw = RawPlanNode("Stream Aggregate", properties, children)
            group_keys = node.info.get("group_keys", [])
            if group_keys:
                raw.properties["GroupBy"] = ", ".join(print_expression(k) for k in group_keys)
            return raw

        if kind is OpKind.FILTER:
            raw = RawPlanNode("Filter", properties, children)
            if node.info.get("predicate") is not None:
                raw.properties["Predicate"] = print_expression(node.info["predicate"])
            for subplan in node.info.get("subplans", []):
                raw.children.append(self._shape(subplan, analyze))
            return raw
        if kind is OpKind.PROJECT:
            raw = RawPlanNode("Compute Scalar", properties, children)
            items = node.info.get("items", [])
            raw.properties["DefinedValues"] = ", ".join(name for _, name in items)
            return raw
        if kind is OpKind.DISTINCT:
            raw = RawPlanNode("Hash Match", properties, children)
            raw.properties["LogicalOp"] = "Distinct"
            return raw
        if kind is OpKind.SORT:
            raw = RawPlanNode("Sort", properties, children)
            keys = node.info.get("sort_keys", [])
            raw.properties["OrderBy"] = ", ".join(
                print_expression(expr) + (" DESC" if desc else " ASC") for expr, desc in keys
            )
            return raw
        if kind is OpKind.TOP_N:
            sort = RawPlanNode("Sort", dict(properties), children)
            keys = node.info.get("sort_keys", [])
            sort.properties["OrderBy"] = ", ".join(
                print_expression(expr) + (" DESC" if desc else " ASC") for expr, desc in keys
            )
            top = RawPlanNode("Top", properties, [sort])
            return top
        if kind is OpKind.LIMIT:
            return RawPlanNode("Top", properties, children)
        if kind is OpKind.APPEND:
            return RawPlanNode("Concatenation", properties, children)
        if kind is OpKind.INTERSECT:
            raw = RawPlanNode("Hash Match", properties, children)
            raw.properties["LogicalOp"] = "Left Semi Join"
            return raw
        if kind is OpKind.EXCEPT:
            raw = RawPlanNode("Hash Match", properties, children)
            raw.properties["LogicalOp"] = "Left Anti Semi Join"
            return raw
        if kind in (OpKind.MATERIALIZE, OpKind.GATHER, OpKind.HASH_BUILD):
            return RawPlanNode("Table Spool", properties, children)
        if kind in (OpKind.INSERT, OpKind.UPDATE, OpKind.DELETE):
            raw = RawPlanNode(f"{kind.value.title()}" if kind is not OpKind.INSERT else "Table Insert", properties, children)
            raw.properties["Object"] = f"[{node.info.get('table')}]"
            return raw
        if kind in (OpKind.CREATE_TABLE, OpKind.CREATE_INDEX, OpKind.DROP_TABLE):
            return RawPlanNode("DDL Statement", properties, children)
        raise DialectError(self.name, f"cannot shape operator {kind.value}")

    # ------------------------------------------------------------------ serialization

    def serialize_plan(self, plan: RawPlan, format_name: str) -> str:
        if format_name == "text":
            return self._serialize_text(plan)
        if format_name == "table":
            return self._serialize_table(plan)
        if format_name == "xml":
            return self._serialize_xml(plan)
        if format_name == "graph":
            return self._serialize_graph(plan)
        raise DialectError(self.name, f"unknown format {format_name!r}")

    def _headline(self, node: RawPlanNode) -> str:
        logical = node.properties.get("LogicalOp")
        details = []
        if logical:
            details.append(logical)
        for key in ("Object", "SeekPredicates", "Predicate", "GroupBy", "OrderBy"):
            if key in node.properties:
                details.append(f"{key}:({node.properties[key]})")
        suffix = ", ".join(details)
        return f"{node.name}({suffix})" if suffix else node.name

    def _serialize_text(self, plan: RawPlan) -> str:
        lines: List[str] = []

        def visit(node: RawPlanNode, depth: int) -> None:
            indent = "  " * depth
            prefix = "|--" if depth > 0 else ""
            lines.append(f"{indent}{prefix}{self._headline(node)}")
            for child in node.children:
                visit(child, depth + 1)

        if plan.root is not None:
            visit(plan.root, 0)
        return "\n".join(lines)

    def _serialize_table(self, plan: RawPlan) -> str:
        columns = ["NodeId", "Parent", "PhysicalOp", "LogicalOp", "EstimateRows", "TotalSubtreeCost"]

        def row_builder(node: RawPlanNode, node_id: int, parent_id, depth: int) -> List[str]:
            return [
                str(node_id),
                "" if parent_id is None else str(parent_id),
                node.name,
                str(node.properties.get("LogicalOp", node.name)),
                str(node.properties.get("EstimateRows", "")),
                str(node.properties.get("EstimatedTotalSubtreeCost", "")),
            ]

        return render_table_plan(plan, columns, row_builder)

    def _serialize_xml(self, plan: RawPlan) -> str:
        def element_for(node: RawPlanNode) -> ElementTree.Element:
            element = ElementTree.Element("RelOp", PhysicalOp=node.name)
            for key, value in node.properties.items():
                element.set(key, str(value))
            for child in node.children:
                element.append(element_for(child))
            return element

        root = ElementTree.Element(
            "ShowPlanXML",
            xmlns="http://schemas.microsoft.com/sqlserver/2004/07/showplan",
            Version="1.564",
        )
        statements = ElementTree.SubElement(root, "BatchSequence")
        batch = ElementTree.SubElement(statements, "Batch")
        stmts = ElementTree.SubElement(batch, "Statements")
        simple = ElementTree.SubElement(stmts, "StmtSimple")
        query_plan = ElementTree.SubElement(simple, "QueryPlan")
        if plan.root is not None:
            query_plan.append(element_for(plan.root))
        return ElementTree.tostring(root, encoding="unicode")

    def _serialize_graph(self, plan: RawPlan) -> str:
        lines = ["digraph sqlserver_plan {", "  node [shape=box];"]
        counter = [0]

        def visit(node: RawPlanNode) -> int:
            counter[0] += 1
            node_id = counter[0]
            lines.append(f'  n{node_id} [label="{node.name}"];')
            for child in node.children:
                child_id = visit(child)
                lines.append(f"  n{node_id} -> n{child_id};")
            return node_id

        if plan.root is not None:
            visit(plan.root)
        lines.append("}")
        return "\n".join(lines)
