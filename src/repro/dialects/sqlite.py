"""Simulated SQLite dialect.

SQLite exposes ``EXPLAIN QUERY PLAN`` as a compact textual tree (Listing 1 of
the paper) and nothing else — its low-level ``EXPLAIN`` bytecode output is not
a query plan representation in the paper's sense.  The vocabulary is small
(Table II counts only 17 operations and 3 properties): scans, searches with
index annotations, temporary B-trees for grouping/ordering, and compound
query combinators.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.dialects.base import RawPlan, RawPlanNode, RelationalDialect
from repro.errors import DialectError
from repro.optimizer.cost import CostModel
from repro.optimizer.physical import OpKind, PhysicalNode
from repro.optimizer.planner import PlannerOptions
from repro.sqlparser.printer import print_expression


class SQLiteDialect(RelationalDialect):
    """The simulated SQLite 3.41.2 instance."""

    name = "sqlite"
    version = "3.41.2"
    data_model = "relational"
    plan_formats = ("text",)
    default_format = "text"

    def planner_options(self) -> PlannerOptions:
        return PlannerOptions(
            enable_hash_join=False,
            enable_merge_join=False,
            enable_nested_loop_join=True,
            prefer_hash_aggregate=False,
            enable_top_n=False,
            # SQLite aggressively builds automatic indexes for joins.
            index_selectivity_threshold=0.6,
        )

    def cost_model(self) -> CostModel:
        return CostModel(random_page_cost=1.2, cpu_tuple_cost=0.005)

    # ------------------------------------------------------------------ shaping

    def shape_plan(self, physical: PhysicalNode, analyze: bool = False) -> RawPlan:
        nodes = self._flatten(physical)
        if len(nodes) == 1:
            return RawPlan(root=nodes[0])
        root = RawPlanNode("QUERY PLAN", {}, nodes)
        return RawPlan(root=root)

    def _flatten(self, node: PhysicalNode) -> List[RawPlanNode]:
        """SQLite's EXPLAIN QUERY PLAN lists steps rather than a full operator tree."""
        kind = node.kind

        if kind is OpKind.SEQ_SCAN:
            return [RawPlanNode(f"SCAN {node.info.get('table')}", {"table": node.info.get("table")})]
        if kind is OpKind.INDEX_SCAN:
            condition = node.info.get("index_condition")
            suffix = f" ({print_expression(condition)})" if condition is not None else ""
            return [
                RawPlanNode(
                    f"SEARCH {node.info.get('table')} USING INDEX {node.info.get('index')}{suffix}",
                    {"table": node.info.get("table"), "index": node.info.get("index")},
                )
            ]
        if kind is OpKind.INDEX_ONLY_SCAN:
            condition = node.info.get("index_condition")
            suffix = f" ({print_expression(condition)})" if condition is not None else ""
            return [
                RawPlanNode(
                    f"SEARCH {node.info.get('table')} USING COVERING INDEX "
                    f"{node.info.get('index')}{suffix}",
                    {"table": node.info.get("table"), "index": node.info.get("index")},
                )
            ]
        if kind is OpKind.SUBQUERY_SCAN:
            inner = self._flatten(node.children[0])
            wrapper = RawPlanNode(f"CO-ROUTINE {node.info.get('alias', 'subquery')}", {}, inner)
            return [wrapper]
        if kind in (OpKind.VALUES, OpKind.RESULT):
            return [RawPlanNode("SCAN CONSTANT ROW", {})]

        if kind in (OpKind.NESTED_LOOP_JOIN, OpKind.HASH_JOIN, OpKind.MERGE_JOIN):
            steps = self._flatten(node.children[0]) + self._flatten(node.children[1])
            # SQLite turns the inner side of a join into an automatic index
            # search when the join has an equality condition.
            if node.info.get("condition") is not None and len(steps) >= 2:
                inner = steps[-1]
                if inner.name.startswith("SCAN ") and inner.properties.get("table"):
                    inner.name = (
                        f"SEARCH {inner.properties['table']} USING AUTOMATIC COVERING INDEX"
                    )
            return steps

        if kind in (OpKind.SEMI_JOIN, OpKind.ANTI_JOIN):
            # SQLite shows a decorrelated IN/EXISTS as the outer scan plus a
            # LIST SUBQUERY step holding the materialized inner query.
            steps = self._flatten(node.children[0])
            steps.append(
                RawPlanNode("LIST SUBQUERY", {}, self._flatten(node.children[1]))
            )
            return steps

        if kind in (OpKind.HASH_AGGREGATE, OpKind.SORT_AGGREGATE):
            steps = self._flatten(node.children[0]) if node.children else []
            if node.info.get("group_keys") or node.info.get("deduplicate"):
                steps.append(RawPlanNode("USE TEMP B-TREE FOR GROUP BY", {}))
            return steps
        if kind is OpKind.DISTINCT:
            steps = self._flatten(node.children[0])
            steps.append(RawPlanNode("USE TEMP B-TREE FOR DISTINCT", {}))
            return steps
        if kind in (OpKind.SORT, OpKind.TOP_N):
            steps = self._flatten(node.children[0])
            steps.append(RawPlanNode("USE TEMP B-TREE FOR ORDER BY", {}))
            return steps
        if kind is OpKind.LIMIT:
            return self._flatten(node.children[0])
        if kind is OpKind.FILTER:
            steps = self._flatten(node.children[0])
            for subplan in node.info.get("subplans", []):
                inner = self._flatten(subplan)
                steps.append(RawPlanNode("LIST SUBQUERY", {}, inner))
            return steps
        if kind is OpKind.PROJECT:
            return self._flatten(node.children[0])

        if kind is OpKind.APPEND:
            children: List[RawPlanNode] = []
            for index, child in enumerate(node.children):
                inner = self._flatten(child)
                label = "LEFT-MOST SUBQUERY" if index == 0 else "UNION ALL"
                if node.info.get("set_operator") == "UNION":
                    label = "LEFT-MOST SUBQUERY" if index == 0 else "UNION USING TEMP B-TREE"
                children.append(RawPlanNode(label, {}, inner))
            return [RawPlanNode("COMPOUND QUERY", {}, children)]
        if kind is OpKind.INTERSECT:
            children = [
                RawPlanNode("LEFT-MOST SUBQUERY", {}, self._flatten(node.children[0])),
                RawPlanNode("INTERSECT USING TEMP B-TREE", {}, self._flatten(node.children[1])),
            ]
            return [RawPlanNode("COMPOUND QUERY", {}, children)]
        if kind is OpKind.EXCEPT:
            children = [
                RawPlanNode("LEFT-MOST SUBQUERY", {}, self._flatten(node.children[0])),
                RawPlanNode("EXCEPT USING TEMP B-TREE", {}, self._flatten(node.children[1])),
            ]
            return [RawPlanNode("COMPOUND QUERY", {}, children)]

        if kind in (OpKind.MATERIALIZE, OpKind.GATHER, OpKind.HASH_BUILD):
            return self._flatten(node.children[0])
        if kind in (OpKind.INSERT, OpKind.UPDATE, OpKind.DELETE):
            steps = []
            for child in node.children:
                steps.extend(self._flatten(child))
            steps.append(RawPlanNode(f"{kind.value.upper()} {node.info.get('table')}", {}))
            return steps
        if kind in (OpKind.CREATE_TABLE, OpKind.CREATE_INDEX, OpKind.DROP_TABLE):
            return [RawPlanNode(f"{kind.value.upper()}", {})]

        raise DialectError(self.name, f"cannot shape operator {kind.value}")

    # ------------------------------------------------------------------ serialization

    def serialize_plan(self, plan: RawPlan, format_name: str) -> str:
        if format_name != "text":
            raise DialectError(self.name, f"unknown format {format_name!r}")
        lines: List[str] = []

        def visit(node: RawPlanNode, prefix: str, is_last: bool, depth: int) -> None:
            if depth == 0:
                lines.append(f"`--{node.name}" if node.name != "QUERY PLAN" else "QUERY PLAN")
            else:
                connector = "`--" if is_last else "|--"
                lines.append(f"{prefix}{connector}{node.name}")
            child_prefix = prefix if depth == 0 and node.name == "QUERY PLAN" else prefix + (
                "   " if is_last else "|  "
            )
            if depth == 0 and node.name == "QUERY PLAN":
                child_prefix = ""
            for index, child in enumerate(node.children):
                visit(child, child_prefix, index == len(node.children) - 1, depth + 1)

        if plan.root is not None:
            visit(plan.root, "", True, 0)
        return "\n".join(lines)
