"""repro — a reproduction of *"Towards a Unified Query Plan Representation"*.

The package is organised in four layers:

Substrates
    :mod:`repro.sqlparser`, :mod:`repro.catalog`, :mod:`repro.storage`,
    :mod:`repro.engine`, :mod:`repro.optimizer` — a from-scratch relational
    query-processing stack (plus document/graph/time-series stores) used by
    the simulated DBMSs.

Simulated DBMSs and converters
    :mod:`repro.dialects` — nine simulated DBMSs exposing serialized query
    plans in their native formats; :mod:`repro.converters` — converters from
    each native format into the unified representation, registered through
    the :class:`~repro.converters.base.ConverterHub`, whose
    ``(dbms, format, source-hash)`` LRU cache memoises conversions.

The plan pipeline
    :mod:`repro.pipeline` — batched, deduplicating ingestion on top of the
    hub.  Its invariants are provided by :mod:`repro.core`: plans have a
    *canonical form* (properties ordered by the grammar's category order;
    child order preserved as semantically significant) and a cached
    Merkle-style *fingerprint* that is invariant under canonicalization and
    serialization round-trips and stable across processes, so plan identity
    is an O(1) comparison and coverage sets merge across runs.  Plans
    returned by the pipeline are shared and must be treated as frozen.

UPlan and applications
    :mod:`repro.core` — the unified query plan representation (the paper's
    contribution); :mod:`repro.testing` (QPG, CERT, TLP — coverage tracked
    by structural fingerprint via the pipeline), :mod:`repro.visualize`,
    :mod:`repro.benchmarking`, and :mod:`repro.study` — the case-study
    artefacts and the three applications.
"""

from repro.core import (
    Operation,
    OperationCategory,
    PlanBuilder,
    PlanNode,
    Property,
    PropertyCategory,
    UnifiedPlan,
)

__version__ = "1.1.0"

__all__ = [
    "Operation",
    "OperationCategory",
    "PlanBuilder",
    "PlanNode",
    "Property",
    "PropertyCategory",
    "UnifiedPlan",
    "__version__",
]
