"""repro — a reproduction of *"Towards a Unified Query Plan Representation"*.

The package is organised in three layers:

Substrates
    :mod:`repro.sqlparser`, :mod:`repro.catalog`, :mod:`repro.storage`,
    :mod:`repro.engine`, :mod:`repro.optimizer` — a from-scratch relational
    query-processing stack (plus document/graph/time-series stores) used by
    the simulated DBMSs.

Simulated DBMSs and converters
    :mod:`repro.dialects` — nine simulated DBMSs exposing serialized query
    plans in their native formats; :mod:`repro.converters` — converters from
    each native format into the unified representation.

UPlan and applications
    :mod:`repro.core` — the unified query plan representation (the paper's
    contribution); :mod:`repro.testing` (QPG, CERT, TLP),
    :mod:`repro.visualize`, :mod:`repro.benchmarking`, and
    :mod:`repro.study` — the case-study artefacts and the three applications.
"""

from repro.core import (
    Operation,
    OperationCategory,
    PlanBuilder,
    PlanNode,
    Property,
    PropertyCategory,
    UnifiedPlan,
)

__version__ = "1.0.0"

__all__ = [
    "Operation",
    "OperationCategory",
    "PlanBuilder",
    "PlanNode",
    "Property",
    "PropertyCategory",
    "UnifiedPlan",
    "__version__",
]
