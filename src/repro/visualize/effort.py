"""The PEV2 adaptation effort model (Section V-A.2).

The paper estimates the effort of supporting multiple DBMSs with and without
UPlan from PEV2's development history: 24,559 lines of code over 188 days
(≈ 130 lines/day) for one DBMS-specific tool, versus ≈ 800 modified lines
(≈ 6 days) to make PEV2 consume the unified representation for five DBMSs —
an ≈ 80 % reduction.  This module reproduces that arithmetic so the numbers in
the paper can be regenerated and extended to other DBMS counts.
"""

from __future__ import annotations

from dataclasses import dataclass

#: PEV2 development history as reported in the paper.
PEV2_LINES_OF_CODE = 24_559
PEV2_DEVELOPMENT_DAYS = 188
#: Lines modified to make PEV2 consume UPlan.
UPLAN_ADAPTATION_LINES = 800


@dataclass
class AdaptationEffort:
    """Effort comparison for supporting *dbms_count* DBMSs."""

    dbms_count: int
    lines_per_day: float
    per_dbms_days: float
    uplan_adaptation_days: float

    @property
    def dbms_specific_days(self) -> float:
        """Days to build one DBMS-specific visualizer per DBMS."""
        return self.per_dbms_days * self.dbms_count

    @property
    def uplan_days(self) -> float:
        """Days to build one visualizer plus the UPlan adaptation."""
        return self.per_dbms_days + self.uplan_adaptation_days

    @property
    def reduction_fraction(self) -> float:
        """Relative effort reduction from using UPlan (paper: ≈ 0.8 for five DBMSs)."""
        if self.dbms_specific_days <= 0:
            return 0.0
        return 1.0 - self.uplan_days / self.dbms_specific_days


def estimate_effort(dbms_count: int = 5) -> AdaptationEffort:
    """Reproduce the paper's effort estimate for *dbms_count* DBMSs."""
    lines_per_day = PEV2_LINES_OF_CODE / PEV2_DEVELOPMENT_DAYS
    return AdaptationEffort(
        dbms_count=dbms_count,
        lines_per_day=lines_per_day,
        per_dbms_days=PEV2_DEVELOPMENT_DAYS,
        uplan_adaptation_days=UPLAN_ADAPTATION_LINES / lines_per_day,
    )
