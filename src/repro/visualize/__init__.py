"""Application A.2: visualization of unified query plans."""

from repro.visualize.renderers import render_ascii, render_dot, render_html
from repro.visualize.effort import (
    AdaptationEffort,
    PEV2_LINES_OF_CODE,
    PEV2_DEVELOPMENT_DAYS,
    UPLAN_ADAPTATION_LINES,
    estimate_effort,
)

__all__ = [
    "render_ascii",
    "render_dot",
    "render_html",
    "AdaptationEffort",
    "PEV2_LINES_OF_CODE",
    "PEV2_DEVELOPMENT_DAYS",
    "UPLAN_ADAPTATION_LINES",
    "estimate_effort",
]
