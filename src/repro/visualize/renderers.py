"""Renderers that visualize unified query plans (the PEV2 adaptation, Figure 3).

A single implementation renders the plan of *any* DBMS that can be converted
to UPlan — the paper's point for application A.2.  Three output targets are
provided: an ASCII tree for terminals, Graphviz DOT for graph tooling, and a
self-contained HTML page mimicking PEV2's card layout.
"""

from __future__ import annotations

import html
from typing import List

from repro.core.categories import OperationCategory
from repro.core.model import PlanNode, UnifiedPlan

#: Category → colour used by the DOT and HTML renderers.
CATEGORY_COLOURS = {
    OperationCategory.PRODUCER: "#4e79a7",
    OperationCategory.COMBINATOR: "#f28e2b",
    OperationCategory.JOIN: "#e15759",
    OperationCategory.FOLDER: "#76b7b2",
    OperationCategory.PROJECTOR: "#59a14f",
    OperationCategory.EXECUTOR: "#bab0ac",
    OperationCategory.CONSUMER: "#b07aa1",
}


def render_ascii(plan: UnifiedPlan, with_properties: bool = False) -> str:
    """Render a unified plan as an ASCII tree."""
    lines: List[str] = [f"[{plan.source_dbms or 'unified'}] query plan"]

    def visit(node: PlanNode, prefix: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        lines.append(f"{prefix}{connector}{node.operation.category.value}->{node.operation.identifier}")
        if with_properties:
            for prop in node.properties:
                lines.append(f"{prefix}{'    ' if is_last else '|   '}  * {prop.identifier}: {prop.value}")
        child_prefix = prefix + ("    " if is_last else "|   ")
        for index, child in enumerate(node.children):
            visit(child, child_prefix, index == len(node.children) - 1)

    if plan.root is not None:
        visit(plan.root, "", True)
    for prop in plan.properties:
        lines.append(f"= {prop.identifier}: {prop.value}")
    return "\n".join(lines)


def render_dot(plan: UnifiedPlan) -> str:
    """Render a unified plan as a Graphviz DOT digraph."""
    lines = [
        "digraph unified_plan {",
        "  rankdir=TB;",
        '  node [shape=box, style="rounded,filled", fontname="Helvetica"];',
    ]
    counter = [0]

    def visit(node: PlanNode) -> int:
        counter[0] += 1
        node_id = counter[0]
        colour = CATEGORY_COLOURS[node.operation.category]
        label = f"{node.operation.category.value}\\n{node.operation.identifier}"
        lines.append(f'  n{node_id} [label="{label}", fillcolor="{colour}", fontcolor="white"];')
        for child in node.children:
            child_id = visit(child)
            lines.append(f"  n{node_id} -> n{child_id};")
        return node_id

    if plan.root is not None:
        visit(plan.root)
    lines.append("}")
    return "\n".join(lines)


def render_html(plan: UnifiedPlan, title: str = "Unified query plan") -> str:
    """Render a unified plan as a self-contained HTML page (PEV2-style cards)."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        "<style>",
        "body { font-family: sans-serif; background: #f4f5f7; }",
        ".node { border-radius: 6px; padding: 6px 10px; margin: 6px 0 6px 24px;",
        "        background: white; border-left: 6px solid #888; box-shadow: 0 1px 2px rgba(0,0,0,.15); }",
        ".category { font-size: 11px; text-transform: uppercase; color: #666; }",
        ".operation { font-weight: bold; }",
        ".property { font-size: 12px; color: #444; }",
        "</style></head><body>",
        f"<h2>{html.escape(title)} — {html.escape(plan.source_dbms or 'unified')}</h2>",
    ]

    def visit(node: PlanNode, depth: int) -> None:
        colour = CATEGORY_COLOURS[node.operation.category]
        parts.append(
            f"<div class='node' style='margin-left:{24 * depth}px; border-left-color:{colour}'>"
            f"<div class='category'>{node.operation.category.value}</div>"
            f"<div class='operation'>{html.escape(node.operation.identifier)}</div>"
        )
        for prop in node.properties[:6]:
            parts.append(
                f"<div class='property'>{html.escape(prop.identifier)}: "
                f"{html.escape(str(prop.value))}</div>"
            )
        parts.append("</div>")
        for child in node.children:
            visit(child, depth + 1)

    if plan.root is not None:
        visit(plan.root, 0)
    if plan.properties:
        parts.append("<h3>Plan properties</h3><ul>")
        for prop in plan.properties:
            parts.append(f"<li>{html.escape(prop.identifier)}: {html.escape(str(prop.value))}</li>")
        parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)
