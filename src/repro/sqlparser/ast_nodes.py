"""Abstract syntax tree node definitions for the SQL subset.

The AST covers the SQL needed by the paper's workloads: DDL (``CREATE TABLE``,
``CREATE INDEX``, ``DROP TABLE``), DML (``INSERT``, ``UPDATE``, ``DELETE``),
and ``SELECT`` with joins, subqueries, grouping, ordering, set operations, and
``EXPLAIN`` wrappers.  All nodes are plain dataclasses; behaviour (printing,
planning, evaluation) lives in dedicated modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union


class Node:
    """Base class of every AST node."""


class Expression(Node):
    """Base class of scalar expressions."""


class Statement(Node):
    """Base class of statements."""


class TableExpression(Node):
    """Base class of FROM-clause items (tables, subqueries, joins)."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Literal(Expression):
    """A constant value: number, string, boolean, or NULL."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class ColumnRef(Expression):
    """A (possibly qualified) column reference such as ``t0.c0``."""

    column: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass
class Star(Expression):
    """The ``*`` (or ``t.*``) select item."""

    table: Optional[str] = None


@dataclass
class BinaryOp(Expression):
    """A binary operation: arithmetic, comparison, AND/OR, string concat."""

    operator: str
    left: Expression
    right: Expression


@dataclass
class UnaryOp(Expression):
    """A unary operation: ``NOT expr``, ``-expr``, ``+expr``."""

    operator: str
    operand: Expression


@dataclass
class FunctionCall(Expression):
    """A function or aggregate call, e.g. ``COUNT(*)`` or ``SUM(x)``."""

    name: str
    arguments: List[Expression] = field(default_factory=list)
    distinct: bool = False
    star: bool = False


@dataclass
class InList(Expression):
    """``expr [NOT] IN (item, item, ...)``."""

    expression: Expression
    items: List[Expression] = field(default_factory=list)
    negated: bool = False


@dataclass
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    expression: Expression
    subquery: "SelectStatement" = None
    negated: bool = False


@dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    expression: Expression
    low: Expression = None
    high: Expression = None
    negated: bool = False


@dataclass
class Like(Expression):
    """``expr [NOT] LIKE pattern``."""

    expression: Expression
    pattern: Expression = None
    negated: bool = False


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    expression: Expression
    negated: bool = False


@dataclass
class CaseWhen(Node):
    """One ``WHEN condition THEN result`` arm of a CASE expression."""

    condition: Expression
    result: Expression


@dataclass
class Case(Expression):
    """A searched or simple CASE expression."""

    operand: Optional[Expression] = None
    whens: List[CaseWhen] = field(default_factory=list)
    else_result: Optional[Expression] = None


@dataclass
class Cast(Expression):
    """``CAST(expr AS type)``."""

    expression: Expression
    target_type: str = "TEXT"


@dataclass
class ScalarSubquery(Expression):
    """A parenthesised SELECT used as a scalar value."""

    query: "SelectStatement" = None


@dataclass
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "SelectStatement" = None
    negated: bool = False


@dataclass
class Parameter(Expression):
    """A positional parameter (``?`` or ``$n``)."""

    name: str = "?"


# ---------------------------------------------------------------------------
# FROM-clause items
# ---------------------------------------------------------------------------


@dataclass
class TableRef(TableExpression):
    """A base-table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        """The name by which columns of this table are qualified."""
        return self.alias or self.name


@dataclass
class SubqueryRef(TableExpression):
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "SelectStatement"
    alias: str = "subquery"

    @property
    def effective_name(self) -> str:
        return self.alias


@dataclass
class Join(TableExpression):
    """A join between two FROM-clause items."""

    left: TableExpression
    right: TableExpression
    join_type: str = "INNER"  # INNER, LEFT, RIGHT, FULL, CROSS
    condition: Optional[Expression] = None
    using_columns: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


@dataclass
class SelectItem(Node):
    """One item of the SELECT list."""

    expression: Expression
    alias: Optional[str] = None


@dataclass
class OrderItem(Node):
    """One item of the ORDER BY list."""

    expression: Expression
    descending: bool = False


@dataclass
class SelectCore(Node):
    """A single SELECT block (no set operations, ordering, or limits)."""

    items: List[SelectItem] = field(default_factory=list)
    from_clause: Optional[TableExpression] = None
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    distinct: bool = False


@dataclass
class SetOperation(Node):
    """A set operation combining two SELECT bodies."""

    operator: str  # UNION, UNION ALL, INTERSECT, EXCEPT
    left: Union[SelectCore, "SetOperation"]
    right: Union[SelectCore, "SetOperation"]


@dataclass
class SelectStatement(Statement):
    """A complete SELECT statement."""

    body: Union[SelectCore, SetOperation] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None

    def cores(self) -> List[SelectCore]:
        """Return all SELECT blocks in the body, left-to-right."""
        result: List[SelectCore] = []

        def visit(body: Union[SelectCore, SetOperation]) -> None:
            if isinstance(body, SelectCore):
                result.append(body)
            else:
                visit(body.left)
                visit(body.right)

        if self.body is not None:
            visit(self.body)
        return result


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef(Node):
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str = "INT"
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Optional[Expression] = None


@dataclass
class CreateTable(Statement):
    """``CREATE TABLE name (column definitions)``."""

    name: str
    columns: List[ColumnDef] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class CreateIndex(Statement):
    """``CREATE [UNIQUE] INDEX name ON table (columns)``."""

    name: str
    table: str = ""
    columns: List[str] = field(default_factory=list)
    unique: bool = False


@dataclass
class DropTable(Statement):
    """``DROP TABLE [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass
class Insert(Statement):
    """``INSERT INTO table [(columns)] VALUES (...), (...)`` or ``INSERT ... SELECT``."""

    table: str
    columns: List[str] = field(default_factory=list)
    rows: List[List[Expression]] = field(default_factory=list)
    select: Optional[SelectStatement] = None


@dataclass
class Update(Statement):
    """``UPDATE table SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: List[Tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Delete(Statement):
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Optional[Expression] = None


@dataclass
class Explain(Statement):
    """``EXPLAIN [ANALYZE] [FORMAT ...] statement``."""

    statement: Statement
    analyze: bool = False
    format: Optional[str] = None
    options: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# AST utilities
# ---------------------------------------------------------------------------


def iter_expressions(expression: Optional[Expression]) -> Iterator[Expression]:
    """Yield *expression* and every nested sub-expression (pre-order)."""
    if expression is None:
        return
    yield expression
    children: Sequence[Optional[Expression]]
    if isinstance(expression, BinaryOp):
        children = (expression.left, expression.right)
    elif isinstance(expression, UnaryOp):
        children = (expression.operand,)
    elif isinstance(expression, FunctionCall):
        children = tuple(expression.arguments)
    elif isinstance(expression, InList):
        children = (expression.expression, *expression.items)
    elif isinstance(expression, InSubquery):
        children = (expression.expression,)
    elif isinstance(expression, Between):
        children = (expression.expression, expression.low, expression.high)
    elif isinstance(expression, Like):
        children = (expression.expression, expression.pattern)
    elif isinstance(expression, IsNull):
        children = (expression.expression,)
    elif isinstance(expression, Case):
        children = (
            expression.operand,
            *[when.condition for when in expression.whens],
            *[when.result for when in expression.whens],
            expression.else_result,
        )
    elif isinstance(expression, Cast):
        children = (expression.expression,)
    else:
        children = ()
    for child in children:
        yield from iter_expressions(child)


def referenced_columns(expression: Optional[Expression]) -> List[ColumnRef]:
    """Return every column reference inside *expression*."""
    return [e for e in iter_expressions(expression) if isinstance(e, ColumnRef)]


def contains_aggregate(expression: Optional[Expression]) -> bool:
    """Return whether *expression* contains an aggregate function call."""
    aggregates = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
    return any(
        isinstance(e, FunctionCall) and e.name.upper() in aggregates
        for e in iter_expressions(expression)
    )


def split_conjuncts(expression: Optional[Expression]) -> List[Expression]:
    """Split an AND-connected predicate into its conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.operator.upper() == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Combine predicates with AND; the inverse of :func:`split_conjuncts`."""
    result: Optional[Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result


def base_tables(table_expression: Optional[TableExpression]) -> List[TableRef]:
    """Return every base-table reference inside a FROM clause item."""
    if table_expression is None:
        return []
    if isinstance(table_expression, TableRef):
        return [table_expression]
    if isinstance(table_expression, SubqueryRef):
        tables: List[TableRef] = []
        for core in table_expression.query.cores():
            tables.extend(base_tables(core.from_clause))
        return tables
    if isinstance(table_expression, Join):
        return base_tables(table_expression.left) + base_tables(table_expression.right)
    return []
