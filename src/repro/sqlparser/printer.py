"""Rendering AST nodes back into SQL text.

The printer is used by the testing applications (TLP builds partitioned
queries by wrapping predicates) and by the dialects when echoing queries into
plan properties.
"""

from __future__ import annotations

from typing import Optional

from repro.sqlparser import ast_nodes as ast


def _quote_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def print_expression(expression: Optional[ast.Expression]) -> str:
    """Render an expression as SQL text."""
    if expression is None:
        return ""
    if isinstance(expression, ast.Literal):
        if expression.value is None:
            return "NULL"
        if isinstance(expression.value, bool):
            return "TRUE" if expression.value else "FALSE"
        if isinstance(expression.value, str):
            return _quote_string(expression.value)
        return str(expression.value)
    if isinstance(expression, ast.ColumnRef):
        return f"{expression.table}.{expression.column}" if expression.table else expression.column
    if isinstance(expression, ast.Star):
        return f"{expression.table}.*" if expression.table else "*"
    if isinstance(expression, ast.Parameter):
        return expression.name
    if isinstance(expression, ast.BinaryOp):
        return (
            f"({print_expression(expression.left)} {expression.operator} "
            f"{print_expression(expression.right)})"
        )
    if isinstance(expression, ast.UnaryOp):
        if expression.operator.upper() == "NOT":
            return f"(NOT {print_expression(expression.operand)})"
        return f"({expression.operator}{print_expression(expression.operand)})"
    if isinstance(expression, ast.FunctionCall):
        if expression.star:
            return f"{expression.name}(*)"
        arguments = ", ".join(print_expression(arg) for arg in expression.arguments)
        distinct = "DISTINCT " if expression.distinct else ""
        return f"{expression.name}({distinct}{arguments})"
    if isinstance(expression, ast.InList):
        items = ", ".join(print_expression(item) for item in expression.items)
        negation = " NOT" if expression.negated else ""
        return f"({print_expression(expression.expression)}{negation} IN ({items}))"
    if isinstance(expression, ast.InSubquery):
        negation = " NOT" if expression.negated else ""
        return (
            f"({print_expression(expression.expression)}{negation} IN "
            f"({print_select(expression.subquery)}))"
        )
    if isinstance(expression, ast.Between):
        negation = " NOT" if expression.negated else ""
        return (
            f"({print_expression(expression.expression)}{negation} BETWEEN "
            f"{print_expression(expression.low)} AND {print_expression(expression.high)})"
        )
    if isinstance(expression, ast.Like):
        negation = " NOT" if expression.negated else ""
        return (
            f"({print_expression(expression.expression)}{negation} LIKE "
            f"{print_expression(expression.pattern)})"
        )
    if isinstance(expression, ast.IsNull):
        negation = "NOT " if expression.negated else ""
        return f"({print_expression(expression.expression)} IS {negation}NULL)"
    if isinstance(expression, ast.Case):
        parts = ["CASE"]
        if expression.operand is not None:
            parts.append(print_expression(expression.operand))
        for when in expression.whens:
            parts.append(
                f"WHEN {print_expression(when.condition)} THEN {print_expression(when.result)}"
            )
        if expression.else_result is not None:
            parts.append(f"ELSE {print_expression(expression.else_result)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expression, ast.Cast):
        return f"CAST({print_expression(expression.expression)} AS {expression.target_type})"
    if isinstance(expression, ast.ScalarSubquery):
        return f"({print_select(expression.query)})"
    if isinstance(expression, ast.Exists):
        negation = "NOT " if expression.negated else ""
        return f"{negation}EXISTS ({print_select(expression.query)})"
    raise TypeError(f"cannot print expression of type {type(expression).__name__}")


def _print_table_expression(table: Optional[ast.TableExpression]) -> str:
    if table is None:
        return ""
    if isinstance(table, ast.TableRef):
        return f"{table.name} AS {table.alias}" if table.alias else table.name
    if isinstance(table, ast.SubqueryRef):
        return f"({print_select(table.query)}) AS {table.alias}"
    if isinstance(table, ast.Join):
        left = _print_table_expression(table.left)
        right = _print_table_expression(table.right)
        if table.join_type == "CROSS" and table.condition is None and not table.using_columns:
            return f"{left} CROSS JOIN {right}"
        keyword = {
            "INNER": "INNER JOIN",
            "LEFT": "LEFT JOIN",
            "RIGHT": "RIGHT JOIN",
            "FULL": "FULL JOIN",
            "CROSS": "CROSS JOIN",
        }[table.join_type]
        clause = f"{left} {keyword} {right}"
        if table.condition is not None:
            clause += f" ON {print_expression(table.condition)}"
        elif table.using_columns:
            clause += " USING (" + ", ".join(table.using_columns) + ")"
        return clause
    raise TypeError(f"cannot print table expression of type {type(table).__name__}")


def _print_core(core: ast.SelectCore) -> str:
    items = ", ".join(
        print_expression(item.expression) + (f" AS {item.alias}" if item.alias else "")
        for item in core.items
    )
    parts = ["SELECT " + ("DISTINCT " if core.distinct else "") + items]
    if core.from_clause is not None:
        parts.append("FROM " + _print_table_expression(core.from_clause))
    if core.where is not None:
        parts.append("WHERE " + print_expression(core.where))
    if core.group_by:
        parts.append("GROUP BY " + ", ".join(print_expression(e) for e in core.group_by))
    if core.having is not None:
        parts.append("HAVING " + print_expression(core.having))
    return " ".join(parts)


def _print_body(body) -> str:
    if isinstance(body, ast.SelectCore):
        return _print_core(body)
    if isinstance(body, ast.SetOperation):
        return f"{_print_body(body.left)} {body.operator} {_print_body(body.right)}"
    raise TypeError(f"cannot print select body of type {type(body).__name__}")


def print_select(statement: ast.SelectStatement) -> str:
    """Render a SELECT statement as SQL text."""
    text = _print_body(statement.body)
    if statement.order_by:
        rendered = ", ".join(
            print_expression(item.expression) + (" DESC" if item.descending else "")
            for item in statement.order_by
        )
        text += " ORDER BY " + rendered
    if statement.limit is not None:
        text += " LIMIT " + print_expression(statement.limit)
    if statement.offset is not None:
        text += " OFFSET " + print_expression(statement.offset)
    return text


def print_statement(statement: ast.Statement) -> str:
    """Render any supported statement as SQL text."""
    if isinstance(statement, ast.SelectStatement):
        return print_select(statement)
    if isinstance(statement, ast.Explain):
        prefix = "EXPLAIN"
        if statement.analyze:
            prefix += " ANALYZE"
        if statement.format:
            prefix += f" (FORMAT {statement.format.upper()})"
        return f"{prefix} {print_statement(statement.statement)}"
    if isinstance(statement, ast.CreateTable):
        columns = []
        for column in statement.columns:
            text = f"{column.name} {column.type_name}"
            if column.primary_key:
                text += " PRIMARY KEY"
            if column.not_null:
                text += " NOT NULL"
            if column.unique:
                text += " UNIQUE"
            if column.default is not None:
                text += f" DEFAULT {print_expression(column.default)}"
            columns.append(text)
        exists = "IF NOT EXISTS " if statement.if_not_exists else ""
        return f"CREATE TABLE {exists}{statement.name} ({', '.join(columns)})"
    if isinstance(statement, ast.CreateIndex):
        unique = "UNIQUE " if statement.unique else ""
        return (
            f"CREATE {unique}INDEX {statement.name} ON {statement.table} "
            f"({', '.join(statement.columns)})"
        )
    if isinstance(statement, ast.DropTable):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {exists}{statement.name}"
    if isinstance(statement, ast.Insert):
        columns = f" ({', '.join(statement.columns)})" if statement.columns else ""
        if statement.select is not None:
            return f"INSERT INTO {statement.table}{columns} {print_select(statement.select)}"
        rows = ", ".join(
            "(" + ", ".join(print_expression(value) for value in row) + ")"
            for row in statement.rows
        )
        return f"INSERT INTO {statement.table}{columns} VALUES {rows}"
    if isinstance(statement, ast.Update):
        assignments = ", ".join(
            f"{column} = {print_expression(value)}" for column, value in statement.assignments
        )
        where = f" WHERE {print_expression(statement.where)}" if statement.where else ""
        return f"UPDATE {statement.table} SET {assignments}{where}"
    if isinstance(statement, ast.Delete):
        where = f" WHERE {print_expression(statement.where)}" if statement.where else ""
        return f"DELETE FROM {statement.table}{where}"
    raise TypeError(f"cannot print statement of type {type(statement).__name__}")
