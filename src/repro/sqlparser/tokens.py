"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class TokenType(enum.Enum):
    """Lexical token classes produced by :mod:`repro.sqlparser.lexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PARAMETER = "parameter"
    EOF = "eof"


#: Reserved words recognised by the parser.  The set covers the SQL subset the
#: simulated DBMSs support: DDL, DML, and SELECT with joins, grouping, set
#: operations, and subqueries.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "OFFSET", "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS",
        "NULL", "TRUE", "FALSE", "JOIN", "INNER", "LEFT", "RIGHT", "FULL",
        "OUTER", "CROSS", "ON", "USING", "UNION", "INTERSECT", "EXCEPT",
        "ALL", "DISTINCT", "ASC", "DESC", "INSERT", "INTO", "VALUES",
        "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "INDEX", "UNIQUE",
        "PRIMARY", "KEY", "DROP", "IF", "EXISTS", "INT", "INTEGER", "BIGINT",
        "FLOAT", "REAL", "DOUBLE", "PRECISION", "TEXT", "VARCHAR", "CHAR",
        "BOOLEAN", "DATE", "TIMESTAMP", "DECIMAL", "NUMERIC", "CASE", "WHEN",
        "THEN", "ELSE", "END", "CAST", "EXPLAIN", "ANALYZE", "FORMAT",
        "COUNT", "SUM", "AVG", "MIN", "MAX", "ANY", "SOME", "EXTRACT",
        "SUBSTRING", "DEFAULT", "REFERENCES", "FOREIGN", "CONSTRAINT",
        "NATURAL", "CHECK",
    }
)

#: Multi-character operators, longest first so the lexer matches greedily.
MULTI_CHAR_OPERATORS = ("<>", "!=", ">=", "<=", "||")

SINGLE_CHAR_OPERATORS = frozenset("=<>+-*/%")

PUNCTUATION = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    type:
        The token class.
    value:
        The raw text for identifiers/operators, the uppercased text for
        keywords, and the literal text for numbers and strings.
    position:
        Character offset of the token's first character in the input.
    """

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        """Return whether this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in keywords

    def is_punctuation(self, char: str) -> bool:
        """Return whether this token is the given punctuation character."""
        return self.type is TokenType.PUNCTUATION and self.value == char

    def is_operator(self, *operators: str) -> bool:
        """Return whether this token is one of the given operators."""
        return self.type is TokenType.OPERATOR and self.value in operators

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.value}({self.value!r}@{self.position})"


EOF_TOKEN_VALUE: Optional[str] = "<eof>"
