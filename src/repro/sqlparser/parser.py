"""Recursive-descent parser for the SQL subset.

The parser consumes tokens from :mod:`repro.sqlparser.lexer` and produces the
AST of :mod:`repro.sqlparser.ast_nodes`.  The grammar follows conventional SQL
precedence:

``OR`` < ``AND`` < ``NOT`` < comparison / ``IN`` / ``BETWEEN`` / ``LIKE`` /
``IS`` < additive < multiplicative < unary < primary.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.sqlparser import ast_nodes as ast
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import Token, TokenType

_AGGREGATE_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}

_TYPE_KEYWORDS = {
    "INT", "INTEGER", "BIGINT", "FLOAT", "REAL", "DOUBLE", "PRECISION", "TEXT",
    "VARCHAR", "CHAR", "BOOLEAN", "DATE", "TIMESTAMP", "DECIMAL", "NUMERIC",
}


class Parser:
    """Parses one or more SQL statements from a token stream."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._index = 0

    # ------------------------------------------------------------------ utils

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect_keyword(self, *keywords: str) -> Token:
        token = self._peek()
        if not token.matches_keyword(*keywords):
            raise ParseError(
                f"expected {' or '.join(keywords)} but found {token.value!r} "
                f"at position {token.position}",
                token,
            )
        return self._advance()

    def _expect_punctuation(self, char: str) -> Token:
        token = self._peek()
        if not token.is_punctuation(char):
            raise ParseError(
                f"expected {char!r} but found {token.value!r} at position {token.position}",
                token,
            )
        return self._advance()

    def _accept_keyword(self, *keywords: str) -> Optional[Token]:
        if self._peek().matches_keyword(*keywords):
            return self._advance()
        return None

    def _accept_punctuation(self, char: str) -> bool:
        if self._peek().is_punctuation(char):
            self._advance()
            return True
        return False

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        # Permit non-reserved usage of some keywords as identifiers.
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS | _AGGREGATE_KEYWORDS:
            self._advance()
            return token.value.lower()
        raise ParseError(
            f"expected an identifier but found {token.value!r} at position {token.position}",
            token,
        )

    # ------------------------------------------------------------- entry points

    def parse_statements(self) -> List[ast.Statement]:
        """Parse every semicolon-separated statement in the input."""
        statements: List[ast.Statement] = []
        while self._peek().type is not TokenType.EOF:
            if self._accept_punctuation(";"):
                continue
            statements.append(self.parse_statement())
            self._accept_punctuation(";")
        return statements

    def parse_statement(self) -> ast.Statement:
        """Parse a single statement."""
        token = self._peek()
        if token.matches_keyword("EXPLAIN"):
            return self._parse_explain()
        if token.matches_keyword("SELECT"):
            return self.parse_select()
        if token.is_punctuation("("):
            return self.parse_select()
        if token.matches_keyword("CREATE"):
            return self._parse_create()
        if token.matches_keyword("DROP"):
            return self._parse_drop()
        if token.matches_keyword("INSERT"):
            return self._parse_insert()
        if token.matches_keyword("UPDATE"):
            return self._parse_update()
        if token.matches_keyword("DELETE"):
            return self._parse_delete()
        raise ParseError(
            f"unsupported statement starting with {token.value!r} at position {token.position}",
            token,
        )

    # ------------------------------------------------------------------ EXPLAIN

    def _parse_explain(self) -> ast.Explain:
        self._expect_keyword("EXPLAIN")
        analyze = bool(self._accept_keyword("ANALYZE"))
        format_name: Optional[str] = None
        options: List[str] = []
        # PostgreSQL-style parenthesised options: EXPLAIN (FORMAT JSON, SUMMARY TRUE)
        if self._peek().is_punctuation("(") and self._peek(1).type in (
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
        ) and not self._peek(1).matches_keyword("SELECT"):
            self._advance()
            while not self._accept_punctuation(")"):
                token = self._advance()
                if token.type is TokenType.EOF:
                    raise ParseError("unterminated EXPLAIN options", token)
                if token.matches_keyword("FORMAT"):
                    format_token = self._advance()
                    format_name = format_token.value.lower()
                    options.append(f"FORMAT {format_name.upper()}")
                elif token.matches_keyword("ANALYZE"):
                    analyze = True
                    options.append("ANALYZE")
                elif not token.is_punctuation(","):
                    options.append(token.value)
        elif self._accept_keyword("FORMAT"):
            format_name = self._advance().value.lower()
        statement = self.parse_statement()
        return ast.Explain(statement, analyze=analyze, format=format_name, options=options)

    # ------------------------------------------------------------------- SELECT

    def parse_select(self) -> ast.SelectStatement:
        """Parse a SELECT statement including set operations and ORDER/LIMIT."""
        body = self._parse_set_operation_body()
        statement = ast.SelectStatement(body=body)
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            statement.order_by = self._parse_order_items()
        if self._accept_keyword("LIMIT"):
            statement.limit = self.parse_expression()
        if self._accept_keyword("OFFSET"):
            statement.offset = self.parse_expression()
        return statement

    def _parse_set_operation_body(self) -> Union[ast.SelectCore, ast.SetOperation]:
        left = self._parse_select_core_or_parenthesised()
        while self._peek().matches_keyword("UNION", "INTERSECT", "EXCEPT"):
            operator_token = self._advance()
            operator = operator_token.value
            if operator == "UNION" and self._accept_keyword("ALL"):
                operator = "UNION ALL"
            else:
                self._accept_keyword("DISTINCT")
            right = self._parse_select_core_or_parenthesised()
            left = ast.SetOperation(operator, left, right)
        return left

    def _parse_select_core_or_parenthesised(
        self,
    ) -> Union[ast.SelectCore, ast.SetOperation]:
        if self._accept_punctuation("("):
            body = self._parse_set_operation_body()
            self._expect_punctuation(")")
            return body
        return self._parse_select_core()

    def _parse_select_core(self) -> ast.SelectCore:
        self._expect_keyword("SELECT")
        core = ast.SelectCore()
        if self._accept_keyword("DISTINCT"):
            core.distinct = True
        else:
            self._accept_keyword("ALL")
        core.items = self._parse_select_items()
        if self._accept_keyword("FROM"):
            core.from_clause = self._parse_from_clause()
        if self._accept_keyword("WHERE"):
            core.where = self.parse_expression()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            core.group_by = self._parse_expression_list()
        if self._accept_keyword("HAVING"):
            core.having = self.parse_expression()
        return core

    def _parse_select_items(self) -> List[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punctuation(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.is_operator("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # Qualified star: t0.*
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek(1).is_punctuation(".")
            and self._peek(2).is_operator("*")
        ):
            self._advance()
            self._advance()
            self._advance()
            return ast.SelectItem(ast.Star(table=token.value))
        expression = self.parse_expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expression, alias)

    def _parse_order_items(self) -> List[ast.OrderItem]:
        items: List[ast.OrderItem] = []
        while True:
            expression = self.parse_expression()
            descending = False
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
            items.append(ast.OrderItem(expression, descending))
            if not self._accept_punctuation(","):
                break
        return items

    def _parse_expression_list(self) -> List[ast.Expression]:
        expressions = [self.parse_expression()]
        while self._accept_punctuation(","):
            expressions.append(self.parse_expression())
        return expressions

    # ----------------------------------------------------------------- FROM

    def _parse_from_clause(self) -> ast.TableExpression:
        left = self._parse_table_primary()
        while True:
            token = self._peek()
            if token.is_punctuation(","):
                self._advance()
                right = self._parse_table_primary()
                left = ast.Join(left, right, join_type="CROSS")
                continue
            join_type = self._parse_join_type()
            if join_type is None:
                break
            right = self._parse_table_primary()
            condition: Optional[ast.Expression] = None
            using_columns: List[str] = []
            if join_type != "CROSS":
                if self._accept_keyword("ON"):
                    condition = self.parse_expression()
                elif self._accept_keyword("USING"):
                    self._expect_punctuation("(")
                    using_columns.append(self._expect_identifier())
                    while self._accept_punctuation(","):
                        using_columns.append(self._expect_identifier())
                    self._expect_punctuation(")")
            left = ast.Join(left, right, join_type, condition, using_columns)
        return left

    def _parse_join_type(self) -> Optional[str]:
        token = self._peek()
        if token.matches_keyword("JOIN"):
            self._advance()
            return "INNER"
        if token.matches_keyword("INNER"):
            self._advance()
            self._expect_keyword("JOIN")
            return "INNER"
        if token.matches_keyword("CROSS"):
            self._advance()
            self._expect_keyword("JOIN")
            return "CROSS"
        if token.matches_keyword("NATURAL"):
            self._advance()
            self._accept_keyword("INNER")
            self._expect_keyword("JOIN")
            return "INNER"
        if token.matches_keyword("LEFT", "RIGHT", "FULL"):
            join_type = token.value
            self._advance()
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return join_type
        return None

    def _parse_table_primary(self) -> ast.TableExpression:
        if self._accept_punctuation("("):
            if self._peek().matches_keyword("SELECT") or self._peek().is_punctuation("("):
                query = self.parse_select()
                self._expect_punctuation(")")
                alias = self._parse_optional_alias() or "subquery"
                return ast.SubqueryRef(query, alias)
            inner = self._parse_from_clause()
            self._expect_punctuation(")")
            return inner
        name = self._expect_identifier()
        alias = self._parse_optional_alias()
        return ast.TableRef(name, alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_identifier()
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        return None

    # ----------------------------------------------------------------- DDL / DML

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        unique = bool(self._accept_keyword("UNIQUE"))
        if self._accept_keyword("TABLE"):
            if unique:
                raise ParseError("CREATE UNIQUE TABLE is not valid SQL")
            return self._parse_create_table()
        if self._accept_keyword("INDEX"):
            return self._parse_create_index(unique)
        token = self._peek()
        raise ParseError(
            f"unsupported CREATE statement near {token.value!r}", token
        )

    def _parse_create_table(self) -> ast.CreateTable:
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_identifier()
        statement = ast.CreateTable(name, if_not_exists=if_not_exists)
        self._expect_punctuation("(")
        while True:
            if self._peek().matches_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                self._expect_punctuation("(")
                key_columns = [self._expect_identifier()]
                while self._accept_punctuation(","):
                    key_columns.append(self._expect_identifier())
                self._expect_punctuation(")")
                for column in statement.columns:
                    if column.name in key_columns:
                        column.primary_key = True
            else:
                statement.columns.append(self._parse_column_definition())
            if not self._accept_punctuation(","):
                break
        self._expect_punctuation(")")
        return statement

    def _parse_column_definition(self) -> ast.ColumnDef:
        name = self._expect_identifier()
        type_name = self._parse_type_name()
        column = ast.ColumnDef(name, type_name)
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.primary_key = True
            elif self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                column.not_null = True
            elif self._accept_keyword("NULL"):
                continue
            elif self._accept_keyword("UNIQUE"):
                column.unique = True
            elif self._accept_keyword("DEFAULT"):
                column.default = self.parse_expression()
            elif self._accept_keyword("CHECK"):
                self._expect_punctuation("(")
                self.parse_expression()
                self._expect_punctuation(")")
            elif self._accept_keyword("REFERENCES"):
                self._expect_identifier()
                if self._accept_punctuation("("):
                    self._expect_identifier()
                    self._expect_punctuation(")")
            else:
                break
        return column

    def _parse_type_name(self) -> str:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS:
            self._advance()
            type_name = token.value
            if type_name == "DOUBLE" and self._accept_keyword("PRECISION"):
                type_name = "DOUBLE PRECISION"
            if self._accept_punctuation("("):
                while not self._accept_punctuation(")"):
                    self._advance()
            return type_name
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            if self._accept_punctuation("("):
                while not self._accept_punctuation(")"):
                    self._advance()
            return token.value.upper()
        return "INT"

    def _parse_create_index(self, unique: bool) -> ast.CreateIndex:
        name = self._expect_identifier()
        self._expect_keyword("ON")
        table = self._expect_identifier()
        self._expect_punctuation("(")
        columns = [self._expect_identifier()]
        while self._accept_punctuation(","):
            columns.append(self._expect_identifier())
        self._expect_punctuation(")")
        return ast.CreateIndex(name, table, columns, unique)

    def _parse_drop(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(self._expect_identifier(), if_exists)

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        statement = ast.Insert(table)
        if self._peek().is_punctuation("(") and not self._peek(1).matches_keyword("SELECT"):
            self._expect_punctuation("(")
            statement.columns.append(self._expect_identifier())
            while self._accept_punctuation(","):
                statement.columns.append(self._expect_identifier())
            self._expect_punctuation(")")
        if self._accept_keyword("VALUES"):
            while True:
                self._expect_punctuation("(")
                row = [self.parse_expression()]
                while self._accept_punctuation(","):
                    row.append(self.parse_expression())
                self._expect_punctuation(")")
                statement.rows.append(row)
                if not self._accept_punctuation(","):
                    break
        else:
            statement.select = self.parse_select()
        return statement

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier()
        self._expect_keyword("SET")
        statement = ast.Update(table)
        while True:
            column = self._expect_identifier()
            token = self._peek()
            if not token.is_operator("="):
                raise ParseError(f"expected '=' in UPDATE assignment, got {token.value!r}", token)
            self._advance()
            statement.assignments.append((column, self.parse_expression()))
            if not self._accept_punctuation(","):
                break
        if self._accept_keyword("WHERE"):
            statement.where = self.parse_expression()
        return statement

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.Delete(table, where)

    # ------------------------------------------------------------- expressions

    def parse_expression(self) -> ast.Expression:
        """Parse a scalar expression (the OR level)."""
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        while True:
            token = self._peek()
            negated = False
            if token.matches_keyword("NOT") and self._peek(1).matches_keyword(
                "IN", "BETWEEN", "LIKE"
            ):
                self._advance()
                token = self._peek()
                negated = True
            if token.is_operator("=", "<>", "!=", "<", "<=", ">", ">="):
                operator = self._advance().value
                operator = "<>" if operator == "!=" else operator
                left = ast.BinaryOp(operator, left, self._parse_additive())
                continue
            if token.matches_keyword("IS"):
                self._advance()
                is_negated = bool(self._accept_keyword("NOT"))
                self._expect_keyword("NULL")
                left = ast.IsNull(left, negated=is_negated)
                continue
            if token.matches_keyword("IN"):
                self._advance()
                self._expect_punctuation("(")
                if self._peek().matches_keyword("SELECT"):
                    subquery = self.parse_select()
                    self._expect_punctuation(")")
                    left = ast.InSubquery(left, subquery, negated)
                else:
                    items = [self.parse_expression()]
                    while self._accept_punctuation(","):
                        items.append(self.parse_expression())
                    self._expect_punctuation(")")
                    left = ast.InList(left, items, negated)
                continue
            if token.matches_keyword("BETWEEN"):
                self._advance()
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = ast.Between(left, low, high, negated)
                continue
            if token.matches_keyword("LIKE"):
                self._advance()
                left = ast.Like(left, self._parse_additive(), negated)
                continue
            break
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._peek().is_operator("+", "-", "||"):
            operator = self._advance().value
            left = ast.BinaryOp(operator, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._peek().is_operator("*", "/", "%"):
            operator = self._advance().value
            left = ast.BinaryOp(operator, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.is_operator("-", "+"):
            self._advance()
            return ast.UnaryOp(token.value, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value: object
            if any(ch in text for ch in ".eE"):
                value = float(text)
            else:
                value = int(text)
            return ast.Literal(value)

        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)

        if token.type is TokenType.PARAMETER:
            self._advance()
            return ast.Parameter(token.value)

        if token.matches_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)

        if token.matches_keyword("CASE"):
            return self._parse_case()

        if token.matches_keyword("CAST"):
            self._advance()
            self._expect_punctuation("(")
            expression = self.parse_expression()
            self._expect_keyword("AS")
            target_type = self._parse_type_name()
            self._expect_punctuation(")")
            return ast.Cast(expression, target_type)

        if token.matches_keyword("EXISTS"):
            self._advance()
            self._expect_punctuation("(")
            query = self.parse_select()
            self._expect_punctuation(")")
            return ast.Exists(query)

        if token.is_punctuation("("):
            self._advance()
            if self._peek().matches_keyword("SELECT"):
                query = self.parse_select()
                self._expect_punctuation(")")
                return ast.ScalarSubquery(query)
            expression = self.parse_expression()
            self._expect_punctuation(")")
            return expression

        if token.type is TokenType.KEYWORD and token.value in _AGGREGATE_KEYWORDS:
            return self._parse_function_call(token.value)

        if token.type is TokenType.KEYWORD and self._peek(1).is_punctuation("("):
            # Functions spelled as keywords, e.g. EXTRACT, SUBSTRING.
            return self._parse_function_call(token.value)

        if token.type is TokenType.IDENTIFIER:
            if self._peek(1).is_punctuation("("):
                return self._parse_function_call(token.value)
            self._advance()
            if self._peek().is_punctuation(".") and self._peek(1).type in (
                TokenType.IDENTIFIER,
                TokenType.KEYWORD,
            ):
                self._advance()
                column = self._advance().value
                return ast.ColumnRef(column=column, table=token.value)
            return ast.ColumnRef(column=token.value)

        raise ParseError(
            f"unexpected token {token.value!r} at position {token.position}", token
        )

    def _parse_case(self) -> ast.Case:
        self._expect_keyword("CASE")
        case = ast.Case()
        if not self._peek().matches_keyword("WHEN"):
            case.operand = self.parse_expression()
        while self._accept_keyword("WHEN"):
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            result = self.parse_expression()
            case.whens.append(ast.CaseWhen(condition, result))
        if self._accept_keyword("ELSE"):
            case.else_result = self.parse_expression()
        self._expect_keyword("END")
        return case

    def _parse_function_call(self, name: str) -> ast.Expression:
        self._advance()  # function name
        self._expect_punctuation("(")
        call = ast.FunctionCall(name=name.upper() if name.isupper() else name)
        if self._accept_punctuation(")"):
            return call
        if self._peek().is_operator("*"):
            self._advance()
            call.star = True
            self._expect_punctuation(")")
            return call
        if self._accept_keyword("DISTINCT"):
            call.distinct = True
        call.arguments.append(self.parse_expression())
        while self._accept_punctuation(","):
            call.arguments.append(self.parse_expression())
        self._expect_punctuation(")")
        return call


def parse_sql(sql: str) -> List[ast.Statement]:
    """Parse every statement in *sql* and return the list of AST roots."""
    return Parser(sql).parse_statements()


def parse_one(sql: str) -> ast.Statement:
    """Parse exactly one statement from *sql*."""
    statements = parse_sql(sql)
    if len(statements) != 1:
        raise ParseError(f"expected exactly one statement, found {len(statements)}")
    return statements[0]
