"""The SQL lexer: a single compiled-regex scanner.

The lexer turns a SQL string into a list of :class:`~repro.sqlparser.tokens.Token`
objects.  It supports:

* line comments (``-- …``) and block comments (``/* … */``),
* single-quoted string literals with doubled-quote escaping,
* double-quoted and backtick-quoted identifiers with doubled-quote escaping
  (``"a""b"`` lexes as the identifier ``a"b``),
* integer and decimal literals (with optional exponent),
* the keyword set of :mod:`repro.sqlparser.tokens`,
* positional parameters (``?`` and ``$1``-style).

The scanner is one master regular expression with named alternatives,
advanced with :meth:`re.Pattern.match` so that a position no alternative
matches is a lexical error (never silently skipped).  It is token-compatible
with the original hand-rolled character loop (kept as a fixture in
``tests/test_lexer_equivalence.py``) but roughly 3x faster, which matters
because every generated campaign query is lexed at least once.
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import LexerError
from repro.sqlparser.tokens import KEYWORDS, Token, TokenType

#: One alternative per token class.  Order is significant: numbers must win
#: over the ``.`` punctuation (``.5`` is a literal) and over operators, and
#: comments/strings must win over the ``-``/``/`` operators.  The number
#: exponent deliberately tolerates a missing digit sequence (``1e``) to stay
#: byte-compatible with the historical scanner.  ``0x…`` must win over the
#: number alternative: the engine has no hexadecimal literals, and letting
#: ``0x10`` silently split into NUMBER ``0`` + identifier ``x10`` produced a
#: bogus-but-"successful" query instead of an error (a PR-5 bug fix).
_MASTER = re.compile(
    r"""
      (?P<WS>\s+)
    | (?P<LINE_COMMENT>--[^\n]*\n?)
    | (?P<BLOCK_COMMENT>/\*(?:[\s\S]*?\*/)?)
    | (?P<STRING>'(?:[^']|'')*'(?!'))
    | (?P<DQUOTED>"(?:[^"]|"")*")
    | (?P<BQUOTED>`(?:[^`]|``)*`)
    | (?P<HEX>0[xX]\w*)
    | (?P<NUMBER>(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d*)?)
    | (?P<PARAMETER>\?|\$\d+)
    | (?P<WORD>[^\W\d]\w*)
    | (?P<OPERATOR><>|!=|>=|<=|\|\||[=<>+\-*/%])
    | (?P<PUNCTUATION>[(),.;])
    """,
    re.VERBOSE,
).match


def _raise_unmatched(sql: str, index: int) -> None:
    """Diagnose why no alternative matched at *index*."""
    char = sql[index]
    if char == "'":
        raise LexerError("unterminated string literal", index)
    if char in ('"', "`"):
        raise LexerError("unterminated quoted identifier", index)
    raise LexerError(f"unexpected character {char!r}", index)


def tokenize(sql: str) -> List[Token]:
    """Tokenize *sql*, returning a token list terminated by an EOF token."""
    tokens: List[Token] = []
    append = tokens.append
    index = 0
    length = len(sql)
    # Local bindings: the loop body runs once per token over every campaign
    # query, so global/attribute lookups are hoisted out of it.
    match = _MASTER
    keywords = KEYWORDS
    make = Token
    KEYWORD = TokenType.KEYWORD
    IDENTIFIER = TokenType.IDENTIFIER
    NUMBER = TokenType.NUMBER
    STRING = TokenType.STRING
    OPERATOR = TokenType.OPERATOR
    PUNCTUATION = TokenType.PUNCTUATION
    PARAMETER = TokenType.PARAMETER

    while index < length:
        found = match(sql, index)
        if found is None:
            _raise_unmatched(sql, index)
        kind = found.lastgroup
        if kind == "WS":
            index = found.end()
            continue
        text = found.group()
        if kind == "WORD":
            upper = text.upper()
            if upper in keywords:
                append(make(KEYWORD, upper, index))
            else:
                append(make(IDENTIFIER, text, index))
        elif kind == "PUNCTUATION":
            append(make(PUNCTUATION, text, index))
        elif kind == "NUMBER":
            append(make(NUMBER, text, index))
        elif kind == "OPERATOR":
            append(make(OPERATOR, text, index))
        elif kind == "STRING":
            append(make(STRING, text[1:-1].replace("''", "'"), index))
        elif kind == "DQUOTED":
            append(make(IDENTIFIER, text[1:-1].replace('""', '"'), index))
        elif kind == "BQUOTED":
            append(make(IDENTIFIER, text[1:-1].replace("``", "`"), index))
        elif kind == "PARAMETER":
            append(make(PARAMETER, text, index))
        elif kind == "HEX":
            raise LexerError(
                f"hexadecimal literals are not supported: {text!r}", index
            )
        elif kind == "BLOCK_COMMENT":
            if len(text) < 4 or not text.endswith("*/"):
                raise LexerError("unterminated block comment", index)
        # LINE_COMMENT: skipped like whitespace.
        index = found.end()

    append(Token(TokenType.EOF, "", length))
    return tokens
