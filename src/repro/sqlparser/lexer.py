"""A hand-written SQL lexer.

The lexer turns a SQL string into a list of :class:`~repro.sqlparser.tokens.Token`
objects.  It supports:

* line comments (``-- …``) and block comments (``/* … */``),
* single-quoted string literals with doubled-quote escaping,
* double-quoted and backtick-quoted identifiers,
* integer and decimal literals (with optional exponent),
* the keyword set of :mod:`repro.sqlparser.tokens`,
* positional parameters (``?`` and ``$1``-style).
"""

from __future__ import annotations

from typing import List

from repro.errors import LexerError
from repro.sqlparser.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


def tokenize(sql: str) -> List[Token]:
    """Tokenize *sql*, returning a token list terminated by an EOF token."""
    tokens: List[Token] = []
    index = 0
    length = len(sql)

    while index < length:
        char = sql[index]

        # Whitespace -----------------------------------------------------------
        if char.isspace():
            index += 1
            continue

        # Comments -------------------------------------------------------------
        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if sql.startswith("/*", index):
            closing = sql.find("*/", index + 2)
            if closing == -1:
                raise LexerError("unterminated block comment", index)
            index = closing + 2
            continue

        # String literals ---------------------------------------------------------
        if char == "'":
            end = index + 1
            chars: List[str] = []
            while end < length:
                if sql[end] == "'" and end + 1 < length and sql[end + 1] == "'":
                    chars.append("'")
                    end += 2
                    continue
                if sql[end] == "'":
                    break
                chars.append(sql[end])
                end += 1
            if end >= length:
                raise LexerError("unterminated string literal", index)
            tokens.append(Token(TokenType.STRING, "".join(chars), index))
            index = end + 1
            continue

        # Quoted identifiers ---------------------------------------------------------
        if char in ('"', "`"):
            closing_char = char
            end = sql.find(closing_char, index + 1)
            if end == -1:
                raise LexerError("unterminated quoted identifier", index)
            tokens.append(Token(TokenType.IDENTIFIER, sql[index + 1 : end], index))
            index = end + 1
            continue

        # Numbers -----------------------------------------------------------------
        if char.isdigit() or (
            char == "." and index + 1 < length and sql[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            seen_exponent = False
            while end < length:
                current = sql[end]
                if current.isdigit():
                    end += 1
                elif current == "." and not seen_dot and not seen_exponent:
                    seen_dot = True
                    end += 1
                elif current in "eE" and not seen_exponent and end > index:
                    seen_exponent = True
                    end += 1
                    if end < length and sql[end] in "+-":
                        end += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[index:end], index))
            index = end
            continue

        # Parameters ---------------------------------------------------------------
        if char == "?":
            tokens.append(Token(TokenType.PARAMETER, "?", index))
            index += 1
            continue
        if char == "$" and index + 1 < length and sql[index + 1].isdigit():
            end = index + 1
            while end < length and sql[end].isdigit():
                end += 1
            tokens.append(Token(TokenType.PARAMETER, sql[index:end], index))
            index = end
            continue

        # Identifiers and keywords ----------------------------------------------------
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, index))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, index))
            index = end
            continue

        # Operators -----------------------------------------------------------------
        matched_operator = False
        for operator in MULTI_CHAR_OPERATORS:
            if sql.startswith(operator, index):
                tokens.append(Token(TokenType.OPERATOR, operator, index))
                index += len(operator)
                matched_operator = True
                break
        if matched_operator:
            continue
        if char in SINGLE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, char, index))
            index += 1
            continue

        # Punctuation ---------------------------------------------------------------
        if char in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, index))
            index += 1
            continue

        raise LexerError(f"unexpected character {char!r}", index)

    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
