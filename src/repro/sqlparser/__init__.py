"""SQL front-end substrate: lexer, AST, parser, and printer.

The simulated relational DBMSs (:mod:`repro.dialects`) parse SQL through this
package before planning and executing statements.  The supported subset covers
the paper's workloads: DDL, DML, and SELECT with joins, grouping, set
operations, ordering, limits, and (scalar / IN / EXISTS) subqueries.
"""

from repro.sqlparser import ast_nodes as ast
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.parser import Parser, parse_one, parse_sql
from repro.sqlparser.printer import print_expression, print_select, print_statement

__all__ = [
    "ast",
    "tokenize",
    "Parser",
    "parse_sql",
    "parse_one",
    "print_expression",
    "print_select",
    "print_statement",
]
