"""A minimal property-graph store backing the simulated Neo4j dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple


@dataclass
class GraphNode:
    """A labelled node with arbitrary properties."""

    node_id: int
    labels: Set[str] = field(default_factory=set)
    properties: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Relationship:
    """A directed, typed relationship between two nodes."""

    rel_id: int
    rel_type: str
    start: int
    end: int
    properties: Dict[str, Any] = field(default_factory=dict)


class GraphStore:
    """Nodes, relationships, and label/property indexes."""

    def __init__(self) -> None:
        self._nodes: Dict[int, GraphNode] = {}
        self._relationships: Dict[int, Relationship] = {}
        self._next_node_id = 1
        self._next_rel_id = 1
        #: (label, property) pairs that have an index.
        self.indexes: Set[Tuple[str, str]] = set()

    # -- mutation --------------------------------------------------------------

    def create_node(self, labels: Iterable[str], properties: Optional[Dict[str, Any]] = None) -> GraphNode:
        node = GraphNode(self._next_node_id, set(labels), dict(properties or {}))
        self._nodes[node.node_id] = node
        self._next_node_id += 1
        return node

    def create_relationship(
        self,
        start: int,
        rel_type: str,
        end: int,
        properties: Optional[Dict[str, Any]] = None,
    ) -> Relationship:
        relationship = Relationship(
            self._next_rel_id, rel_type, start, end, dict(properties or {})
        )
        self._relationships[relationship.rel_id] = relationship
        self._next_rel_id += 1
        return relationship

    def create_index(self, label: str, property_name: str) -> None:
        self.indexes.add((label, property_name))

    # -- access ------------------------------------------------------------------

    def nodes(self, label: Optional[str] = None) -> List[GraphNode]:
        if label is None:
            return list(self._nodes.values())
        return [node for node in self._nodes.values() if label in node.labels]

    def node(self, node_id: int) -> GraphNode:
        return self._nodes[node_id]

    def relationships(self, rel_type: Optional[str] = None) -> List[Relationship]:
        if rel_type is None:
            return list(self._relationships.values())
        return [rel for rel in self._relationships.values() if rel.rel_type == rel_type]

    def outgoing(self, node_id: int, rel_type: Optional[str] = None) -> List[Relationship]:
        return [
            rel
            for rel in self._relationships.values()
            if rel.start == node_id and (rel_type is None or rel.rel_type == rel_type)
        ]

    def incoming(self, node_id: int, rel_type: Optional[str] = None) -> List[Relationship]:
        return [
            rel
            for rel in self._relationships.values()
            if rel.end == node_id and (rel_type is None or rel.rel_type == rel_type)
        ]

    def has_index(self, label: str, property_name: str) -> bool:
        return (label, property_name) in self.indexes

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def relationship_count(self) -> int:
        return len(self._relationships)
