"""Storage substrate: heap tables, ordered indexes, and NoSQL stores."""

from repro.storage.table import HeapTable, Row
from repro.storage.index import OrderedIndex, sortable

__all__ = ["HeapTable", "Row", "OrderedIndex", "sortable"]
