"""Ordered secondary indexes over heap tables.

The index keeps ``(key, row_id)`` entries in sorted order and supports point
lookups, range scans, and ordered full scans — the access paths that back
``Index Scan`` / ``Index Only Scan`` / ``Index Range Scan`` operations in the
simulated DBMSs.  A ``None`` component in a key sorts before every non-null
value, mirroring NULLS FIRST ordering.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import Index
from repro.errors import StorageError

IndexKey = Tuple[object, ...]


class _SortKey:
    """A total-order wrapper so heterogeneous/None keys can be compared."""

    __slots__ = ("rank", "value")

    def __init__(self, value: object) -> None:
        if value is None:
            self.rank, self.value = 0, ""
        elif isinstance(value, bool):
            self.rank, self.value = 1, int(value)
        elif isinstance(value, (int, float)):
            self.rank, self.value = 1, float(value)
        else:
            self.rank, self.value = 2, str(value)

    def _key(self) -> Tuple[int, object]:
        return (self.rank, self.value)

    def __lt__(self, other: "_SortKey") -> bool:
        return self._key() < other._key()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())


def sortable(key: Sequence[object]) -> Tuple[_SortKey, ...]:
    """Wrap a raw key tuple so it can be compared against any other key."""
    return tuple(_SortKey(component) for component in key)


class OrderedIndex:
    """A sorted ``(key, row_id)`` index supporting point and range scans."""

    def __init__(self, definition: Index) -> None:
        self.definition = definition
        self._entries: List[Tuple[Tuple[_SortKey, ...], IndexKey, int]] = []

    # -- maintenance -------------------------------------------------------------

    def insert(self, key: Sequence[object], row_id: int) -> None:
        """Insert an entry; rejects duplicates for unique indexes."""
        raw = tuple(key)
        wrapped = sortable(raw)
        if self.definition.unique and self._contains_key(wrapped):
            raise StorageError(
                f"duplicate key {raw!r} for unique index {self.definition.name!r}"
            )
        insort(self._entries, (wrapped, raw, row_id))

    def remove(self, key: Sequence[object], row_id: int) -> None:
        """Remove the entry for ``(key, row_id)`` if present."""
        wrapped = sortable(tuple(key))
        index = bisect_left(self._entries, (wrapped,))
        while index < len(self._entries) and self._entries[index][0] == wrapped:
            if self._entries[index][2] == row_id:
                del self._entries[index]
                return
            index += 1

    def clear(self) -> None:
        """Remove every entry."""
        self._entries.clear()

    def _contains_key(self, wrapped: Tuple[_SortKey, ...]) -> bool:
        position = bisect_left(self._entries, (wrapped,))
        return (
            position < len(self._entries) and self._entries[position][0] == wrapped
        )

    # -- lookups -----------------------------------------------------------------

    def lookup(self, key: Sequence[object]) -> List[int]:
        """Return the row ids whose full key equals *key*."""
        wrapped = sortable(tuple(key))
        results: List[int] = []
        position = bisect_left(self._entries, (wrapped,))
        while position < len(self._entries) and self._entries[position][0] == wrapped:
            results.append(self._entries[position][2])
            position += 1
        return results

    def prefix_lookup(self, prefix: Sequence[object]) -> List[int]:
        """Return row ids whose key starts with *prefix* (leading columns)."""
        wrapped_prefix = sortable(tuple(prefix))
        results: List[int] = []
        position = bisect_left(self._entries, (wrapped_prefix,))
        while position < len(self._entries):
            wrapped, _, row_id = self._entries[position]
            if wrapped[: len(wrapped_prefix)] != wrapped_prefix:
                break
            results.append(row_id)
            position += 1
        return results

    def range_scan(
        self,
        low: Optional[object] = None,
        high: Optional[object] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[IndexKey, int]]:
        """Yield ``(key, row_id)`` for leading-column values in ``[low, high]``."""
        for wrapped, raw, row_id in self._entries:
            leading = raw[0] if raw else None
            if leading is None:
                continue
            leading_key = _SortKey(leading)
            if low is not None:
                low_key = _SortKey(low)
                if leading_key < low_key or (leading_key == low_key and not include_low):
                    continue
            if high is not None:
                high_key = _SortKey(high)
                if high_key < leading_key or (leading_key == high_key and not include_high):
                    continue
            yield raw, row_id

    def ordered_entries(self) -> Iterator[Tuple[IndexKey, int]]:
        """Yield every ``(key, row_id)`` pair in key order."""
        for _, raw, row_id in self._entries:
            yield raw, row_id

    @property
    def entry_count(self) -> int:
        """The number of index entries."""
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderedIndex({self.definition.name!r}, entries={len(self._entries)})"
