"""A minimal document store backing the simulated MongoDB dialect."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import StorageError

Document = Dict[str, Any]


class DocumentCollection:
    """An ordered collection of documents with single-field indexes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.documents: List[Document] = []
        #: Indexed field names (values are kept sorted lazily on lookup).
        self.indexes: Dict[str, str] = {}

    def insert_many(self, documents: Iterable[Document]) -> int:
        added = 0
        for document in documents:
            self.documents.append(dict(document))
            added += 1
        return added

    def create_index(self, field: str, name: Optional[str] = None) -> str:
        index_name = name or f"{field}_1"
        self.indexes[field] = index_name
        return index_name

    def index_for(self, field: str) -> Optional[str]:
        return self.indexes.get(field)


class DocumentStore:
    """A named set of document collections."""

    def __init__(self) -> None:
        self._collections: Dict[str, DocumentCollection] = {}

    def collection(self, name: str) -> DocumentCollection:
        if name not in self._collections:
            self._collections[name] = DocumentCollection(name)
        return self._collections[name]

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)


def match_filter(document: Document, criteria: Dict[str, Any]) -> bool:
    """Evaluate a MongoDB-style filter document against *document*.

    Supports equality, ``$lt``/``$lte``/``$gt``/``$gte``/``$ne``/``$in``,
    ``$and`` and ``$or``.
    """
    for key, expected in criteria.items():
        if key == "$and":
            if not all(match_filter(document, clause) for clause in expected):
                return False
            continue
        if key == "$or":
            if not any(match_filter(document, clause) for clause in expected):
                return False
            continue
        actual = _resolve_path(document, key)
        if isinstance(expected, dict) and any(op.startswith("$") for op in expected):
            for operator, operand in expected.items():
                if not _apply_operator(actual, operator, operand):
                    return False
        else:
            if actual != expected:
                return False
    return True


def _resolve_path(document: Document, path: str) -> Any:
    current: Any = document
    for part in path.split("."):
        if isinstance(current, dict):
            current = current.get(part)
        else:
            return None
    return current


def _apply_operator(actual: Any, operator: str, operand: Any) -> bool:
    if actual is None and operator not in {"$ne", "$exists"}:
        return False
    try:
        if operator == "$lt":
            return actual < operand
        if operator == "$lte":
            return actual <= operand
        if operator == "$gt":
            return actual > operand
        if operator == "$gte":
            return actual >= operand
        if operator == "$ne":
            return actual != operand
        if operator == "$eq":
            return actual == operand
        if operator == "$in":
            return actual in operand
        if operator == "$exists":
            return (actual is not None) == bool(operand)
    except TypeError:
        return False
    raise StorageError(f"unsupported filter operator {operator!r}")
