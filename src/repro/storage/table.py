"""In-memory heap table storage.

Rows are stored as dictionaries keyed by column name.  The heap assigns each
row a stable integer row id, which secondary indexes reference.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import StorageError

Row = Dict[str, object]


class HeapTable:
    """A row store with stable row ids and tombstone-style deletes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_row_id = 1

    # -- modification ------------------------------------------------------------

    def insert(self, row: Row) -> int:
        """Insert *row* and return its row id.

        Missing columns are filled with the column default (or ``None``);
        unknown columns are rejected.
        """
        known = {column.name for column in self.schema.columns}
        unknown = set(row) - known
        if unknown:
            raise StorageError(
                f"unknown column(s) {sorted(unknown)} for table {self.schema.name!r}"
            )
        complete: Row = {}
        for column in self.schema.columns:
            if column.name in row:
                complete[column.name] = row[column.name]
            else:
                complete[column.name] = column.default
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = complete
        return row_id

    def insert_many(self, rows: Iterable[Row]) -> List[int]:
        """Insert every row of *rows*, returning the assigned row ids."""
        return [self.insert(row) for row in rows]

    def update(self, row_id: int, changes: Row) -> None:
        """Apply *changes* to the row identified by *row_id*."""
        if row_id not in self._rows:
            raise StorageError(f"row id {row_id} does not exist in {self.schema.name!r}")
        for column_name in changes:
            if not self.schema.has_column(column_name):
                raise StorageError(
                    f"unknown column {column_name!r} for table {self.schema.name!r}"
                )
        self._rows[row_id].update(changes)

    def delete(self, row_id: int) -> None:
        """Delete the row identified by *row_id*."""
        if row_id not in self._rows:
            raise StorageError(f"row id {row_id} does not exist in {self.schema.name!r}")
        del self._rows[row_id]

    def truncate(self) -> None:
        """Remove every row (row ids are not reused)."""
        self._rows.clear()

    # -- access --------------------------------------------------------------------

    def get(self, row_id: int) -> Row:
        """Return the row identified by *row_id*."""
        try:
            return self._rows[row_id]
        except KeyError as exc:
            raise StorageError(
                f"row id {row_id} does not exist in {self.schema.name!r}"
            ) from exc

    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(row_id, row)`` pairs in insertion order."""
        yield from self._rows.items()

    def rows(self) -> List[Row]:
        """Return all rows as a list (insertion order)."""
        return list(self._rows.values())

    def row_ids(self) -> List[int]:
        """Return all live row ids."""
        return list(self._rows.keys())

    @property
    def row_count(self) -> int:
        """The number of live rows."""
        return len(self._rows)

    def column_values(self, column: str) -> List[object]:
        """Return every value of *column* (in insertion order)."""
        if not self.schema.has_column(column):
            raise StorageError(f"unknown column {column!r} for table {self.schema.name!r}")
        return [row[self.schema.column(column).name] for row in self._rows.values()]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapTable({self.schema.name!r}, rows={len(self._rows)})"
