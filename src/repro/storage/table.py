"""In-memory heap table storage.

Rows are stored as dictionaries keyed by column name.  The heap assigns each
row a stable integer row id, which secondary indexes reference.

For the vectorized executor the heap also serves **columnar snapshots**
(:meth:`HeapTable.column_batch`): parallel per-column value lists plus a
row-id vector.  A snapshot is cached on the table and keyed by the owning
:attr:`repro.catalog.database.Database.version`, so the PR-3 version-bump
rules (every DDL/DML/analyze mutation bumps) are the only freshness signal —
a stale snapshot is unreachable exactly as a stale prepared plan is.

Snapshot columns of tables at or above
:data:`repro.engine.arrays.ARRAY_MIN_ROWS` rows are upgraded to typed
NumPy-backed :class:`~repro.engine.arrays.ArrayColumn` values (when the
dtype-inference rules allow); scans then serve immutable array views, so a
full-table scan is zero-copy and chunking is slice-cheap.  The snapshot
cache additionally keys on :func:`repro.engine.arrays.state_token`, so
toggling the array kernels invalidates snapshots built under the other
representation.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import StorageError

Row = Dict[str, object]


class TableSnapshot:
    """A columnar snapshot of a heap table at one catalog version.

    ``columns`` maps each column name (schema order) to a list of values;
    all lists are parallel to ``row_ids``.  Snapshots are shared between
    executions and must be treated as immutable by consumers.
    """

    __slots__ = ("version", "row_ids", "columns", "arrays_token", "_positions")

    def __init__(
        self,
        version: int,
        row_ids: List[int],
        columns: Dict[str, List[object]],
        arrays_token: int = 0,
    ) -> None:
        self.version = version
        self.row_ids = row_ids
        self.columns = columns
        self.arrays_token = arrays_token
        self._positions: Optional[Dict[int, int]] = None

    @property
    def length(self) -> int:
        """The number of rows in the snapshot."""
        return len(self.row_ids)

    def position_of(self, row_id: int) -> int:
        """Return the snapshot position of *row_id* (for index-scan gathers)."""
        positions = self._positions
        if positions is None:
            positions = {row_id: i for i, row_id in enumerate(self.row_ids)}
            self._positions = positions
        return positions[row_id]

    def slice(self, start: int, stop: int) -> "TableSnapshot":
        """A snapshot covering rows ``[start:stop)`` of this one.

        Column slices are zero-copy views for typed array columns and plain
        list slices otherwise, so carving a snapshot into morsels is cheap.
        The slice shares this snapshot's version/token identity and is as
        immutable as its parent.
        """
        return TableSnapshot(
            self.version,
            self.row_ids[start:stop],
            {name: values[start:stop] for name, values in self.columns.items()},
            self.arrays_token,
        )

    def __getstate__(self):
        # Snapshots (and their slices) are shipped to worker processes;
        # the row-id position map is derived state, rebuilt lazily on the
        # other side instead of being serialized.
        return (self.version, self.row_ids, self.columns, self.arrays_token)

    def __setstate__(self, state) -> None:
        self.version, self.row_ids, self.columns, self.arrays_token = state
        self._positions = None


class HeapTable:
    """A row store with stable row ids and tombstone-style deletes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_row_id = 1
        # Hoisted per-schema insert metadata: the schema is fixed for the
        # table's lifetime, so the known-column set and the default fill
        # order are computed once, not once per inserted row.
        self._column_names: List[str] = [column.name for column in schema.columns]
        self._known = frozenset(self._column_names)
        self._defaults: List[Tuple[str, object]] = [
            (column.name, column.default) for column in schema.columns
        ]
        self._snapshot: Optional[TableSnapshot] = None
        # Serializes snapshot *builds* only: concurrent readers that find a
        # valid cached snapshot never touch the lock (a slot read is atomic),
        # and mutators just clear the slot.  The double-checked build below
        # keeps two threads from constructing duplicate snapshots or
        # publishing a half-initialized one.
        self._snapshot_lock = threading.Lock()

    # -- modification ------------------------------------------------------------

    def _complete(self, row: Row) -> Row:
        """Validate *row* and fill missing columns with their defaults."""
        if not self._known.issuperset(row):
            unknown = set(row) - self._known
            raise StorageError(
                f"unknown column(s) {sorted(unknown)} for table {self.schema.name!r}"
            )
        return {
            name: row[name] if name in row else default
            for name, default in self._defaults
        }

    def insert(self, row: Row) -> int:
        """Insert *row* and return its row id.

        Missing columns are filled with the column default (or ``None``);
        unknown columns are rejected.
        """
        complete = self._complete(row)
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = complete
        self._snapshot = None
        return row_id

    def insert_many(self, rows: Iterable[Row]) -> List[int]:
        """Insert every row of *rows* in one pass, returning the row ids.

        The batch path validates and completes all rows before touching the
        heap, so a row with unknown columns leaves the heap unchanged
        (per-row :meth:`insert` fails mid-way instead).
        """
        completed = [self._complete(row) for row in rows]
        first_id = self._next_row_id
        self._next_row_id += len(completed)
        heap = self._rows
        for offset, complete in enumerate(completed):
            heap[first_id + offset] = complete
        if completed:
            self._snapshot = None
        return list(range(first_id, self._next_row_id))

    def update(self, row_id: int, changes: Row) -> None:
        """Apply *changes* to the row identified by *row_id*."""
        if row_id not in self._rows:
            raise StorageError(f"row id {row_id} does not exist in {self.schema.name!r}")
        for column_name in changes:
            if not self.schema.has_column(column_name):
                raise StorageError(
                    f"unknown column {column_name!r} for table {self.schema.name!r}"
                )
        self._rows[row_id].update(changes)
        self._snapshot = None

    def delete(self, row_id: int) -> None:
        """Delete the row identified by *row_id*."""
        if row_id not in self._rows:
            raise StorageError(f"row id {row_id} does not exist in {self.schema.name!r}")
        del self._rows[row_id]
        self._snapshot = None

    def truncate(self) -> None:
        """Remove every row (row ids are not reused)."""
        self._rows.clear()
        self._snapshot = None

    # -- access --------------------------------------------------------------------

    def get(self, row_id: int) -> Row:
        """Return the row identified by *row_id*."""
        try:
            return self._rows[row_id]
        except KeyError as exc:
            raise StorageError(
                f"row id {row_id} does not exist in {self.schema.name!r}"
            ) from exc

    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(row_id, row)`` pairs in insertion order."""
        yield from self._rows.items()

    def rows(self) -> List[Row]:
        """Return all rows as a list (insertion order)."""
        return list(self._rows.values())

    def row_ids(self) -> List[int]:
        """Return all live row ids."""
        return list(self._rows.keys())

    @property
    def row_count(self) -> int:
        """The number of live rows."""
        return len(self._rows)

    def column_batch(self, version: int) -> TableSnapshot:
        """Return the columnar snapshot of the table at catalog *version*.

        The snapshot is cached: repeated scans at an unchanged catalog
        version reuse it.  *version* should be the owning database's
        :attr:`~repro.catalog.database.Database.version`; every mutation
        that can change table contents bumps it (the PR-3 rules), and the
        heap additionally drops the cache on direct mutation, so consumers
        never observe stale data.
        """
        # Imported lazily: repro.engine transitively imports this module.
        from repro.engine import arrays

        token = arrays.state_token()
        snapshot = self._snapshot
        if (
            snapshot is not None
            and snapshot.version == version
            and snapshot.arrays_token == token
        ):
            return snapshot
        with self._snapshot_lock:
            # Double-check: another thread may have built the snapshot while
            # this one waited; reuse it so concurrent same-version scans
            # share one object instead of building duplicates.
            snapshot = self._snapshot
            if (
                snapshot is not None
                and snapshot.version == version
                and snapshot.arrays_token == token
            ):
                return snapshot
            rows = list(self._rows.values())
            columns = {
                name: [row[name] for row in rows] for name in self._column_names
            }
            if len(rows) >= arrays.ARRAY_MIN_ROWS:
                # Typed-array upgrade (dtype inference runs once per snapshot
                # version); tiny tables keep plain lists — array setup costs
                # more than it saves below this size.
                columns = {
                    name: arrays.make_column(values)
                    for name, values in columns.items()
                }
            snapshot = TableSnapshot(version, list(self._rows.keys()), columns, token)
            # Publish only the fully-built snapshot: readers either see the
            # old slot (or None) or this complete object, never a torn entry.
            self._snapshot = snapshot
        return snapshot

    def column_values(self, column: str) -> List[object]:
        """Return every value of *column* (in insertion order)."""
        if not self.schema.has_column(column):
            raise StorageError(f"unknown column {column!r} for table {self.schema.name!r}")
        return [row[self.schema.column(column).name] for row in self._rows.values()]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapTable({self.schema.name!r}, rows={len(self._rows)})"
