"""A minimal time-series store backing the simulated InfluxDB dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


@dataclass
class Point:
    """One time-series point: timestamp, tag set, and field values."""

    timestamp: int
    tags: Dict[str, str] = field(default_factory=dict)
    fields: Dict[str, float] = field(default_factory=dict)


class TimeSeriesStore:
    """Measurements → points, organised into fixed-width shards."""

    def __init__(self, shard_width: int = 100_000) -> None:
        self._measurements: Dict[str, List[Point]] = {}
        self.shard_width = shard_width

    def write(self, measurement: str, points: Iterable[Point]) -> int:
        """Append points to *measurement*; returns the number written."""
        bucket = self._measurements.setdefault(measurement, [])
        added = 0
        for point in points:
            bucket.append(point)
            added += 1
        bucket.sort(key=lambda point: point.timestamp)
        return added

    def measurements(self) -> List[str]:
        return sorted(self._measurements)

    def points(self, measurement: str) -> List[Point]:
        return list(self._measurements.get(measurement, []))

    def series_count(self, measurement: str) -> int:
        """Count distinct tag sets (series) in a measurement."""
        seen = {
            tuple(sorted(point.tags.items()))
            for point in self._measurements.get(measurement, [])
        }
        return len(seen)

    def shard_count(self, measurement: str) -> int:
        """Count the time shards the measurement's points fall into."""
        points = self._measurements.get(measurement, [])
        if not points:
            return 0
        shards = {point.timestamp // self.shard_width for point in points}
        return len(shards)

    def block_count(self, measurement: str) -> int:
        """Approximate the number of TSM blocks (1000 values per block)."""
        points = self._measurements.get(measurement, [])
        values = sum(len(point.fields) for point in points)
        return max((values + 999) // 1000, 1) if points else 0

    def query(
        self,
        measurement: str,
        time_range: Optional[Tuple[Optional[int], Optional[int]]] = None,
        tag_filter: Optional[Dict[str, str]] = None,
    ) -> List[Point]:
        """Return points matching a time range and tag equality filter."""
        low, high = time_range or (None, None)
        selected = []
        for point in self._measurements.get(measurement, []):
            if low is not None and point.timestamp < low:
                continue
            if high is not None and point.timestamp > high:
                continue
            if tag_filter and any(point.tags.get(k) != v for k, v in tag_filter.items()):
                continue
            selected.append(point)
        return selected
