"""Cardinality Estimation Restriction Testing (CERT) on UPlan.

CERT finds performance issues by comparing estimated cardinalities: if query
``Q'`` is strictly more restrictive than ``Q`` (an additional conjunct in the
WHERE clause), its estimated cardinality must not be larger.  The estimates
are read from the Cardinality properties of the unified query plan, so one
implementation covers every convertible DBMS (Figure 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.converters import converter_for
from repro.core.categories import PropertyCategory
from repro.core.model import UnifiedPlan
from repro.testing.generator import RandomQueryGenerator


@dataclass
class CERTViolation:
    """One potential performance issue found by CERT."""

    dbms: str
    query: str
    restricted_query: str
    base_estimate: float
    restricted_estimate: float

    @property
    def ratio(self) -> float:
        """How much larger the restricted estimate is than the base estimate."""
        return self.restricted_estimate / max(self.base_estimate, 1e-9)


@dataclass
class CERTStatistics:
    """Aggregate results of a CERT run."""

    pairs_checked: int = 0
    violations: List[CERTViolation] = field(default_factory=list)


def root_cardinality_estimate(plan: UnifiedPlan) -> Optional[float]:
    """Extract the root-level estimated cardinality from a unified plan."""
    nodes = plan.nodes()
    for node in nodes:
        for prop in node.properties_in(PropertyCategory.CARDINALITY):
            if isinstance(prop.value, (int, float)):
                return float(prop.value)
    for prop in plan.properties:
        if prop.category is PropertyCategory.CARDINALITY and isinstance(prop.value, (int, float)):
            return float(prop.value)
    return None


class CardinalityRestrictionTester:
    """The DBMS-agnostic CERT loop over a simulated DBMS."""

    def __init__(
        self,
        dialect,
        generator: RandomQueryGenerator,
        tolerance: float = 1.05,
        explain_format: Optional[str] = None,
    ) -> None:
        self.dialect = dialect
        self.generator = generator
        self.tolerance = tolerance
        self.converter = converter_for(dialect.name)
        self.explain_format = explain_format or self.converter.formats[0]
        self.statistics = CERTStatistics()

    def estimate(self, query: str) -> Optional[float]:
        """Return the estimated root cardinality of *query*."""
        # Fault-injected dialects expose a direct estimate hook so that seeded
        # cardinality bugs are visible regardless of the serialized format.
        if hasattr(self.dialect, "estimated_root_rows"):
            return float(self.dialect.estimated_root_rows(query))
        output = self.dialect.explain(query, format=self.explain_format)
        plan = self.converter.convert(output.text, format=self.explain_format)
        return root_cardinality_estimate(plan)

    def check_pair(self, query: str, restricted_query: str) -> Optional[CERTViolation]:
        """Check one (query, restricted query) pair for monotonicity."""
        base = self.estimate(query)
        restricted = self.estimate(restricted_query)
        self.statistics.pairs_checked += 1
        if base is None or restricted is None:
            return None
        if restricted > base * self.tolerance:
            violation = CERTViolation(
                dbms=self.dialect.name,
                query=query,
                restricted_query=restricted_query,
                base_estimate=base,
                restricted_estimate=restricted,
            )
            self.statistics.violations.append(violation)
            return violation
        return None

    def run(self, pairs: int = 100, setup_statements: Optional[List[str]] = None) -> CERTStatistics:
        """Generate and check *pairs* random (query, restricted query) pairs."""
        statements = setup_statements or self.generator.schema_statements()
        for statement in statements:
            try:
                self.dialect.execute(statement)
            except Exception:
                continue
        if hasattr(self.dialect, "analyze_tables"):
            self.dialect.analyze_tables()
        for _ in range(pairs):
            query = self.generator.select_query()
            table = self.generator.random.choice(self.generator.tables)
            restricted = self.generator.restricted_query(query, table)
            try:
                self.check_pair(query, restricted)
            except Exception:
                continue
        return self.statistics
