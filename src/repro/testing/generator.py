"""Random schema, data, and query generation (the SQLancer role).

QPG and CERT need a stream of randomly generated databases and queries.  The
generator is deliberately simple but produces the constructs the oracles care
about: filtered scans, joins, grouping, set operations, and index creation /
row mutation statements used as database-state mutations by QPG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.sqlparser import ast_nodes as ast
from repro.sqlparser.printer import print_expression, print_select


@dataclass
class GeneratorConfig:
    """Knobs of the random generator."""

    max_tables: int = 3
    max_columns: int = 4
    max_rows_per_table: int = 60
    max_predicates: int = 3
    max_join_tables: int = 3
    integer_range: int = 100
    allow_group_by: bool = True
    allow_set_operations: bool = True
    allow_subqueries: bool = True


class RandomQueryGenerator:
    """Generates random schemas, rows, mutations, and SELECT queries."""

    def __init__(self, seed: int = 0, config: Optional[GeneratorConfig] = None) -> None:
        self.random = random.Random(seed)
        self.config = config or GeneratorConfig()
        self.tables: List[str] = []
        self.columns: dict = {}
        self._index_counter = 0

    # ------------------------------------------------------------------ schema / data

    def schema_statements(self) -> List[str]:
        """Generate CREATE TABLE + INSERT statements for a fresh database."""
        statements: List[str] = []
        self.tables = []
        self.columns = {}
        table_count = self.random.randint(1, self.config.max_tables)
        for table_index in range(table_count):
            table = f"t{table_index}"
            column_count = self.random.randint(1, self.config.max_columns)
            columns = [f"c{i}" for i in range(column_count)]
            self.tables.append(table)
            self.columns[table] = columns
            # Primary keys are added on the first column of some tables; their
            # values are then generated unique and non-null below.
            with_primary_key = self.random.random() < 0.3
            definitions = ", ".join(
                f"{column} INT" + (" PRIMARY KEY" if i == 0 and with_primary_key else "")
                for i, column in enumerate(columns)
            )
            statements.append(f"CREATE TABLE {table} ({definitions})")
            row_count = self.random.randint(1, self.config.max_rows_per_table)
            rows = []
            for row_index in range(row_count):
                values = ", ".join(
                    str(row_index + 1)
                    if (i == 0 and with_primary_key)
                    else self._random_value_text(allow_null=True)
                    for i, _ in enumerate(columns)
                )
                rows.append(f"({values})")
            statements.append(
                f"INSERT INTO {table} ({', '.join(columns)}) VALUES {', '.join(rows)}"
            )
        return statements

    def _random_value_text(self, allow_null: bool = False) -> str:
        if allow_null and self.random.random() < 0.08:
            return "NULL"
        return str(self.random.randint(-self.config.integer_range, self.config.integer_range))

    # ------------------------------------------------------------------ mutations (QPG)

    def mutation_statement(self) -> str:
        """Generate a database-state mutation (index, insert, update, delete)."""
        table = self.random.choice(self.tables)
        columns = self.columns[table]
        choice = self.random.random()
        if choice < 0.4:
            self._index_counter += 1
            column = self.random.choice(columns)
            return f"CREATE INDEX i{self._index_counter} ON {table}({column})"
        if choice < 0.7:
            values = ", ".join(self._random_value_text(allow_null=True) for _ in columns)
            return f"INSERT INTO {table} ({', '.join(columns)}) VALUES ({values})"
        if choice < 0.85:
            column = self.random.choice(columns)
            return (
                f"UPDATE {table} SET {column} = {self._random_value_text()} "
                f"WHERE {self.random.choice(columns)} < {self._random_value_text()}"
            )
        return f"DELETE FROM {table} WHERE {self.random.choice(columns)} > {self._random_value_text()}"

    # ------------------------------------------------------------------ predicates

    def random_predicate(self, table: str) -> ast.Expression:
        """Generate a random predicate over *table*'s columns."""
        column = ast.ColumnRef(self.random.choice(self.columns[table]), table)
        roll = self.random.random()
        constant = ast.Literal(self.random.randint(-self.config.integer_range, self.config.integer_range))
        if roll < 0.35:
            operator = self.random.choice(["<", "<=", ">", ">=", "=", "<>"])
            return ast.BinaryOp(operator, column, constant)
        if roll < 0.5:
            low = self.random.randint(-self.config.integer_range, 0)
            high = self.random.randint(0, self.config.integer_range)
            return ast.Between(column, ast.Literal(low), ast.Literal(high))
        if roll < 0.65:
            items = [
                ast.Literal(self.random.randint(-self.config.integer_range, self.config.integer_range))
                for _ in range(self.random.randint(1, 4))
            ]
            return ast.InList(column, items, negated=self.random.random() < 0.3)
        if roll < 0.75:
            return ast.IsNull(column, negated=self.random.random() < 0.5)
        if roll < 0.9:
            left = self.random_predicate(table)
            right = self.random_predicate(table)
            return ast.BinaryOp(self.random.choice(["AND", "OR"]), left, right)
        function = ast.FunctionCall(
            "GREATEST", [ast.Literal(round(self.random.random(), 1)), ast.Literal(round(self.random.random(), 1))]
        )
        return ast.InList(column, [function], negated=False)

    def subquery_predicate(self, tables: Sequence[str]) -> ast.Expression:
        """An ``IN`` / ``NOT IN`` / ``[NOT] EXISTS`` subquery predicate.

        The subqueries are uncorrelated — every reference is qualified with
        the inner table — so the planner's decorrelation rewrite applies and
        campaigns steer toward the semi/anti-join plan shapes; with
        ``decorrelate=False`` the same queries exercise the per-row oracle
        path.  Inner tables keep their normal NULL rate, which makes the
        ``NOT IN`` + inner-NULL trap a routinely generated case.
        """
        outer = self.random.choice(list(tables))
        inner = self.random.choice(self.tables)
        inner_column = ast.ColumnRef(self.random.choice(self.columns[inner]), inner)
        inner_where = (
            self.random_predicate(inner) if self.random.random() < 0.5 else None
        )
        subquery = ast.SelectStatement(
            body=ast.SelectCore(
                items=[ast.SelectItem(inner_column)],
                from_clause=ast.TableRef(inner),
                where=inner_where,
            )
        )
        roll = self.random.random()
        if roll < 0.6:
            probe = ast.ColumnRef(self.random.choice(self.columns[outer]), outer)
            return ast.InSubquery(probe, subquery, negated=self.random.random() < 0.4)
        exists = ast.Exists(subquery)
        if self.random.random() < 0.5:
            return ast.UnaryOp("NOT", exists)
        return exists

    def where_clause(self, tables: Sequence[str]) -> Optional[ast.Expression]:
        """Generate a conjunction of random predicates over *tables*."""
        predicate_count = self.random.randint(0, self.config.max_predicates)
        predicates = [
            self.random_predicate(self.random.choice(list(tables)))
            for _ in range(predicate_count)
        ]
        return ast.conjoin(predicates)

    # ------------------------------------------------------------------ queries

    def select_query(self) -> str:
        """Generate a random SELECT statement as SQL text."""
        table_count = self.random.randint(1, min(self.config.max_join_tables, len(self.tables)))
        chosen = self.random.sample(self.tables, table_count)
        from_clause = " , ".join(chosen) if table_count > 1 and self.random.random() < 0.3 else None
        if from_clause is None and table_count > 1:
            base = chosen[0]
            joins = []
            for other in chosen[1:]:
                left_column = self.random.choice(self.columns[base])
                right_column = self.random.choice(self.columns[other])
                joins.append(f"INNER JOIN {other} ON {base}.{left_column} = {other}.{right_column}")
            from_clause = f"{base} {' '.join(joins)}"
        elif from_clause is None:
            from_clause = chosen[0]

        target_table = chosen[0]
        target_column = self.random.choice(self.columns[target_table])
        select_list = f"{target_table}.{target_column}"
        if self.random.random() < 0.25:
            select_list = "*"

        where = self.where_clause(chosen)
        if self.config.allow_subqueries and self.random.random() < 0.15:
            quantified = self.subquery_predicate(chosen)
            where = (
                quantified if where is None else ast.BinaryOp("AND", where, quantified)
            )
        where_text = f" WHERE {print_expression(where)}" if where is not None else ""

        group_text = ""
        if self.config.allow_group_by and self.random.random() < 0.3 and select_list != "*":
            group_text = f" GROUP BY {select_list}"

        query = f"SELECT {select_list} FROM {from_clause}{where_text}{group_text}"

        if self.config.allow_set_operations and self.random.random() < 0.15:
            other_table = self.random.choice(self.tables)
            other_column = self.random.choice(self.columns[other_table])
            operator = self.random.choice(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"])
            if select_list == "*":
                query = f"SELECT {target_table}.{target_column} FROM {from_clause}{where_text}"
            query = f"{query} {operator} SELECT {other_table}.{other_column} FROM {other_table}"

        if self.random.random() < 0.2:
            query += f" ORDER BY 1 LIMIT {self.random.randint(1, 10)}"
        return query

    def restricted_query(self, query: str, table: str) -> str:
        """Return a strictly more restrictive version of *query* (for CERT)."""
        column = self.random.choice(self.columns[table])
        extra = f"{table}.{column} < {self.random.randint(0, self.config.integer_range)}"
        if " WHERE " in query.upper():
            position = query.upper().index(" WHERE ") + len(" WHERE ")
            return query[:position] + f"({extra}) AND " + query[position:]
        insert_at = len(query)
        for keyword in (" GROUP BY ", " ORDER BY ", " UNION", " INTERSECT", " EXCEPT", " LIMIT "):
            index = query.upper().find(keyword)
            if index != -1:
                insert_at = min(insert_at, index)
        return query[:insert_at] + f" WHERE {extra}" + query[insert_at:]
