"""Query Plan Guidance (QPG) implemented DBMS-agnostically on UPlan.

QPG steers random test-case generation towards unseen query plans: it tracks
the set of *structurally distinct* unified plans observed so far and, when no
new plan has appeared for a configurable number of consecutive queries,
mutates the database state (adds indexes, inserts/updates/deletes rows) to
unlock new plan shapes.

The original implementation needed a DBMS-specific plan parser per system; on
top of UPlan a single implementation covers every convertible DBMS
(Figure 2).  The plan fingerprint ignores unstable information — estimated
costs, runtime metrics, and auto-generated operator identifiers — which is
precisely where the original TiDB-specific parser had a bug.

Coverage is tracked with the cached Merkle *structural fingerprints* from
:mod:`repro.core.compare` (not whole-plan string keys), and raw plans are
converted through a :class:`~repro.pipeline.PlanIngestService`, so repeated
plan texts are parsed once and campaigns can merge coverage sets across
DBMSs and runs (fingerprints are process-stable).

When the ingest service carries a persistent
:class:`~repro.pipeline.CoverageStore`, every structural fingerprint QPG
observes is durably recorded (the service stores it as entry metadata), and
plans whose raw text an earlier run already ingested resolve from the
persistent source index without re-parsing: ``observe_plan`` then reads the
structural fingerprint straight from the store.  The per-round
``seen_fingerprints`` set intentionally starts empty each round — round
behaviour (stagnation, mutations) must not depend on which process runs the
round, or an interrupted campaign would diverge from an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.core.compare import structural_fingerprint
from repro.core.model import UnifiedPlan
from repro.errors import ConversionError
from repro.pipeline import PlanIngestService, PlanSource
from repro.testing.generator import RandomQueryGenerator
from repro.testing.tlp import TLPResult, check_tlp


@dataclass
class QPGConfig:
    """Configuration of the QPG loop."""

    queries_per_round: int = 200
    stagnation_threshold: int = 12
    explain_format: Optional[str] = None
    run_tlp: bool = True


@dataclass
class QPGStatistics:
    """Aggregate results of a QPG run."""

    queries_generated: int = 0
    unique_plans: int = 0
    mutations_applied: int = 0
    #: Plans resolved via the hub's ``is_cached`` fast path (no PlanSource
    #: built, no ingest-service bookkeeping) — still conversion-cache hits.
    fast_path_hits: int = 0
    oracle_checks: int = 0
    oracle_violations: int = 0
    violating_queries: List[str] = field(default_factory=list)


class QueryPlanGuidance:
    """The DBMS-agnostic QPG loop over a simulated DBMS."""

    def __init__(
        self,
        dialect,
        generator: RandomQueryGenerator,
        config: Optional[QPGConfig] = None,
        oracle: Optional[Callable[[str], bool]] = None,
        ingest_service: Optional[PlanIngestService] = None,
    ) -> None:
        self.dialect = dialect
        self.generator = generator
        self.config = config or QPGConfig()
        #: Conversion goes through the (optionally shared) ingest service so
        #: repeated plan texts parse once and conversion stats are observable.
        self.ingest_service = ingest_service or PlanIngestService()
        self.converter = self.ingest_service.hub.converter(dialect.name)
        self.seen_fingerprints: Set[str] = set()
        self.statistics = QPGStatistics()
        #: Optional external oracle: called with the query, returns True when OK.
        self.oracle = oracle

    # ------------------------------------------------------------------ plan handling

    def observe_plan(self, query: str) -> bool:
        """EXPLAIN *query*, ingest the plan, and record its fingerprint.

        Returns whether the plan was structurally new *to this round*.
        Plans resolved from the persistent coverage index (warm start)
        never re-parse: their structural fingerprint is read from the
        store's entry metadata instead of the plan object.
        """
        explain_format = self.config.explain_format or self.converter.formats[0]
        output = self.dialect.explain(query, format=explain_format)
        hub = self.ingest_service.hub
        # Fast path (PR-1 follow-up): raw plan texts a campaign has already
        # converted in this process resolve straight from the hub's
        # conversion cache — no PlanSource object, no ingest bookkeeping.
        # Gated on the coverage index already holding the fingerprint, so
        # the slow path below remains the only writer of coverage entries.
        key = hub.cache_key(self.dialect.name, output.text, explain_format)
        if hub.contains_key(key):
            plan, _ = hub.convert_traced(
                self.dialect.name, output.text, explain_format, key=key
            )
            if self.ingest_service.coverage.contains(plan.fingerprint()):
                self.statistics.fast_path_hits += 1
                fingerprint = structural_fingerprint(plan)
                is_new = fingerprint not in self.seen_fingerprints
                self.seen_fingerprints.add(fingerprint)
                return is_new
        entry = self.ingest_service.ingest(
            PlanSource(self.dialect.name, output.text, explain_format, query=query)
        )
        if not entry.ok:
            raise ConversionError(self.dialect.name, entry.error)
        if entry.plan is not None:
            fingerprint = structural_fingerprint(entry.plan)
        else:
            # Warm start: the identity fingerprint came from the persistent
            # index without conversion; the structural fingerprint rides in
            # the store's metadata.
            meta = self.ingest_service.coverage.get(entry.fingerprint) or {}
            structural = meta.get("s")
            if isinstance(structural, str):
                fingerprint = structural
            else:
                # A foreign/merged store may know the identity fingerprint
                # but not the structural one; parse once to recover it and
                # write it back so no later process repeats the work.
                plan: UnifiedPlan = self.ingest_service.hub.convert(
                    self.dialect.name, output.text, explain_format
                )
                fingerprint = structural_fingerprint(plan)
                self.ingest_service.coverage.add(
                    entry.fingerprint, {"s": fingerprint}
                )
        is_new = fingerprint not in self.seen_fingerprints
        self.seen_fingerprints.add(fingerprint)
        return is_new

    # ------------------------------------------------------------------ oracle

    def _check_oracle(self, query: str) -> None:
        if self.oracle is not None:
            self.statistics.oracle_checks += 1
            if not self.oracle(query):
                self.statistics.oracle_violations += 1
                self.statistics.violating_queries.append(query)
            return
        if not self.config.run_tlp:
            return
        table = self.generator.random.choice(self.generator.tables)
        predicate = self.generator.random_predicate(table)
        self.statistics.oracle_checks += 1
        result: TLPResult = check_tlp(self.dialect, table, predicate)
        if not result.passed:
            self.statistics.oracle_violations += 1
            self.statistics.violating_queries.append(result.partition_queries[0])

    # ------------------------------------------------------------------ main loop

    def run(self, setup_statements: Optional[List[str]] = None) -> QPGStatistics:
        """Run one QPG campaign round and return its statistics."""
        statements = setup_statements or self.generator.schema_statements()
        for statement in statements:
            try:
                self.dialect.execute(statement)
            except Exception:
                # A rejected setup statement (e.g. a key violation injected by
                # a mutation) is skipped, as SQLancer does.
                continue
        if hasattr(self.dialect, "analyze_tables"):
            self.dialect.analyze_tables()

        stagnation = 0
        for _ in range(self.config.queries_per_round):
            query = self.generator.select_query()
            self.statistics.queries_generated += 1
            try:
                is_new = self.observe_plan(query)
                self.dialect.execute(query)
            except Exception:
                # Queries the simulated DBMS rejects are simply skipped, as
                # SQLancer skips statements a real DBMS rejects.
                continue
            self._check_oracle(query)
            if is_new:
                stagnation = 0
            else:
                stagnation += 1
            if stagnation >= self.config.stagnation_threshold:
                mutation = self.generator.mutation_statement()
                try:
                    self.dialect.execute(mutation)
                    if hasattr(self.dialect, "analyze_tables"):
                        self.dialect.analyze_tables()
                except Exception:
                    pass
                self.statistics.mutations_applied += 1
                stagnation = 0
        self.statistics.unique_plans = len(self.seen_fingerprints)
        return self.statistics
