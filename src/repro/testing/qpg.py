"""Query Plan Guidance (QPG) implemented DBMS-agnostically on UPlan.

QPG steers random test-case generation towards unseen query plans: it tracks
the set of *structurally distinct* unified plans observed so far and, when no
new plan has appeared for a configurable number of consecutive queries,
mutates the database state (adds indexes, inserts/updates/deletes rows) to
unlock new plan shapes.

The original implementation needed a DBMS-specific plan parser per system; on
top of UPlan a single implementation covers every convertible DBMS
(Figure 2).  The plan fingerprint ignores unstable information — estimated
costs, runtime metrics, and auto-generated operator identifiers — which is
precisely where the original TiDB-specific parser had a bug.

Coverage is tracked with the cached Merkle *structural fingerprints* from
:mod:`repro.core.compare` (not whole-plan string keys), and raw plans are
converted through a :class:`~repro.pipeline.PlanIngestService`, so repeated
plan texts are parsed once and campaigns can merge coverage sets across
DBMSs and runs (fingerprints are process-stable).

When the ingest service carries a persistent
:class:`~repro.pipeline.CoverageStore`, every structural fingerprint QPG
observes is durably recorded (the service stores it as entry metadata), and
plans whose raw text an earlier run already ingested resolve from the
persistent source index without re-parsing: ``observe_plan`` then reads the
structural fingerprint straight from the store.  The per-round
``seen_fingerprints`` set intentionally starts empty each round — round
behaviour (stagnation, mutations) must not depend on which process runs the
round, or an interrupted campaign would diverge from an uninterrupted one.

**Novelty modes.**  ``QPGConfig.novelty`` selects how "new" is judged:

* ``"exact"`` (the default) — a plan is new iff its structural fingerprint
  is unseen this round.  This is the pre-similarity behaviour, bit for
  bit: no embedding is computed, no index consulted.
* ``"similarity"`` — each distinct plan earns a *novelty reward*: its
  cosine distance to the nearest plan already in the round's
  :class:`~repro.similarity.PlanIndex` (1.0 for the round's first plan).
  The plan counts as new when the reward exceeds
  ``novelty_threshold``, so near-duplicates of covered shapes no longer
  reset the stagnation counter and mutations fire sooner.  The index
  starts empty each round for the same process-independence reason as
  ``seen_fingerprints``; campaigns merge the per-round indexes afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.core.compare import structural_fingerprint
from repro.core.model import UnifiedPlan
from repro.errors import ConversionError
from repro.pipeline import PlanIngestService, PlanSource
from repro.similarity import PlanIndex, embed_plan
from repro.testing.generator import RandomQueryGenerator
from repro.testing.tlp import TLPResult, check_tlp

#: Valid ``QPGConfig.novelty`` modes.
NOVELTY_MODES = ("exact", "similarity")


@dataclass
class QPGConfig:
    """Configuration of the QPG loop."""

    queries_per_round: int = 200
    stagnation_threshold: int = 12
    explain_format: Optional[str] = None
    run_tlp: bool = True
    #: How plan novelty is judged — ``"exact"`` (structural-fingerprint set
    #: membership, the byte-identical default) or ``"similarity"``
    #: (distance-to-nearest-covered-plan; see the module docstring).
    novelty: str = "exact"
    #: Minimum nearest-neighbour cosine distance for a plan to count as
    #: new under ``novelty="similarity"``; ignored in exact mode.
    novelty_threshold: float = 0.05


@dataclass
class QPGStatistics:
    """Aggregate results of a QPG run."""

    queries_generated: int = 0
    unique_plans: int = 0
    mutations_applied: int = 0
    #: Plans resolved via the hub's ``is_cached`` fast path (no PlanSource
    #: built, no ingest-service bookkeeping) — still conversion-cache hits.
    fast_path_hits: int = 0
    oracle_checks: int = 0
    oracle_violations: int = 0
    #: Sum of the per-plan novelty rewards (nearest-covered-plan distances)
    #: under ``novelty="similarity"``; stays 0.0 in exact mode.
    novelty_reward_total: float = 0.0
    violating_queries: List[str] = field(default_factory=list)


class QueryPlanGuidance:
    """The DBMS-agnostic QPG loop over a simulated DBMS."""

    def __init__(
        self,
        dialect,
        generator: RandomQueryGenerator,
        config: Optional[QPGConfig] = None,
        oracle: Optional[Callable[[str], bool]] = None,
        ingest_service: Optional[PlanIngestService] = None,
        plan_index: Optional[PlanIndex] = None,
    ) -> None:
        self.dialect = dialect
        self.generator = generator
        self.config = config or QPGConfig()
        if self.config.novelty not in NOVELTY_MODES:
            raise ValueError(
                f"unknown novelty mode {self.config.novelty!r}; "
                f"expected one of {NOVELTY_MODES}"
            )
        #: Conversion goes through the (optionally shared) ingest service so
        #: repeated plan texts parse once and conversion stats are observable.
        self.ingest_service = ingest_service or PlanIngestService()
        self.converter = self.ingest_service.hub.converter(dialect.name)
        self.seen_fingerprints: Set[str] = set()
        #: The similarity index scoring novelty rewards; None in exact mode
        #: (which must not touch the similarity machinery at all).  A caller
        #: may inject a pre-built index — campaigns pass a fresh per-round
        #: one so they can collect it afterwards.
        if self.config.novelty == "similarity":
            self.plan_index = plan_index if plan_index is not None else PlanIndex()
        else:
            self.plan_index = None
        self.statistics = QPGStatistics()
        #: Optional external oracle: called with the query, returns True when OK.
        self.oracle = oracle

    # ------------------------------------------------------------------ plan handling

    def _record_observation(
        self,
        fingerprint: str,
        plan: Optional[UnifiedPlan],
        output_text: str,
        explain_format: str,
    ) -> bool:
        """Record one observed plan; returns whether it counts as new.

        Both ``observe_plan`` paths (fast and slow) funnel through here so
        the novelty policy is applied exactly once per observation.  In
        exact mode this is pure set membership — no embedding, no index.
        In similarity mode the plan's novelty reward is its distance to the
        round's nearest indexed plan; *plan* may be None (warm-start path),
        in which case the raw text converts through the hub's cache only
        when the reward is actually needed.
        """
        is_new = fingerprint not in self.seen_fingerprints
        self.seen_fingerprints.add(fingerprint)
        if self.plan_index is None:
            return is_new
        if self.plan_index.contains(fingerprint):
            # Re-observing an indexed plan earns no reward (distance 0).
            return False
        if plan is None:
            plan = self.ingest_service.hub.convert(
                self.dialect.name, output_text, explain_format
            )
        vector = embed_plan(plan)
        reward = self.plan_index.nearest_distance(vector)
        self.plan_index.add(fingerprint, vector)
        self.statistics.novelty_reward_total += reward
        return reward > self.config.novelty_threshold

    def observe_plan(self, query: str) -> bool:
        """EXPLAIN *query*, ingest the plan, and record its fingerprint.

        Returns whether the plan was new *to this round* under the
        configured novelty mode (see module docstring).  Plans resolved
        from the persistent coverage index (warm start) never re-parse:
        their structural fingerprint is read from the store's entry
        metadata instead of the plan object.
        """
        explain_format = self.config.explain_format or self.converter.formats[0]
        output = self.dialect.explain(query, format=explain_format)
        hub = self.ingest_service.hub
        # Fast path (PR-1 follow-up): raw plan texts a campaign has already
        # converted in this process resolve straight from the hub's
        # conversion cache — no PlanSource object, no ingest bookkeeping.
        # Gated on the coverage index already holding the fingerprint, so
        # the slow path below remains the only writer of coverage entries.
        key = hub.cache_key(self.dialect.name, output.text, explain_format)
        if hub.contains_key(key):
            plan, _ = hub.convert_traced(
                self.dialect.name, output.text, explain_format, key=key
            )
            if self.ingest_service.coverage.contains(plan.fingerprint()):
                self.statistics.fast_path_hits += 1
                return self._record_observation(
                    structural_fingerprint(plan), plan, output.text, explain_format
                )
        entry = self.ingest_service.ingest(
            PlanSource(self.dialect.name, output.text, explain_format, query=query)
        )
        if not entry.ok:
            raise ConversionError(self.dialect.name, entry.error)
        if entry.plan is not None:
            plan = entry.plan
            fingerprint = structural_fingerprint(plan)
        else:
            # Warm start: the identity fingerprint came from the persistent
            # index without conversion; the structural fingerprint rides in
            # the store's metadata.
            plan = None
            meta = self.ingest_service.coverage.get(entry.fingerprint) or {}
            structural = meta.get("s")
            if isinstance(structural, str):
                fingerprint = structural
            else:
                # A foreign/merged store may know the identity fingerprint
                # but not the structural one; parse once to recover it and
                # write it back so no later process repeats the work.
                plan = self.ingest_service.hub.convert(
                    self.dialect.name, output.text, explain_format
                )
                fingerprint = structural_fingerprint(plan)
                self.ingest_service.coverage.add(
                    entry.fingerprint, {"s": fingerprint}
                )
        return self._record_observation(fingerprint, plan, output.text, explain_format)

    # ------------------------------------------------------------------ oracle

    def _check_oracle(self, query: str) -> None:
        if self.oracle is not None:
            self.statistics.oracle_checks += 1
            if not self.oracle(query):
                self.statistics.oracle_violations += 1
                self.statistics.violating_queries.append(query)
            return
        if not self.config.run_tlp:
            return
        table = self.generator.random.choice(self.generator.tables)
        predicate = self.generator.random_predicate(table)
        self.statistics.oracle_checks += 1
        result: TLPResult = check_tlp(self.dialect, table, predicate)
        if not result.passed:
            self.statistics.oracle_violations += 1
            self.statistics.violating_queries.append(result.partition_queries[0])

    # ------------------------------------------------------------------ main loop

    def run(self, setup_statements: Optional[List[str]] = None) -> QPGStatistics:
        """Run one QPG campaign round and return its statistics."""
        statements = setup_statements or self.generator.schema_statements()
        for statement in statements:
            try:
                self.dialect.execute(statement)
            except Exception:
                # A rejected setup statement (e.g. a key violation injected by
                # a mutation) is skipped, as SQLancer does.
                continue
        if hasattr(self.dialect, "analyze_tables"):
            self.dialect.analyze_tables()

        stagnation = 0
        for _ in range(self.config.queries_per_round):
            query = self.generator.select_query()
            self.statistics.queries_generated += 1
            try:
                is_new = self.observe_plan(query)
                self.dialect.execute(query)
            except Exception:
                # Queries the simulated DBMS rejects are simply skipped, as
                # SQLancer skips statements a real DBMS rejects.
                continue
            self._check_oracle(query)
            if is_new:
                stagnation = 0
            else:
                stagnation += 1
            if stagnation >= self.config.stagnation_threshold:
                mutation = self.generator.mutation_statement()
                try:
                    self.dialect.execute(mutation)
                    if hasattr(self.dialect, "analyze_tables"):
                        self.dialect.analyze_tables()
                except Exception:
                    pass
                self.statistics.mutations_applied += 1
                stagnation = 0
        self.statistics.unique_plans = len(self.seen_fingerprints)
        return self.statistics
