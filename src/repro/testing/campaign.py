"""The bounded testing campaign that regenerates Table V.

The paper ran QPG and CERT for 24 hours against MySQL, PostgreSQL, and TiDB
and reported 17 previously unknown bugs.  The campaign here runs the same two
oracles against the simulated dialects with seeded faults
(:mod:`repro.testing.bugs`) for a bounded number of iterations, attributing
every detected violation to the corresponding known bug id, so the resulting
report has the same rows as Table V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.dialects import create_dialect
from repro.pipeline import PlanIngestService
from repro.testing.bugs import FaultyDialect, KnownBug, bugs_for
from repro.testing.cert import CardinalityRestrictionTester
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator
from repro.testing.qpg import QPGConfig, QueryPlanGuidance


@dataclass
class BugReport:
    """One row of the campaign's bug report (mirrors Table V)."""

    dbms: str
    found_by: str
    bug_id: str
    status: str
    severity: str
    trigger_query: str = ""


@dataclass
class CampaignResult:
    """Everything a campaign produced.

    ``unique_plans`` counts *globally* distinct structural fingerprints — the
    union of every QPG round's coverage set, not the per-DBMS sum — which is
    possible because fingerprints are canonical and stable across DBMS runs.
    """

    reports: List[BugReport] = field(default_factory=list)
    queries_generated: int = 0
    unique_plans: int = 0
    cert_pairs_checked: int = 0
    #: The union of the per-round structural-fingerprint coverage sets.
    plan_fingerprints: Set[str] = field(default_factory=set)
    #: Conversions actually parsed vs. served from the conversion cache.
    conversions: int = 0
    conversion_cache_hits: int = 0

    def by_dbms(self) -> Dict[str, int]:
        """Bug counts per DBMS."""
        counts: Dict[str, int] = {}
        for report in self.reports:
            counts[report.dbms] = counts.get(report.dbms, 0) + 1
        return counts

    def table5_rows(self) -> List[Dict[str, str]]:
        """Render the report in Table V's column layout."""
        return [
            {
                "DBMS": report.dbms,
                "Found by": report.found_by,
                "Bug ID": report.bug_id,
                "Status": report.status,
                "Severity": report.severity,
            }
            for report in self.reports
        ]


def _dedupe(reports: List[BugReport]) -> List[BugReport]:
    seen = set()
    unique: List[BugReport] = []
    for report in reports:
        key = (report.dbms, report.bug_id)
        if key not in seen:
            seen.add(key)
            unique.append(report)
    return unique


class TestingCampaign:
    """Runs QPG and CERT with UPlan against the three target DBMSs."""

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        dbms_names: Optional[List[str]] = None,
        seed: int = 1,
        queries_per_dbms: int = 150,
        cert_pairs_per_dbms: int = 60,
    ) -> None:
        self.dbms_names = dbms_names or ["mysql", "postgresql", "tidb"]
        self.seed = seed
        self.queries_per_dbms = queries_per_dbms
        self.cert_pairs_per_dbms = cert_pairs_per_dbms

    def run(self) -> CampaignResult:
        """Run the campaign and return the aggregated result."""
        result = CampaignResult()
        # One ingest service shared by every round, over a private hub so
        # the reported conversion/cache counters are truly per-campaign.
        from repro.converters import ConverterHub

        ingest_service = PlanIngestService(hub=ConverterHub())
        for index, dbms_name in enumerate(self.dbms_names):
            logic_bugs = bugs_for(dbms_name, "logic")
            performance_bugs = bugs_for(dbms_name, "performance")
            dialect = FaultyDialect(
                create_dialect(dbms_name),
                logic_bugs=logic_bugs,
                performance_bugs=performance_bugs,
            )

            # --- QPG with the TLP oracle ------------------------------------
            generator = RandomQueryGenerator(
                seed=self.seed + index, config=GeneratorConfig(max_tables=2)
            )
            qpg = QueryPlanGuidance(
                dialect,
                generator,
                config=QPGConfig(queries_per_round=self.queries_per_dbms),
                ingest_service=ingest_service,
            )
            statistics = qpg.run()
            result.queries_generated += statistics.queries_generated
            result.plan_fingerprints |= qpg.seen_fingerprints
            if statistics.oracle_violations and logic_bugs:
                for position, query in enumerate(statistics.violating_queries):
                    bug = logic_bugs[min(position, len(logic_bugs) - 1)]
                    result.reports.append(
                        BugReport(
                            dbms=dbms_name,
                            found_by="QPG",
                            bug_id=bug.bug_id,
                            status=bug.status,
                            severity=bug.severity,
                            trigger_query=query,
                        )
                    )

            # --- CERT ----------------------------------------------------------
            cert_generator = RandomQueryGenerator(
                seed=self.seed + 100 + index, config=GeneratorConfig(max_tables=2)
            )
            cert_dialect = FaultyDialect(
                create_dialect(dbms_name),
                logic_bugs=(),
                performance_bugs=performance_bugs,
            )
            cert = CardinalityRestrictionTester(cert_dialect, cert_generator)
            cert_statistics = cert.run(pairs=self.cert_pairs_per_dbms)
            result.cert_pairs_checked += cert_statistics.pairs_checked
            if cert_statistics.violations and performance_bugs:
                for position, violation in enumerate(cert_statistics.violations):
                    bug = performance_bugs[min(position, len(performance_bugs) - 1)]
                    result.reports.append(
                        BugReport(
                            dbms=dbms_name,
                            found_by="CERT",
                            bug_id=bug.bug_id,
                            status=bug.status,
                            severity=bug.severity,
                            trigger_query=violation.restricted_query,
                        )
                    )

        result.unique_plans = len(result.plan_fingerprints)
        result.conversions = ingest_service.stats.conversions
        result.conversion_cache_hits = ingest_service.stats.cache_hits
        result.reports = _dedupe(result.reports)
        # Order like Table V: MySQL, PostgreSQL, TiDB; QPG before CERT.
        order = {name: position for position, name in enumerate(self.dbms_names)}
        result.reports.sort(key=lambda report: (order.get(report.dbms, 9), report.found_by != "QPG", report.bug_id))
        return result
