"""The bounded testing campaign that regenerates Table V.

The paper ran QPG and CERT for 24 hours against MySQL, PostgreSQL, and TiDB
and reported 17 previously unknown bugs.  The campaign here runs the same two
oracles against the simulated dialects with seeded faults
(:mod:`repro.testing.bugs`) for a bounded number of iterations, attributing
every detected violation to the corresponding known bug id, so the resulting
report has the same rows as Table V.

Campaigns are **resumable**.  With ``persist_to=`` the campaign's ingest
service keeps its coverage index in a durable
:class:`~repro.pipeline.CoverageStore`; each completed per-DBMS round is
marked in the store, and the store is atomically checkpointed after every
round.  A campaign stopped between rounds (``max_rounds=``, a crash after a
checkpoint, or plain process exit) can be re-run with the *same
configuration* — completed rounds are skipped (their persisted bug reports
and counters fold back into the result), the remaining rounds execute with
exactly the seeds they would have had in an uninterrupted run, and the
final coverage set, ``unique_plans``, and Table V rows are identical to the
uninterrupted campaign's.  Round seeds derive from each DBMS's position in the configured
``dbms_names`` list, so the list (and seed) must be the same across the
interrupted and resuming processes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.dialects import create_dialect
from repro.pipeline import PlanIngestService
from repro.testing.bound import SizeBoundChecker
from repro.testing.bugs import (
    BugReport,
    FaultyDialect,
    KnownBug,
    bugs_for,
    fold_reports,
    report_from_payload,
)
from repro.testing.cert import CardinalityRestrictionTester
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator
from repro.testing.qpg import NOVELTY_MODES, QPGConfig, QueryPlanGuidance

__all__ = ["BugReport", "CampaignResult", "TestingCampaign"]


@dataclass
class CampaignResult:
    """Everything a campaign produced.

    ``unique_plans`` counts *globally* distinct structural fingerprints — the
    union of every QPG round's coverage set, not the per-DBMS sum — which is
    possible because fingerprints are canonical and stable across DBMS runs.
    """

    reports: List[BugReport] = field(default_factory=list)
    queries_generated: int = 0
    unique_plans: int = 0
    cert_pairs_checked: int = 0
    #: ``EXPLAIN ANALYZE`` queries checked by the intermediate-size-bound
    #: oracle.  Real DBMSs have no Table V bugs of the "bound" kind, so the
    #: oracle contributes no reports to a default campaign.
    bound_queries_checked: int = 0
    #: The union of the per-round structural-fingerprint coverage sets,
    #: including coverage loaded from a persisted store when resuming.
    plan_fingerprints: Set[str] = field(default_factory=set)
    #: Conversions actually parsed vs. served from the conversion cache.
    conversions: int = 0
    conversion_cache_hits: int = 0
    #: Rounds completed by this run vs. skipped because an earlier
    #: (interrupted) run already marked them complete in the store.
    rounds_completed: int = 0
    rounds_skipped: int = 0
    #: Per-round result payloads as ``(round index, payload)`` pairs, for
    #: completed *and* restored rounds.  A sharded campaign's parent folds
    #: these back together in round order, so the merged Table V rows are
    #: byte-identical to a serial run's (dedupe keeps the first (dbms,
    #: bug id) occurrence, which depends on round order, not shard order).
    round_payloads: List[Tuple[int, dict]] = field(default_factory=list)
    #: The campaign store's exported contents (:meth:`CoverageStore.to_payload`),
    #: populated only when ``run(collect_store_payload=True)`` — the picklable
    #: store handoff from a sharded-campaign worker to its parent.
    store_payload: Optional[dict] = None
    #: Summed per-plan novelty rewards (nearest-covered-plan distances)
    #: across every QPG round; stays 0.0 under ``novelty="exact"``.
    novelty_reward_total: float = 0.0
    #: The campaign-level similarity index — the union of the per-round
    #: indexes, exported with :meth:`repro.similarity.PlanIndex.to_payload`.
    #: None under ``novelty="exact"``; picklable for the sharded handoff.
    index_payload: Optional[dict] = None

    def cluster_reports(self, *, threshold: Optional[float] = None):
        """Similarity-clustered triage of the campaign's bug reports.

        Returns :class:`repro.similarity.ReportCluster` groups over
        ``self.reports`` (see :func:`repro.similarity.cluster_reports`).
        Computed on demand — never shipped across process boundaries — so
        a sharded campaign's merged result clusters exactly like a serial
        run's: both recompute from the same folded, deduplicated reports.
        """
        from repro.similarity import DEFAULT_CLUSTER_THRESHOLD, cluster_reports

        if threshold is None:
            threshold = DEFAULT_CLUSTER_THRESHOLD
        return cluster_reports(self.reports, threshold=threshold)

    def by_dbms(self) -> Dict[str, int]:
        """Bug counts per DBMS."""
        counts: Dict[str, int] = {}
        for report in self.reports:
            counts[report.dbms] = counts.get(report.dbms, 0) + 1
        return counts

    def table5_rows(self) -> List[Dict[str, str]]:
        """Render the report in Table V's column layout."""
        return [
            {
                "DBMS": report.dbms,
                "Found by": report.found_by,
                "Bug ID": report.bug_id,
                "Status": report.status,
                "Severity": report.severity,
            }
            for report in self.reports
        ]


#: Backwards-compatible alias — report dedup now lives with the report
#: type in :mod:`repro.testing.bugs` so payload folding has no import cycle.
_dedupe = fold_reports


class TestingCampaign:
    """Runs QPG and CERT with UPlan against the three target DBMSs."""

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        dbms_names: Optional[List[str]] = None,
        seed: int = 1,
        queries_per_dbms: int = 150,
        cert_pairs_per_dbms: int = 60,
        bound_checks_per_dbms: int = 20,
        persist_to: Optional[str] = None,
        max_rounds: Optional[int] = None,
        prepared_cache: bool = True,
        executor: str = "vectorized",
        decorrelate: bool = True,
        optimize_joins: bool = True,
        novelty: str = "exact",
        novelty_threshold: float = 0.05,
        capture_trigger_plans: bool = True,
        dialect_factory: Optional[Callable[[str, Dict[str, object]], object]] = None,
    ) -> None:
        self.dbms_names = dbms_names or ["mysql", "postgresql", "tidb"]
        self.seed = seed
        self.queries_per_dbms = queries_per_dbms
        self.cert_pairs_per_dbms = cert_pairs_per_dbms
        self.bound_checks_per_dbms = bound_checks_per_dbms
        #: Whether the dialects' prepared-query caches are enabled.  The
        #: cache is semantically invisible — a campaign run with it off
        #: produces byte-identical coverage sets and Table V reports (see
        #: tests/test_prepared_cache.py) — so this exists for benchmarking
        #: and for the equivalence tests themselves.
        self.prepared_cache = prepared_cache
        #: Which executor interprets plans (``"vectorized"`` / ``"row"``).
        #: Like the prepared cache, the choice is semantically invisible:
        #: row-executor campaigns produce byte-identical coverage sets and
        #: Table V reports (tests/test_vectorized_equivalence.py).
        self.executor = executor
        #: Whether the planners decorrelate uncorrelated IN/EXISTS
        #: predicates into hash semi/anti joins.  Result rows (and therefore
        #: oracle verdicts and Table V) are independent of the setting; the
        #: *plans* — and thus QPG's coverage universe — are not: with
        #: decorrelation on, semi/anti-join operators appear in coverage.
        self.decorrelate = decorrelate
        #: Whether the planners push predicates below joins and reorder
        #: multi-way joins cost-based (the PR-8 optimizer).  Like
        #: ``decorrelate``, the toggle may change *plans* — and thus QPG's
        #: coverage universe — but never result rows, oracle verdicts, or
        #: Table V (tests/test_optimizer.py pins the equivalence).
        self.optimize_joins = optimize_joins
        #: QPG novelty mode — ``"exact"`` (byte-identical to the
        #: pre-similarity campaigns) or ``"similarity"``
        #: (distance-to-nearest-covered-plan rewards; see
        #: :mod:`repro.testing.qpg`).  In similarity mode each round's
        #: :class:`~repro.similarity.PlanIndex` starts empty (the same
        #: process-independence rule as ``seen_fingerprints``) and the
        #: campaign merges the per-round indexes into
        #: ``result.index_payload`` — persisted as ``sim-*.jsonl`` sidecars
        #: next to the coverage store when ``persist_to=`` is set.
        if novelty not in NOVELTY_MODES:
            raise ValueError(
                f"unknown novelty mode {novelty!r}; expected one of {NOVELTY_MODES}"
            )
        self.novelty = novelty
        self.novelty_threshold = novelty_threshold
        #: Whether each bug report captures its trigger query's unified
        #: plan (``BugReport.trigger_plan``) for similarity triage.  The
        #: capture runs through a campaign-private converter hub after the
        #: oracles finish, so coverage sets, conversion counters, and
        #: Table V stay byte-identical whether it is on or off.
        self.capture_trigger_plans = capture_trigger_plans
        #: Directory for the durable coverage store; None keeps it in memory.
        self.persist_to = persist_to
        #: Stop (gracefully, between rounds) after this many executed
        #: rounds; a later run with the same configuration resumes.
        self.max_rounds = max_rounds
        #: Optional hook replacing how per-round dialects are built: called
        #: as ``dialect_factory(dbms_name, options)`` where ``options``
        #: carries the campaign's dialect settings (prepared_cache, executor,
        #: decorrelate, optimize_joins).  The service-equivalence tests use
        #: it to route rounds through a loopback query service; the returned
        #: object only needs the dialect surface the oracles touch.
        self.dialect_factory = dialect_factory
        if max_rounds is not None and persist_to is None:
            # Without a durable store the completion marks die with the
            # process, so the remaining rounds would be unreachable: every
            # re-run would redo the same first rounds and stop again.
            raise ValueError("max_rounds requires persist_to= (resume needs a durable store)")

    def _round_label(self, index: int, dbms_name: str) -> str:
        """The store mark identifying one completed per-DBMS round.

        The label pins everything that determines the round's behaviour —
        DBMS, derived seed, and workload sizes — so a resumed campaign only
        skips rounds that an identically-configured run completed.  The
        novelty mode joins the label only when it is not ``"exact"``:
        exact-mode labels must stay byte-identical to pre-similarity
        campaigns so their persisted stores keep resuming.
        """
        label = (
            f"round:{dbms_name}:{self.seed + index}"
            f":{self.queries_per_dbms}:{self.cert_pairs_per_dbms}"
            f":{self.bound_checks_per_dbms}"
        )
        if self.novelty != "exact":
            label += f":novelty={self.novelty}:{self.novelty_threshold!r}"
        return label

    def _create_dialect(self, dbms_name: str):
        if self.dialect_factory is not None:
            return self.dialect_factory(
                dbms_name,
                {
                    "prepared_cache": self.prepared_cache,
                    "executor": self.executor,
                    "decorrelate": self.decorrelate,
                    "optimize_joins": self.optimize_joins,
                },
            )
        dialect = create_dialect(dbms_name)
        if not self.prepared_cache and hasattr(dialect, "prepared"):
            dialect.prepared.enabled = False
        if hasattr(dialect, "set_executor"):
            dialect.set_executor(self.executor)
        if hasattr(dialect, "set_decorrelate"):
            dialect.set_decorrelate(self.decorrelate)
        if hasattr(dialect, "set_optimize_joins"):
            dialect.set_optimize_joins(self.optimize_joins)
        return dialect

    def run(
        self,
        only_indexes: Optional[Iterable[int]] = None,
        collect_store_payload: bool = False,
    ) -> CampaignResult:
        """Run the campaign and return the aggregated result.

        ``only_indexes`` restricts the run to the named round indexes
        (positions in ``dbms_names``); the other rounds are neither executed
        nor counted.  Because every round derives its seeds from its *index*
        — never from which rounds ran before it — a partition of the index
        space across processes reproduces the serial rounds exactly; this is
        the hook :class:`repro.parallel.ShardedCampaign` workers use.
        ``collect_store_payload`` additionally exports the coverage store's
        contents into ``result.store_payload`` before the store closes.
        """
        result = CampaignResult()
        # One ingest service shared by every round, over a private hub so
        # the reported conversion/cache counters are truly per-campaign.
        from repro.converters import ConverterHub

        ingest_service = PlanIngestService(
            hub=ConverterHub(), persist_to=self.persist_to
        )
        store = ingest_service.coverage
        campaign_index = None
        if self.novelty == "similarity":
            from repro.similarity import PlanIndex

            # The campaign-level index accumulates the per-round indexes;
            # with persist_to= it rides as sim-*.jsonl sidecars in the
            # coverage store's directory and resumes with it.
            campaign_index = PlanIndex(path=self.persist_to)
        try:
            self._run_rounds(
                result, ingest_service, store, only_indexes, campaign_index
            )
            if collect_store_payload:
                result.store_payload = store.to_payload()
        finally:
            # Completed rounds were checkpointed; close the store handles
            # (and any process pool) even when a round aborts mid-way.
            if campaign_index is not None:
                campaign_index.close()
            ingest_service.close()
        return result

    def _round_report_path(self, label: str) -> Optional[str]:
        """Where a completed round's results are persisted (durable only)."""
        if self.persist_to is None:
            return None
        digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).hexdigest()
        return os.path.join(self.persist_to, f"round-{digest}.json")

    def _persist_round(self, label: str, payload: dict) -> None:
        path = self._round_report_path(label)
        if path is None:
            return
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def _restore_round(
        self,
        result: CampaignResult,
        index: int,
        label: str,
        campaign_index=None,
    ) -> None:
        """Fold a previously-completed round's persisted results into
        *result*, so a resumed campaign returns the same Table V rows (not
        just the same coverage) as an uninterrupted run."""
        path = self._round_report_path(label)
        if path is None or not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        result.queries_generated += payload.get("queries_generated", 0)
        result.cert_pairs_checked += payload.get("cert_pairs_checked", 0)
        result.bound_queries_checked += payload.get("bound_queries_checked", 0)
        result.novelty_reward_total += payload.get("novelty_reward_total", 0.0)
        for row in payload.get("reports", []):
            result.reports.append(report_from_payload(row))
        if campaign_index is not None and "index" in payload:
            campaign_index.merge_payload(payload["index"])
        result.round_payloads.append((index, payload))

    def _capture_trigger_plan(self, triage_hub, dialect, query: str) -> Optional[dict]:
        """Best-effort unified-plan capture for a bug report's trigger query.

        Runs through *triage_hub* — a campaign-private converter hub, never
        the ingest service — after the oracle that filed the report has
        finished with *dialect*, so exact-mode coverage sets and conversion
        counters are byte-identical whether capture is on or off.
        """
        if triage_hub is None:
            return None
        try:
            explain_format = triage_hub.converter(dialect.name).formats[0]
            output = dialect.explain(query, format=explain_format)
            plan = triage_hub.convert(dialect.name, output.text, explain_format)
            return plan.to_dict()
        except Exception:
            # A query the dialect cannot re-explain still yields a report;
            # it just clusters as a singleton (no plan to compare).
            return None

    def _run_rounds(
        self, result, ingest_service, store, only_indexes=None, campaign_index=None
    ) -> None:
        if only_indexes is not None:
            only_indexes = set(only_indexes)
        triage_hub = None
        if self.capture_trigger_plans:
            from repro.converters import ConverterHub

            triage_hub = ConverterHub()
        for index, dbms_name in enumerate(self.dbms_names):
            if only_indexes is not None and index not in only_indexes:
                continue
            if self.max_rounds is not None and result.rounds_completed >= self.max_rounds:
                break
            label = self._round_label(index, dbms_name)
            if store.is_marked(label):
                result.rounds_skipped += 1
                self._restore_round(result, index, label, campaign_index)
                continue
            round_start = {
                "reports": len(result.reports),
                "queries": result.queries_generated,
                "pairs": result.cert_pairs_checked,
                "bound_queries": result.bound_queries_checked,
            }
            logic_bugs = bugs_for(dbms_name, "logic")
            performance_bugs = bugs_for(dbms_name, "performance")
            dialect = FaultyDialect(
                self._create_dialect(dbms_name),
                logic_bugs=logic_bugs,
                performance_bugs=performance_bugs,
            )

            # --- QPG with the TLP oracle ------------------------------------
            generator = RandomQueryGenerator(
                seed=self.seed + index, config=GeneratorConfig(max_tables=2)
            )
            round_index = None
            if self.novelty == "similarity":
                from repro.similarity import PlanIndex

                # Fresh per round, like seen_fingerprints: round behaviour
                # must not depend on which process runs the round, so a
                # sharded campaign reproduces the serial one exactly.
                round_index = PlanIndex()
            qpg = QueryPlanGuidance(
                dialect,
                generator,
                config=QPGConfig(
                    queries_per_round=self.queries_per_dbms,
                    novelty=self.novelty,
                    novelty_threshold=self.novelty_threshold,
                ),
                ingest_service=ingest_service,
                plan_index=round_index,
            )
            statistics = qpg.run()
            result.queries_generated += statistics.queries_generated
            # Hub-level fast-path hits never reach the ingest service's
            # counters; account them here so every observed plan is either a
            # conversion or a cache hit.
            result.conversion_cache_hits += statistics.fast_path_hits
            result.plan_fingerprints |= qpg.seen_fingerprints
            if statistics.oracle_violations and logic_bugs:
                for position, query in enumerate(statistics.violating_queries):
                    bug = logic_bugs[min(position, len(logic_bugs) - 1)]
                    result.reports.append(
                        BugReport(
                            dbms=dbms_name,
                            found_by="QPG",
                            bug_id=bug.bug_id,
                            status=bug.status,
                            severity=bug.severity,
                            trigger_query=query,
                            trigger_plan=self._capture_trigger_plan(
                                triage_hub, dialect, query
                            ),
                        )
                    )

            # --- CERT ----------------------------------------------------------
            cert_generator = RandomQueryGenerator(
                seed=self.seed + 100 + index, config=GeneratorConfig(max_tables=2)
            )
            cert_dialect = FaultyDialect(
                self._create_dialect(dbms_name),
                logic_bugs=(),
                performance_bugs=performance_bugs,
            )
            cert = CardinalityRestrictionTester(cert_dialect, cert_generator)
            cert_statistics = cert.run(pairs=self.cert_pairs_per_dbms)
            result.cert_pairs_checked += cert_statistics.pairs_checked
            if cert_statistics.violations and performance_bugs:
                for position, violation in enumerate(cert_statistics.violations):
                    bug = performance_bugs[min(position, len(performance_bugs) - 1)]
                    result.reports.append(
                        BugReport(
                            dbms=dbms_name,
                            found_by="CERT",
                            bug_id=bug.bug_id,
                            status=bug.status,
                            severity=bug.severity,
                            trigger_query=violation.restricted_query,
                            trigger_plan=self._capture_trigger_plan(
                                triage_hub, cert_dialect, violation.restricted_query
                            ),
                        )
                    )

            # --- Bound oracle -------------------------------------------------
            # Intermediate-size bounds double as a runtime oracle: a correct
            # engine can never report an actual operator row count above its
            # proven bound, so any EXPLAIN ANALYZE violation is a bug.  No
            # real DBMS in Table V has a "bound"-kind bug, so this section
            # adds zero reports to default campaigns — it exists so seeded
            # bound faults (tests) surface through the same reporting path.
            bound_bugs = bugs_for(dbms_name, "bound")
            bound_generator = RandomQueryGenerator(
                seed=self.seed + 200 + index, config=GeneratorConfig(max_tables=2)
            )
            bound_dialect = FaultyDialect(
                self._create_dialect(dbms_name),
                logic_bugs=(),
                performance_bugs=(),
                bound_bugs=bound_bugs,
            )
            bound_checker = SizeBoundChecker(bound_dialect, bound_generator)
            bound_statistics = bound_checker.run(queries=self.bound_checks_per_dbms)
            result.bound_queries_checked += bound_statistics.queries_checked
            if bound_statistics.violations and bound_bugs:
                for position, bound_violation in enumerate(bound_statistics.violations):
                    bug = bound_bugs[min(position, len(bound_bugs) - 1)]
                    result.reports.append(
                        BugReport(
                            dbms=dbms_name,
                            found_by="Bound",
                            bug_id=bug.bug_id,
                            status=bug.status,
                            severity=bug.severity,
                            trigger_query=bound_violation.query,
                            trigger_plan=self._capture_trigger_plan(
                                triage_hub, bound_dialect, bound_violation.query
                            ),
                        )
                    )

            # The round is complete: persist its results, mark it, and
            # atomically checkpoint the store, so a stop/crash from here on
            # resumes after this round with nothing lost — coverage *and*
            # the round's Table V rows.
            round_payload = {
                "reports": [
                    dict(vars(report))
                    for report in result.reports[round_start["reports"]:]
                ],
                "queries_generated": result.queries_generated
                - round_start["queries"],
                "cert_pairs_checked": result.cert_pairs_checked
                - round_start["pairs"],
                "bound_queries_checked": result.bound_queries_checked
                - round_start["bound_queries"],
            }
            if campaign_index is not None:
                # The per-round index rides in the payload (JSON emits
                # repr-faithful doubles, so vectors round-trip exactly) and
                # folds into the campaign-level sidecar before the round is
                # marked, matching the store's checkpoint granularity.
                round_payload["novelty_reward_total"] = statistics.novelty_reward_total
                round_payload["index"] = round_index.to_payload()
                result.novelty_reward_total += statistics.novelty_reward_total
                campaign_index.merge_payload(round_payload["index"])
                campaign_index.flush()
            self._persist_round(label, round_payload)
            result.round_payloads.append((index, round_payload))
            store.mark(label)
            result.rounds_completed += 1
            ingest_service.checkpoint()

        # Coverage is the union over every completed round, including
        # rounds completed by earlier runs of an interrupted campaign
        # (their structural fingerprints were persisted via the store).
        result.plan_fingerprints |= store.structural_fingerprints()
        result.unique_plans = len(result.plan_fingerprints)
        result.conversions = ingest_service.stats.conversions
        result.conversion_cache_hits += ingest_service.stats.cache_hits
        if campaign_index is not None:
            result.index_payload = campaign_index.to_payload()
        result.reports = fold_reports(result.reports)
        # Order like Table V: MySQL, PostgreSQL, TiDB; QPG before CERT.
        order = {name: position for position, name in enumerate(self.dbms_names)}
        result.reports.sort(key=lambda report: (order.get(report.dbms, 9), report.found_by != "QPG", report.bug_id))
