"""Seeded fault injection and the known-bug registry (Table V).

The paper evaluates QPG and CERT on real MySQL / PostgreSQL / TiDB
installations and reports 17 previously unknown bugs (Table V).  Without those
installations we reproduce the *shape* of that experiment by planting
realistic defects into the simulated dialects:

* **logic bugs** — the executor silently drops or duplicates rows for queries
  that hit a trigger condition (e.g. an ``IN (GREATEST(...))`` predicate with
  an index on the column — Listing 3's MySQL bug 113302);
* **performance bugs** — the optimizer's cardinality estimate violates
  monotonicity for restricted queries, which CERT flags;
* **bound bugs** — ``EXPLAIN ANALYZE`` reports an operator producing more
  rows than its statically proven intermediate-size bound, which the Bound
  oracle flags (Table V has none of these; injection is test-only).

Each injected fault carries the corresponding bug id from Table V, so the
campaign report can be compared 1:1 with the paper's table.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence

from repro.dialects.base import ExplainOutput, RelationalDialect


@dataclass(frozen=True)
class KnownBug:
    """One entry of Table V."""

    dbms: str
    found_by: str  # "QPG" or "CERT"
    bug_id: str
    status: str
    severity: str
    kind: str  # "logic" or "performance"


@dataclass
class BugReport:
    """One row of the campaign's bug report (mirrors Table V).

    ``trigger_plan`` optionally carries the unified plan of the trigger
    query (a :meth:`~repro.core.model.UnifiedPlan.to_dict` payload captured
    when the report was filed) — the input to similarity-clustered triage
    (:func:`repro.similarity.cluster_reports`).  It rides through JSON
    round payloads and pickled worker results unchanged; it never appears
    in Table V rows.  Cluster *assignments* are deliberately not a report
    field: they are recomputed from the folded report list wherever needed,
    so they cannot go stale across a sharded campaign's process boundary.
    """

    dbms: str
    found_by: str
    bug_id: str
    status: str
    severity: str
    trigger_query: str = ""
    trigger_plan: Optional[dict] = None


#: The BugReport field names — the whitelist payload restoration uses.
_REPORT_FIELDS = tuple(field.name for field in fields(BugReport))


def report_from_payload(row: Dict[str, object]) -> BugReport:
    """Rebuild a :class:`BugReport` from a persisted round-payload row.

    Unknown keys are dropped and missing optional fields default, so
    payloads written by older campaigns (without ``trigger_plan``) and by
    newer ones (with fields this version does not know) both restore
    instead of raising ``TypeError`` inside a resume or a sharded fold.
    """
    return BugReport(**{key: row[key] for key in _REPORT_FIELDS if key in row})


def fold_reports(reports: Sequence[BugReport]) -> List[BugReport]:
    """Deduplicate *reports*, keeping the first ``(dbms, bug_id)`` occurrence.

    The fold is order-sensitive by design — campaigns fold in round-index
    order so a sharded run keeps exactly the rows a serial run keeps — and
    it keeps the first occurrence *whole*, including its captured
    ``trigger_plan``, so triage clusters computed after the fold see the
    same plans in every process.
    """
    seen = set()
    unique: List[BugReport] = []
    for report in reports:
        key = (report.dbms, report.bug_id)
        if key not in seen:
            seen.add(key)
            unique.append(report)
    return unique


#: Table V of the paper — the 17 previously unknown, unique bugs.
KNOWN_BUGS: List[KnownBug] = [
    KnownBug("mysql", "QPG", "113302", "Confirmed", "Critical", "logic"),
    KnownBug("mysql", "QPG", "113304", "Confirmed", "Critical", "logic"),
    KnownBug("mysql", "QPG", "113317", "Confirmed", "Critical", "logic"),
    KnownBug("mysql", "QPG", "114204", "Confirmed", "Serious", "logic"),
    KnownBug("mysql", "QPG", "114217", "Confirmed", "Serious", "logic"),
    KnownBug("mysql", "QPG", "114218", "Confirmed", "Serious", "logic"),
    KnownBug("mysql", "CERT", "114237", "Confirmed", "Performance", "performance"),
    KnownBug("postgresql", "CERT", "Email", "Pending", "Performance", "performance"),
    KnownBug("tidb", "QPG", "49107", "Fixed", "Major", "logic"),
    KnownBug("tidb", "QPG", "49108", "Confirmed", "Major", "logic"),
    KnownBug("tidb", "QPG", "49109", "Fixed", "Major", "logic"),
    KnownBug("tidb", "QPG", "49110", "Confirmed", "Major", "logic"),
    KnownBug("tidb", "QPG", "49131", "Confirmed", "Major", "logic"),
    KnownBug("tidb", "QPG", "51490", "Confirmed", "Moderate", "logic"),
    KnownBug("tidb", "QPG", "51523", "Confirmed", "Moderate", "logic"),
    KnownBug("tidb", "CERT", "51524", "Confirmed", "Minor", "performance"),
    KnownBug("tidb", "CERT", "51525", "Confirmed", "Minor", "performance"),
]


def bugs_for(dbms: str, kind: Optional[str] = None) -> List[KnownBug]:
    """Return the Table V bugs of *dbms*, optionally filtered by kind."""
    return [
        bug
        for bug in KNOWN_BUGS
        if bug.dbms == dbms.lower() and (kind is None or bug.kind == kind)
    ]


class FaultyDialect:
    """A simulated DBMS with seeded logic and cardinality-estimation faults.

    The wrapper delegates everything to the underlying dialect but perturbs
    (a) result sets of trigger queries — a *logic* fault, and (b) estimated
    cardinalities of restricted trigger queries — a *performance* fault.  The
    trigger is a stable hash of the query text, so campaigns are
    deterministic, and each distinct trigger bucket is associated with one of
    the DBMS's known bug ids.
    """

    def __init__(
        self,
        dialect: RelationalDialect,
        logic_bugs: Sequence[KnownBug] = (),
        performance_bugs: Sequence[KnownBug] = (),
        bound_bugs: Sequence[KnownBug] = (),
        trigger_rate: int = 7,
    ) -> None:
        self.dialect = dialect
        self.logic_bugs = list(logic_bugs)
        self.performance_bugs = list(performance_bugs)
        #: Faults that make ``EXPLAIN ANALYZE`` report an operator producing
        #: more rows than its proven intermediate-size bound — the class of
        #: engine bug the campaign's "Bound" oracle flags.  Table V has no
        #: bugs of this kind (the paper predates the oracle), so default
        #: campaigns pass ``()`` and the oracle stays silent.
        self.bound_bugs = list(bound_bugs)
        self.trigger_rate = max(trigger_rate, 1)

    # -- delegation -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.dialect.name

    def __getattr__(self, attribute: str):
        return getattr(self.dialect, attribute)

    # -- fault triggers -----------------------------------------------------------

    def _bucket(self, query: str) -> int:
        digest = hashlib.sha256(query.encode("utf-8")).hexdigest()
        return int(digest[:8], 16)

    def logic_fault_for(self, query: str) -> Optional[KnownBug]:
        """Return the logic bug triggered by *query*, if any."""
        if not self.logic_bugs or not query.upper().lstrip().startswith("SELECT"):
            return None
        bucket = self._bucket(query)
        if bucket % self.trigger_rate == 0:
            return self.logic_bugs[bucket % len(self.logic_bugs)]
        # Listing 3: index-backed IN(GREATEST(...)) look-ups are always wrong.
        if "IN (GREATEST(" in query.upper().replace(" ", " ") and self.dialect.database.index_names():
            return self.logic_bugs[0]
        return None

    def performance_fault_for(self, query: str) -> Optional[KnownBug]:
        """Return the performance bug triggered by *query*, if any."""
        if not self.performance_bugs:
            return None
        bucket = self._bucket(query)
        if bucket % (self.trigger_rate + 4) == 0:
            return self.performance_bugs[bucket % len(self.performance_bugs)]
        return None

    def bound_fault_for(self, query: str) -> Optional[KnownBug]:
        """Return the intermediate-size-bound bug triggered by *query*, if any."""
        if not self.bound_bugs or not query.upper().lstrip().startswith("SELECT"):
            return None
        bucket = self._bucket(query)
        if bucket % (self.trigger_rate + 9) == 0:
            return self.bound_bugs[bucket % len(self.bound_bugs)]
        return None

    # -- perturbed behaviour ---------------------------------------------------------

    def execute(self, statement: str):
        rows = self.dialect.execute(statement)
        fault = self.logic_fault_for(statement)
        if fault is not None and rows:
            # Silently drop the last row — the class of wrong-result bug QPG+TLP find.
            return rows[:-1]
        return rows

    def explain(self, statement: str, format: Optional[str] = None, analyze: bool = False) -> ExplainOutput:
        output = self.dialect.explain(statement, format=format, analyze=analyze)
        if analyze:
            fault = self.bound_fault_for(statement)
            if fault is not None:
                # A faulty executor leaks more rows out of an operator than
                # its proven size bound allows.  Deterministic values keep
                # campaign reports reproducible across runs.
                bucket = self._bucket(statement)
                bound = float(10 + bucket % 90)
                violation = {
                    "operator": "Hash Join",
                    "size_bound": bound,
                    "actual_rows": int(bound) + 1 + bucket % 1000,
                }
                output = ExplainOutput(
                    dbms=output.dbms,
                    format=output.format,
                    text=output.text,
                    query=output.query,
                    bound_violations=tuple(output.bound_violations) + (violation,),
                )
        return output

    def estimated_root_rows(self, statement: str) -> float:
        """Root cardinality estimate, perturbed for performance-fault triggers."""
        inner = getattr(self.dialect, "estimated_root_rows", None)
        if inner is not None:
            # The wrapped dialect exposes its own estimator (e.g. the service
            # adapter, whose planner lives on the other side of the wire) —
            # perturb that estimate instead of planning locally.
            estimate = max(float(inner(statement)), 1.0)
        else:
            physical = self.dialect.planner.plan_statement(
                __import__("repro.sqlparser.parser", fromlist=["parse_one"]).parse_one(statement)
            )
            estimate = max(physical.estimated_rows, 1.0)
        fault = self.performance_fault_for(statement)
        if fault is not None:
            # A restricted query suddenly gets a *larger* estimate: the
            # monotonicity violation CERT is designed to catch.
            estimate *= 25.0
        return estimate
