"""Ternary Logic Partitioning (TLP) — the logic-bug test oracle.

TLP partitions a query's rows by a predicate ``p`` into the rows where ``p``
is true, false, and NULL.  The union of the three partitions must equal the
unpartitioned result; any difference indicates a logic bug.  The paper uses
TLP as the oracle that surfaces the Listing 3 MySQL bug found with QPG.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sqlparser import ast_nodes as ast
from repro.sqlparser.printer import print_expression


@dataclass
class TLPResult:
    """Outcome of one TLP check."""

    passed: bool
    query: str
    partition_queries: Tuple[str, str, str]
    base_count: int
    partition_count: int
    message: str = ""


def _row_key(row: dict) -> Tuple:
    return tuple(
        (key, repr(value)) for key, value in sorted(row.items(), key=lambda item: item[0])
    )


def partition_queries(table: str, predicate: ast.Expression, select_list: str = "*") -> Tuple[str, str, str]:
    """Build the three partition queries for ``SELECT select_list FROM table``."""
    predicate_text = print_expression(predicate)
    return (
        f"SELECT {select_list} FROM {table} WHERE {predicate_text}",
        f"SELECT {select_list} FROM {table} WHERE NOT ({predicate_text})",
        f"SELECT {select_list} FROM {table} WHERE ({predicate_text}) IS NULL",
    )


def check_tlp(dialect, table: str, predicate: ast.Expression, select_list: str = "*") -> TLPResult:
    """Run a TLP check for one table/predicate pair against *dialect*."""
    base_query = f"SELECT {select_list} FROM {table}"
    partitions = partition_queries(table, predicate, select_list)

    base_rows = dialect.execute(base_query)
    partition_rows: List[dict] = []
    for query in partitions:
        partition_rows.extend(dialect.execute(query))

    base_counter = Counter(_row_key(row) for row in base_rows)
    partition_counter = Counter(_row_key(row) for row in partition_rows)
    passed = base_counter == partition_counter
    message = ""
    if not passed:
        missing = base_counter - partition_counter
        extra = partition_counter - base_counter
        message = (
            f"partitioned result differs from base result "
            f"(missing={sum(missing.values())}, extra={sum(extra.values())})"
        )
    return TLPResult(
        passed=passed,
        query=base_query,
        partition_queries=partitions,
        base_count=sum(base_counter.values()),
        partition_count=sum(partition_counter.values()),
        message=message,
    )
