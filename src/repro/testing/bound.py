"""Intermediate-size-bound testing on ``EXPLAIN ANALYZE`` output.

The optimizer derives a *proven* upper bound on the number of rows each plan
operator can produce (:mod:`repro.optimizer.bounds`, after Chen & Schneider,
arXiv 2412.13104).  The bound is sound by construction: it is computed from
actual base-table row counts and declared key constraints, never from
statistics.  A correct engine therefore can never report an actual operator
row count above its bound — if ``EXPLAIN ANALYZE`` does, either the
optimizer's bound derivation or the executor's row accounting is broken.

That turns the bound into a *test oracle* in the spirit of the paper's
QPG/CERT campaigns: run ``EXPLAIN ANALYZE`` on generated queries and flag any
plan whose runtime counters exceed a proven bound.  Unlike CERT the oracle
needs no query pair and no tolerance — a single query and an exact comparison
suffice, because the bound is a guarantee rather than an estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.testing.generator import RandomQueryGenerator


@dataclass
class BoundViolation:
    """One operator whose actual row count exceeded its proven size bound."""

    dbms: str
    query: str
    operator: str
    size_bound: float
    actual_rows: int


@dataclass
class BoundStatistics:
    """Aggregate results of a size-bound oracle run."""

    queries_checked: int = 0
    violations: List[BoundViolation] = field(default_factory=list)


class SizeBoundChecker:
    """The DBMS-agnostic intermediate-size-bound loop over a simulated DBMS."""

    def __init__(self, dialect, generator: RandomQueryGenerator) -> None:
        self.dialect = dialect
        self.generator = generator
        self.statistics = BoundStatistics()

    def check_query(self, query: str) -> List[BoundViolation]:
        """Run ``EXPLAIN ANALYZE`` on *query* and collect bound violations."""
        output = self.dialect.explain(query, analyze=True)
        self.statistics.queries_checked += 1
        violations = [
            BoundViolation(
                dbms=self.dialect.name,
                query=query,
                operator=str(entry.get("operator", "?")),
                size_bound=float(entry.get("size_bound", 0.0)),
                actual_rows=int(entry.get("actual_rows", 0)),
            )
            for entry in getattr(output, "bound_violations", ())
        ]
        self.statistics.violations.extend(violations)
        return violations

    def run(self, queries: int = 100, setup_statements: Optional[List[str]] = None) -> BoundStatistics:
        """Generate and check *queries* random SELECT queries."""
        statements = setup_statements or self.generator.schema_statements()
        for statement in statements:
            try:
                self.dialect.execute(statement)
            except Exception:
                continue
        if hasattr(self.dialect, "analyze_tables"):
            self.dialect.analyze_tables()
        for _ in range(queries):
            query = self.generator.select_query()
            try:
                self.check_query(query)
            except Exception:
                continue
        return self.statistics
