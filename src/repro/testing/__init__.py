"""Application A.1: DBMS testing (QPG, CERT, TLP) on the unified representation."""

from repro.testing.generator import GeneratorConfig, RandomQueryGenerator
from repro.testing.tlp import TLPResult, check_tlp, partition_queries
from repro.testing.qpg import QPGConfig, QPGStatistics, QueryPlanGuidance
from repro.testing.cert import (
    CardinalityRestrictionTester,
    CERTStatistics,
    CERTViolation,
    root_cardinality_estimate,
)
from repro.testing.bound import BoundStatistics, BoundViolation, SizeBoundChecker
from repro.testing.bugs import (
    BugReport,
    FaultyDialect,
    KnownBug,
    KNOWN_BUGS,
    bugs_for,
    fold_reports,
    report_from_payload,
)
from repro.testing.campaign import CampaignResult, TestingCampaign

__all__ = [
    "GeneratorConfig",
    "RandomQueryGenerator",
    "TLPResult",
    "check_tlp",
    "partition_queries",
    "QPGConfig",
    "QPGStatistics",
    "QueryPlanGuidance",
    "CardinalityRestrictionTester",
    "CERTStatistics",
    "CERTViolation",
    "root_cardinality_estimate",
    "BoundStatistics",
    "BoundViolation",
    "SizeBoundChecker",
    "FaultyDialect",
    "KnownBug",
    "KNOWN_BUGS",
    "bugs_for",
    "BugReport",
    "fold_reports",
    "report_from_payload",
    "CampaignResult",
    "TestingCampaign",
]
