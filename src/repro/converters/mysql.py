"""Converter for MySQL serialized query plans (JSON, tabular, and tree formats)."""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Tuple

from repro.converters.base import PlanConverter, register_converter
from repro.core.model import PlanNode, UnifiedPlan
from repro.errors import ConversionError

_TREE_LINE = re.compile(
    r"^(?P<indent>\s*)->\s+(?P<name>.+?)\s*(?:\(cost=(?P<cost>[\d.]+)\s+rows=(?P<rows>\d+)\))?\s*$"
)


@register_converter
class MySQLConverter(PlanConverter):
    """Parses MySQL ``EXPLAIN`` output (FORMAT=JSON, traditional table, FORMAT=TREE)."""

    dbms = "mysql"
    aliases = ("mariadb",)
    formats = ("json", "table", "tree")

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        if format == "json":
            return self._parse_json(serialized)
        if format == "tree":
            return self._parse_tree(serialized)
        return self._parse_table(serialized)

    # ------------------------------------------------------------------ JSON

    def _parse_json(self, serialized: str) -> UnifiedPlan:
        try:
            document = json.loads(serialized)
        except json.JSONDecodeError as exc:
            raise ConversionError(self.dbms, f"invalid JSON plan: {exc}") from exc
        query_block = document.get("query_block", {})
        plan = UnifiedPlan()
        cost_info = query_block.get("cost_info", {})
        if "query_cost" in cost_info:
            plan.properties.append(self.property("query_cost", cost_info["query_cost"]))
        if "plan" in query_block:
            plan.root = self._node_from_json(query_block["plan"])
        return plan

    def _node_from_json(self, data: Dict[str, Any]) -> PlanNode:
        node = self.make_node(self._normalise_name(str(data.get("operation", "Unknown"))))
        for key, value in data.items():
            if key in {"operation", "nested_operations"}:
                continue
            node.properties.append(self.property(key, value))
        for child in data.get("nested_operations", []):
            node.children.append(self._node_from_json(child))
        return node

    # ------------------------------------------------------------------ table

    def _parse_table(self, serialized: str) -> UnifiedPlan:
        plan = UnifiedPlan()
        rows = _parse_ascii_table(serialized)
        previous: PlanNode = None
        for row in rows:
            access_type = row.get("type", "")
            table = row.get("table", "")
            if not table:
                continue
            operation_name = {
                "ALL": "Table scan",
                "index": "Index scan",
                "range": "Index range scan",
                "ref": "Index lookup",
                "eq_ref": "Single row index lookup",
                "const": "Constant row",
            }.get(access_type, "Table scan")
            node = self.make_node(operation_name)
            node.properties.append(self.property("table", table))
            if row.get("key"):
                node.properties.append(self.property("key", row["key"]))
            if row.get("rows"):
                node.properties.append(self.property("rows", row["rows"]))
            if row.get("Extra"):
                node.properties.append(self.property("Extra", row["Extra"]))
            if row.get("select_type"):
                node.properties.append(self.property("select_type", row["select_type"]))
            if plan.root is None:
                plan.root = node
            else:
                previous.children.append(node)
            previous = node
        if plan.root is None:
            raise ConversionError(self.dbms, "no table rows found in EXPLAIN output")
        return plan

    # ------------------------------------------------------------------ tree

    def _parse_tree(self, serialized: str) -> UnifiedPlan:
        plan = UnifiedPlan()
        stack: List[Tuple[int, PlanNode]] = []
        for raw_line in serialized.splitlines():
            match = _TREE_LINE.match(raw_line)
            if not match:
                continue
            depth = len(match.group("indent"))
            node = self.make_node(self._normalise_name(match.group("name")))
            if match.group("cost"):
                node.properties.append(self.property("cost", float(match.group("cost"))))
            if match.group("rows"):
                node.properties.append(self.property("rows", int(match.group("rows"))))
            while stack and stack[-1][0] >= depth:
                stack.pop()
            if stack:
                stack[-1][1].children.append(node)
            elif plan.root is None:
                plan.root = node
            stack.append((depth, node))
        if plan.root is None:
            raise ConversionError(self.dbms, "no plan found in tree output")
        return plan

    def _normalise_name(self, name: str) -> str:
        """Strip per-query details (table names, predicates) from an operator label."""
        cleaned = name.strip()
        for separator in (" on ", ": ", " using "):
            if separator in cleaned:
                cleaned = cleaned.split(separator)[0]
        return cleaned.strip()


def _parse_ascii_table(serialized: str) -> List[Dict[str, str]]:
    """Parse a MySQL-style ASCII table into a list of row dictionaries."""
    lines = [line for line in serialized.splitlines() if line.strip().startswith("|")]
    if not lines:
        return []
    header = [cell.strip() for cell in lines[0].strip().strip("|").split("|")]
    rows = []
    for line in lines[1:]:
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        if len(cells) == len(header):
            rows.append(dict(zip(header, cells)))
    return rows
