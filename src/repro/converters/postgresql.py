"""Converter for PostgreSQL serialized query plans (text and JSON formats)."""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.converters.base import PlanConverter, register_converter
from repro.core.model import PlanNode, UnifiedPlan
from repro.errors import ConversionError

_NODE_LINE = re.compile(
    r"^(?P<indent>\s*)(?:->\s+)?(?P<name>.+?)\s+\(cost=(?P<startup>[\d.]+)\.\.(?P<total>[\d.]+)"
    r"\s+rows=(?P<rows>\d+)\s+width=(?P<width>\d+)\)?"
)
_PLAN_PROPERTY_LINE = re.compile(r"^(?P<key>[A-Za-z ]+Time):\s*(?P<value>[\d.]+)\s*ms")
_ON_CLAUSE = re.compile(
    r"^(?P<operator>.+?)\s+(?:using\s+(?P<index>\S+)\s+)?on\s+(?P<relation>\S+)(?:\s+(?P<alias>\S+))?$"
)

#: Keys of the JSON format that are handled structurally rather than as properties.
_STRUCTURAL_KEYS = {"Node Type", "Plans"}


@register_converter
class PostgreSQLConverter(PlanConverter):
    """Parses PostgreSQL ``EXPLAIN`` output (text and JSON)."""

    dbms = "postgresql"
    aliases = ("postgres", "pg")
    formats = ("text", "json")

    # ------------------------------------------------------------------ JSON

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        if format == "json":
            return self._parse_json(serialized)
        return self._parse_text(serialized)

    def _parse_json(self, serialized: str) -> UnifiedPlan:
        try:
            document = json.loads(serialized)
        except json.JSONDecodeError as exc:
            raise ConversionError(self.dbms, f"invalid JSON plan: {exc}") from exc
        if not isinstance(document, list) or not document:
            raise ConversionError(self.dbms, "expected a non-empty JSON array")
        entry = document[0]
        plan = UnifiedPlan()
        if "Plan" in entry:
            plan.root = self._node_from_json(entry["Plan"])
        for key, value in entry.items():
            if key == "Plan":
                continue
            plan.properties.append(self.property(key, value))
        return plan

    def _node_from_json(self, data: Dict[str, Any]) -> PlanNode:
        node = self.make_node(str(data.get("Node Type", "Unknown")))
        for key, value in data.items():
            if key in _STRUCTURAL_KEYS:
                continue
            node.properties.append(self.property(key, value))
        for child in data.get("Plans", []):
            node.children.append(self._node_from_json(child))
        return node

    # ------------------------------------------------------------------ text

    def _parse_text(self, serialized: str) -> UnifiedPlan:
        plan = UnifiedPlan()
        stack: List[Tuple[int, PlanNode]] = []
        for raw_line in serialized.splitlines():
            if not raw_line.strip():
                continue
            plan_property = _PLAN_PROPERTY_LINE.match(raw_line.strip())
            if plan_property:
                plan.properties.append(
                    self.property(plan_property.group("key"), float(plan_property.group("value")))
                )
                continue
            node_match = _NODE_LINE.match(raw_line)
            if node_match and "cost=" in raw_line:
                depth = len(node_match.group("indent"))
                name, extra_properties = self._split_headline(node_match.group("name"))
                node = self.make_node(name)
                node.properties.append(self.property("Startup Cost", float(node_match.group("startup"))))
                node.properties.append(self.property("Total Cost", float(node_match.group("total"))))
                node.properties.append(self.property("Plan Rows", int(node_match.group("rows"))))
                node.properties.append(self.property("Plan Width", int(node_match.group("width"))))
                for key, value in extra_properties:
                    node.properties.append(self.property(key, value))
                while stack and stack[-1][0] >= depth:
                    stack.pop()
                if stack:
                    stack[-1][1].children.append(node)
                elif plan.root is None:
                    plan.root = node
                stack.append((depth, node))
                continue
            # Otherwise it is an operation-associated property line.
            stripped = raw_line.strip()
            if ":" in stripped and stack:
                key, _, value = stripped.partition(":")
                stack[-1][1].properties.append(self.property(key.strip(), value.strip()))
        if plan.root is None and not plan.properties:
            raise ConversionError(self.dbms, "no plan found in text output")
        return plan

    def _split_headline(self, headline: str) -> Tuple[str, List[Tuple[str, object]]]:
        """Split ``Index Scan using i0 on t0 t`` into the operator and properties."""
        extra: List[Tuple[str, object]] = []
        name = headline.strip()
        # Strip "(actual time=..)" fragments that follow the cost parenthesis.
        name = name.split("  (")[0].strip()
        if " on " in name:
            match = _ON_CLAUSE.match(name)
            if match:
                name = match.group("operator").strip()
                if match.group("index"):
                    extra.append(("Index Name", match.group("index")))
                extra.append(("Relation Name", match.group("relation")))
                if match.group("alias"):
                    extra.append(("Alias", match.group("alias")))
        if name.startswith("Parallel "):
            extra.append(("Parallel Aware", True))
            name = name[len("Parallel ") :]
        return name, extra
