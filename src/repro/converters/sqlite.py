"""Converter for SQLite ``EXPLAIN QUERY PLAN`` output (text format only)."""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.converters.base import PlanConverter, register_converter
from repro.core.model import PlanNode, UnifiedPlan
from repro.errors import ConversionError

_LINE = re.compile(r"^(?P<prefix>[\s|`]*)(?:[|`]--)(?P<name>.+)$")
_SEARCH = re.compile(
    r"^SEARCH\s+(?P<table>\S+)\s+USING\s+(?P<covering>AUTOMATIC\s+COVERING\s+INDEX|COVERING\s+INDEX|INDEX)\s*"
    r"(?P<index>\S+)?\s*(?:\((?P<condition>.*)\))?$",
    re.IGNORECASE,
)
_SCAN = re.compile(r"^SCAN\s+(?P<table>\S+)$", re.IGNORECASE)


@register_converter
class SQLiteConverter(PlanConverter):
    """Parses SQLite's compact textual query plans."""

    dbms = "sqlite"
    aliases = ("sqlite3",)
    formats = ("text",)

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        plan = UnifiedPlan()
        stack: List[Tuple[int, PlanNode]] = []
        for raw_line in serialized.splitlines():
            if not raw_line.strip() or raw_line.strip() == "QUERY PLAN":
                continue
            match = _LINE.match(raw_line)
            if match:
                depth = self._depth(match.group("prefix"))
                name = match.group("name").strip()
            else:
                depth = 0
                name = raw_line.strip()
            node = self._node_for(name)
            while stack and stack[-1][0] >= depth:
                stack.pop()
            if stack:
                stack[-1][1].children.append(node)
            elif plan.root is None:
                plan.root = node
            else:
                # Multiple top-level steps: attach to the root to keep a tree.
                plan.root.children.append(node)
            stack.append((depth, node))
        if plan.root is None:
            raise ConversionError(self.dbms, "no query plan steps found")
        return plan

    def _depth(self, prefix: str) -> int:
        # Each nesting level adds three characters ("|  " or "   ").
        return len(prefix) // 3

    def _node_for(self, text: str) -> PlanNode:
        search = _SEARCH.match(text)
        if search:
            covering = "COVERING" in search.group("covering").upper()
            name = "SEARCH USING COVERING INDEX" if covering else "SEARCH USING INDEX"
            node = self.make_node(name)
            node.properties.append(self.property("table", search.group("table")))
            if search.group("index"):
                node.properties.append(self.property("index", search.group("index")))
            if search.group("condition"):
                node.properties.append(self.property("condition", search.group("condition")))
            return node
        scan = _SCAN.match(text)
        if scan:
            node = self.make_node("SCAN")
            node.properties.append(self.property("table", scan.group("table")))
            return node
        # Keep combinator / temp-btree steps verbatim (they are operation names).
        return self.make_node(text.split("(")[0].strip())
