"""Converters from DBMS-specific serialized query plans to the unified representation.

All converters register through the :class:`ConverterHub`; :func:`default_hub`
returns the shared hub whose ``(dbms, format, source-hash)`` LRU cache backs
the ingestion pipeline (:mod:`repro.pipeline`).
"""

from repro.converters.base import (
    ConverterHub,
    PlanConverter,
    available_converters,
    converter_for,
    default_hub,
    register_converter,
    source_hash,
)
from repro.converters.influxdb import InfluxDBConverter
from repro.converters.mongodb import MongoDBConverter
from repro.converters.mysql import MySQLConverter
from repro.converters.neo4j import Neo4jConverter
from repro.converters.postgresql import PostgreSQLConverter
from repro.converters.sparksql import SparkSQLConverter
from repro.converters.sqlite import SQLiteConverter
from repro.converters.sqlserver import SQLServerConverter
from repro.converters.tidb import TiDBConverter

__all__ = [
    "ConverterHub",
    "PlanConverter",
    "converter_for",
    "available_converters",
    "default_hub",
    "register_converter",
    "source_hash",
    "PostgreSQLConverter",
    "MySQLConverter",
    "TiDBConverter",
    "SQLiteConverter",
    "SQLServerConverter",
    "SparkSQLConverter",
    "MongoDBConverter",
    "Neo4jConverter",
    "InfluxDBConverter",
]
