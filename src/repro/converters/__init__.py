"""Converters from DBMS-specific serialized query plans to the unified representation."""

from repro.converters.base import (
    PlanConverter,
    available_converters,
    converter_for,
    register_converter,
)
from repro.converters.influxdb import InfluxDBConverter
from repro.converters.mongodb import MongoDBConverter
from repro.converters.mysql import MySQLConverter
from repro.converters.neo4j import Neo4jConverter
from repro.converters.postgresql import PostgreSQLConverter
from repro.converters.sparksql import SparkSQLConverter
from repro.converters.sqlite import SQLiteConverter
from repro.converters.sqlserver import SQLServerConverter
from repro.converters.tidb import TiDBConverter

__all__ = [
    "PlanConverter",
    "converter_for",
    "available_converters",
    "register_converter",
    "PostgreSQLConverter",
    "MySQLConverter",
    "TiDBConverter",
    "SQLiteConverter",
    "SQLServerConverter",
    "SparkSQLConverter",
    "MongoDBConverter",
    "Neo4jConverter",
    "InfluxDBConverter",
]
