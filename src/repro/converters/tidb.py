"""Converter for TiDB serialized query plans (tabular, text, and JSON formats).

TiDB operator names carry auto-generated numeric suffixes (``HashJoin_9``);
the converter strips them when resolving the unified operation name and keeps
the original identifier as a Status property.  Failing to strip these suffixes
is exactly the implementation bug the paper found in QPG's original
DBMS-specific TiDB parser.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Tuple

from repro.converters.base import PlanConverter, register_converter
from repro.core.model import PlanNode, UnifiedPlan
from repro.errors import ConversionError

_SUFFIX = re.compile(r"_\d+$")
_TREE_PREFIX = re.compile(r"^(?P<prefix>(?:[\s│|]*)(?:└─|├─)?)(?P<name>\S.*)$")


@register_converter
class TiDBConverter(PlanConverter):
    """Parses TiDB ``EXPLAIN`` output (table, text tree, JSON)."""

    dbms = "tidb"
    aliases = ()  # no alias in common use
    formats = ("table", "text", "json")

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        if format == "json":
            return self._parse_json(serialized)
        return self._parse_table_or_text(serialized, with_columns=(format == "table"))

    def _strip_suffix(self, name: str) -> Tuple[str, str]:
        return _SUFFIX.sub("", name), name

    def _make_tidb_node(self, raw_name: str) -> PlanNode:
        base_name, full_name = self._strip_suffix(raw_name.strip())
        node = self.make_node(base_name)
        if full_name != base_name:
            node.properties.append(self.property("operator id", full_name))
        return node

    # ------------------------------------------------------------------ JSON

    def _parse_json(self, serialized: str) -> UnifiedPlan:
        try:
            document = json.loads(serialized)
        except json.JSONDecodeError as exc:
            raise ConversionError(self.dbms, f"invalid JSON plan: {exc}") from exc
        if isinstance(document, list):
            document = document[0] if document else {}
        plan = UnifiedPlan()
        if document:
            plan.root = self._node_from_json(document)
        return plan

    def _node_from_json(self, data: Dict[str, Any]) -> PlanNode:
        node = self._make_tidb_node(str(data.get("id", "Unknown")))
        for key, value in data.items():
            if key in {"id", "subOperators"}:
                continue
            node.properties.append(self.property(key, value))
        for child in data.get("subOperators", []):
            node.children.append(self._node_from_json(child))
        return node

    # ------------------------------------------------------------------ table / text

    def _parse_table_or_text(self, serialized: str, with_columns: bool) -> UnifiedPlan:
        plan = UnifiedPlan()
        stack: List[Tuple[int, PlanNode]] = []
        for raw_line in serialized.splitlines():
            line = raw_line
            columns: Dict[str, str] = {}
            if line.strip().startswith("+") or not line.strip():
                continue
            if with_columns and line.strip().startswith("|"):
                cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
                if not cells or cells[0] in ("id", ""):
                    continue
                line = cells[0]
                if len(cells) >= 5:
                    columns = {
                        "estRows": cells[1],
                        "task": cells[2],
                        "access object": cells[3],
                        "operator info": cells[4],
                    }
            match = _TREE_PREFIX.match(line)
            if not match:
                continue
            prefix = match.group("prefix")
            name = match.group("name").strip()
            if not name or name == "id":
                continue
            depth = 0 if "└─" not in prefix and "├─" not in prefix else (
                (len(prefix.replace("└─", "").replace("├─", "")) // 2) + 1
            )
            node = self._make_tidb_node(name)
            for key, value in columns.items():
                if value:
                    node.properties.append(self.property(key, value))
            while stack and stack[-1][0] >= depth:
                stack.pop()
            if stack:
                stack[-1][1].children.append(node)
            elif plan.root is None:
                plan.root = node
            stack.append((depth, node))
        if plan.root is None:
            raise ConversionError(self.dbms, "no plan rows found in EXPLAIN output")
        return plan
