"""Converter for InfluxDB ``EXPLAIN`` output (text format).

InfluxDB plans contain no operations — only plan-associated properties — so
the resulting unified plan has no tree, exactly the case the grammar's
optional ``tree`` production exists for.
"""

from __future__ import annotations

from repro.converters.base import PlanConverter, register_converter
from repro.core.model import UnifiedPlan
from repro.errors import ConversionError


@register_converter
class InfluxDBConverter(PlanConverter):
    """Parses InfluxDB's property-list query plans."""

    dbms = "influxdb"
    aliases = ("influx",)
    formats = ("text",)

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        plan = UnifiedPlan()
        for line in serialized.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith(("QUERY PLAN", "---")):
                continue
            if ":" not in stripped:
                continue
            key, _, value = stripped.partition(":")
            plan.properties.append(self.property(key.strip(), value.strip()))
        if not plan.properties:
            raise ConversionError(self.dbms, "no plan properties found")
        return plan
