"""Converter for Neo4j execution plans (JSON and textual table formats)."""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List

from repro.converters.base import PlanConverter, register_converter
from repro.core.model import PlanNode, UnifiedPlan
from repro.errors import ConversionError

_TABLE_ROW = re.compile(r"^\|\s*\+(?P<operator>[A-Za-z()@ ]+?)\s*\|\s*(?P<details>.*?)\s*\|\s*(?P<rows>\d+)\s*\|")
_SUMMARY = re.compile(
    r"Total database accesses:\s*(?P<accesses>\d+),\s*total allocated memory:\s*(?P<memory>\d+)"
)


@register_converter
class Neo4jConverter(PlanConverter):
    """Parses Neo4j plan output into the unified representation."""

    dbms = "neo4j"
    aliases = ("cypher",)
    formats = ("json", "text")

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        if format == "json":
            return self._parse_json(serialized)
        return self._parse_text(serialized)

    def _chain(self, operators: List[Dict[str, Any]]) -> PlanNode:
        """Neo4j prints the plan root-first; rebuild the chain as a tree."""
        root: PlanNode = None
        current: PlanNode = None
        for operator in operators:
            node = self.make_node(str(operator.get("Operator", "Unknown")))
            for key, value in operator.items():
                if key == "Operator":
                    continue
                node.properties.append(self.property(key, value))
            if root is None:
                root = node
            else:
                current.children.append(node)
            current = node
        return root

    def _parse_json(self, serialized: str) -> UnifiedPlan:
        try:
            document = json.loads(serialized)
        except json.JSONDecodeError as exc:
            raise ConversionError(self.dbms, f"invalid plan JSON: {exc}") from exc
        operators = document.get("plan", [])
        if not operators:
            raise ConversionError(self.dbms, "plan document has no operators")
        plan = UnifiedPlan()
        plan.root = self._chain(operators)
        for key, value in document.get("summary", {}).items():
            plan.properties.append(self.property(key, value))
        return plan

    def _parse_text(self, serialized: str) -> UnifiedPlan:
        operators: List[Dict[str, Any]] = []
        plan = UnifiedPlan()
        for line in serialized.splitlines():
            row = _TABLE_ROW.match(line.strip())
            if row:
                operators.append(
                    {
                        "Operator": row.group("operator").strip(),
                        "Details": row.group("details").strip(),
                        "EstimatedRows": int(row.group("rows")),
                    }
                )
                continue
            summary = _SUMMARY.search(line)
            if summary:
                plan.properties.append(
                    self.property("Total database accesses", int(summary.group("accesses")))
                )
                plan.properties.append(
                    self.property("Total allocated memory", int(summary.group("memory")))
                )
            elif line.startswith("Planner "):
                plan.properties.append(self.property("Planner", line.split(" ", 1)[1]))
            elif line.startswith("Runtime version "):
                plan.properties.append(
                    self.property("Runtime version", line.split("Runtime version ", 1)[1])
                )
        if not operators:
            raise ConversionError(self.dbms, "no operators found in plan table")
        plan.root = self._chain(operators)
        return plan
