"""Converter for SQL Server showplan output (XML, text, and tabular formats)."""

from __future__ import annotations

import re
from typing import List, Tuple
from xml.etree import ElementTree

from repro.converters.base import PlanConverter, register_converter
from repro.core.model import PlanNode, UnifiedPlan
from repro.errors import ConversionError

_TEXT_LINE = re.compile(r"^(?P<indent>\s*)(?:\|--)?(?P<name>[A-Za-z ]+)(?:\((?P<details>.*)\))?\s*$")


@register_converter
class SQLServerConverter(PlanConverter):
    """Parses SQL Server SHOWPLAN XML and SHOWPLAN_TEXT-style output."""

    dbms = "sqlserver"
    aliases = ("mssql", "sql server")
    formats = ("xml", "text", "table")

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        if format == "xml":
            return self._parse_xml(serialized)
        if format == "table":
            return self._parse_table(serialized)
        return self._parse_text(serialized)

    # ------------------------------------------------------------------ XML

    def _parse_xml(self, serialized: str) -> UnifiedPlan:
        try:
            root = ElementTree.fromstring(serialized)
        except ElementTree.ParseError as exc:
            raise ConversionError(self.dbms, f"invalid showplan XML: {exc}") from exc
        rel_ops = [
            element for element in root.iter() if element.tag.split("}")[-1] == "RelOp"
        ]
        plan = UnifiedPlan()
        top_level = self._top_level_relops(root)
        if not top_level:
            raise ConversionError(self.dbms, "no RelOp elements found")
        plan.root = self._node_from_element(top_level[0])
        return plan

    def _top_level_relops(self, root) -> List:
        result = []

        def visit(element, inside_relop: bool) -> None:
            tag = element.tag.split("}")[-1]
            if tag == "RelOp":
                if not inside_relop:
                    result.append(element)
                inside_relop = True
            for child in element:
                visit(child, inside_relop)

        visit(root, False)
        return result

    def _node_from_element(self, element) -> PlanNode:
        node = self.make_node(element.get("PhysicalOp", "Unknown"))
        for key, value in element.attrib.items():
            if key == "PhysicalOp":
                continue
            node.properties.append(self.property(key, value))
        for child in element:
            if child.tag.split("}")[-1] == "RelOp":
                node.children.append(self._node_from_element(child))
        return node

    # ------------------------------------------------------------------ text

    def _parse_text(self, serialized: str) -> UnifiedPlan:
        plan = UnifiedPlan()
        stack: List[Tuple[int, PlanNode]] = []
        for raw_line in serialized.splitlines():
            if not raw_line.strip():
                continue
            stripped = raw_line.lstrip()
            depth = len(raw_line) - len(stripped)
            name = stripped[3:] if stripped.startswith("|--") else stripped
            operator = name.split("(")[0].strip()
            details = name[len(operator) :].strip().strip("()")
            node = self.make_node(operator)
            if details:
                node.properties.append(self.property("Details", details))
            while stack and stack[-1][0] >= depth:
                stack.pop()
            if stack:
                stack[-1][1].children.append(node)
            elif plan.root is None:
                plan.root = node
            stack.append((depth, node))
        if plan.root is None:
            raise ConversionError(self.dbms, "no plan found in showplan text")
        return plan

    # ------------------------------------------------------------------ table

    def _parse_table(self, serialized: str) -> UnifiedPlan:
        lines = [line for line in serialized.splitlines() if line.strip().startswith("|")]
        if not lines:
            raise ConversionError(self.dbms, "no showplan rows found")
        header = [cell.strip() for cell in lines[0].strip().strip("|").split("|")]
        nodes = {}
        plan = UnifiedPlan()
        for line in lines[1:]:
            cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
            if len(cells) != len(header):
                continue
            row = dict(zip(header, cells))
            node = self.make_node(row.get("PhysicalOp", "Unknown"))
            for key in ("LogicalOp", "EstimateRows", "TotalSubtreeCost"):
                if row.get(key):
                    node.properties.append(self.property(key, row[key]))
            node_id = row.get("NodeId", "")
            parent_id = row.get("Parent", "")
            nodes[node_id] = node
            if parent_id and parent_id in nodes:
                nodes[parent_id].children.append(node)
            elif plan.root is None:
                plan.root = node
        if plan.root is None:
            raise ConversionError(self.dbms, "no plan rows parsed")
        return plan
