"""Converter for MongoDB ``explain()`` documents (JSON format)."""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.converters.base import PlanConverter, register_converter
from repro.core.model import PlanNode, UnifiedPlan
from repro.errors import ConversionError


@register_converter
class MongoDBConverter(PlanConverter):
    """Parses MongoDB explain documents into the unified representation."""

    dbms = "mongodb"
    aliases = ("mongo",)
    formats = ("json",)

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        try:
            document = json.loads(serialized)
        except json.JSONDecodeError as exc:
            raise ConversionError(self.dbms, f"invalid explain JSON: {exc}") from exc
        planner = document.get("queryPlanner", {})
        winning = planner.get("winningPlan")
        if winning is None:
            raise ConversionError(self.dbms, "explain document has no winningPlan")
        plan = UnifiedPlan()
        plan.root = self._node_from_stage(winning)
        if "namespace" in planner:
            plan.properties.append(self.property("namespace", planner["namespace"]))
        for key, value in document.get("executionStats", {}).items():
            if isinstance(value, (int, float, str, bool)):
                plan.properties.append(self.property(key, value))
        server = document.get("serverInfo", {})
        if "version" in server:
            plan.properties.append(self.property("version", server["version"]))
        return plan

    def _node_from_stage(self, stage: Dict[str, Any]) -> PlanNode:
        node = self.make_node(str(stage.get("stage", "UNKNOWN")))
        for key, value in stage.items():
            if key in {"stage", "inputStage", "inputStages"}:
                continue
            if isinstance(value, (dict, list)):
                value = json.dumps(value, sort_keys=True, default=str)
            node.properties.append(self.property(key, value))
        if "inputStage" in stage:
            node.children.append(self._node_from_stage(stage["inputStage"]))
        for child in stage.get("inputStages", []):
            node.children.append(self._node_from_stage(child))
        return node
