"""Converter base class and registry.

A *converter* parses a DBMS-specific serialized query plan (the raw text or
JSON that ``EXPLAIN`` returned) into the unified representation.  The paper
implemented five such converters of roughly 200 lines each; this package
provides one for every studied DBMS.  Converters rely on the
:class:`~repro.core.naming.NameRegistry` populated from the case-study
catalogues, so an unknown operation or property never fails the conversion —
it falls back to a generic category, which is what keeps applications
forward-compatible (Section IV-B).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.core.categories import OperationCategory, PropertyCategory
from repro.core.model import Operation, PlanNode, Property, UnifiedPlan
from repro.core.naming import NameRegistry, default_registry
from repro.errors import ConversionError


class PlanConverter:
    """Base class of the per-DBMS converters."""

    #: Lower-case DBMS name this converter handles.
    dbms: str = "abstract"
    #: Native formats this converter can parse.
    formats: tuple = ("text",)

    def __init__(self, registry: Optional[NameRegistry] = None) -> None:
        self.registry = registry or default_registry()

    # -- API -----------------------------------------------------------------------

    def convert(self, serialized: str, format: Optional[str] = None) -> UnifiedPlan:
        """Convert a serialized plan into a :class:`UnifiedPlan`."""
        chosen = (format or self.formats[0]).lower()
        if chosen not in self.formats:
            raise ConversionError(
                self.dbms, f"format {chosen!r} not supported; available: {self.formats}"
            )
        plan = self._parse(serialized, chosen)
        plan.source_dbms = self.dbms
        return plan

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------------

    def operation(self, native_name: str) -> Operation:
        """Map a native operation name to a unified operation."""
        category, unified = self.registry.resolve_operation(self.dbms, native_name)
        return Operation(category, unified)

    def make_node(self, native_name: str) -> PlanNode:
        """Create a plan node for a native operation name."""
        return PlanNode(self.operation(native_name))

    def property(self, native_name: str, value: object) -> Property:
        """Map a native property name/value to a unified property."""
        category, unified = self.registry.resolve_property(self.dbms, native_name)
        return Property(category, unified, _coerce_value(value))


def _coerce_value(value: object) -> object:
    """Coerce arbitrary parsed values into the grammar's value domain."""
    if value is None or isinstance(value, (bool, int, float)):
        return value
    text = str(value)
    try:
        if text.strip() and text.strip().lstrip("-").replace(".", "", 1).isdigit():
            return float(text) if "." in text else int(text)
    except ValueError:
        pass
    return text


_CONVERTERS: Dict[str, Type[PlanConverter]] = {}


def register_converter(converter_class: Type[PlanConverter]) -> Type[PlanConverter]:
    """Class decorator registering a converter for its DBMS."""
    _CONVERTERS[converter_class.dbms] = converter_class
    return converter_class


def converter_for(dbms: str, registry: Optional[NameRegistry] = None) -> PlanConverter:
    """Instantiate the converter for *dbms*."""
    try:
        return _CONVERTERS[dbms.lower()](registry)
    except KeyError as exc:
        raise ConversionError(dbms, f"no converter registered; available: {sorted(_CONVERTERS)}") from exc


def available_converters() -> List[str]:
    """Return the DBMS names that have registered converters."""
    return sorted(_CONVERTERS)
