"""Converter base class and the registry-driven conversion hub.

A *converter* parses a DBMS-specific serialized query plan (the raw text or
JSON that ``EXPLAIN`` returned) into the unified representation.  The paper
implemented five such converters of roughly 200 lines each; this package
provides one for every studied DBMS.  Converters rely on the
:class:`~repro.core.naming.NameRegistry` populated from the case-study
catalogues, so an unknown operation or property never fails the conversion —
it falls back to a generic category, which is what keeps applications
forward-compatible (Section IV-B).

The :class:`ConverterHub` is the registry the dialect converters register
through (via :func:`register_converter`) and the single entry point the
pipeline layer converts through.  It resolves DBMS names and aliases,
instantiates one converter per DBMS lazily, and memoises conversions in an
LRU cache keyed by ``(dbms, format, source-hash)`` — repeated ingestion of
identical raw plans parses once and returns the cached
:class:`~repro.core.model.UnifiedPlan`.  Cached plans are shared objects:
callers must treat them as frozen (the fingerprint caches rely on this), or
ask for ``copy_on_hit=True``.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional, Tuple, Type

from repro.core.caching import CacheStats, LRUCache
from repro.core.categories import OperationCategory, PropertyCategory
from repro.core.model import Operation, PlanNode, Property, UnifiedPlan
from repro.core.naming import NameRegistry, default_registry
from repro.errors import ConversionError


class PlanConverter:
    """Base class of the per-DBMS converters."""

    #: Lower-case DBMS name this converter handles.
    dbms: str = "abstract"
    #: Alternative names the hub resolves to this converter.
    aliases: Tuple[str, ...] = ()
    #: Native formats this converter can parse.
    formats: tuple = ("text",)

    def __init__(self, registry: Optional[NameRegistry] = None) -> None:
        self.registry = registry or default_registry()

    # -- API -----------------------------------------------------------------------

    def convert(self, serialized: str, format: Optional[str] = None) -> UnifiedPlan:
        """Convert a serialized plan into a :class:`UnifiedPlan`."""
        chosen = (format or self.formats[0]).lower()
        if chosen not in self.formats:
            raise ConversionError(
                self.dbms, f"format {chosen!r} not supported; available: {self.formats}"
            )
        plan = self._parse(serialized, chosen)
        plan.source_dbms = self.dbms
        return plan

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------------

    def operation(self, native_name: str) -> Operation:
        """Map a native operation name to a unified operation."""
        category, unified = self.registry.resolve_operation(self.dbms, native_name)
        return Operation(category, unified)

    def make_node(self, native_name: str) -> PlanNode:
        """Create a plan node for a native operation name."""
        return PlanNode(self.operation(native_name))

    def property(self, native_name: str, value: object) -> Property:
        """Map a native property name/value to a unified property."""
        category, unified = self.registry.resolve_property(self.dbms, native_name)
        return Property(category, unified, _coerce_value(value))


def _coerce_value(value: object) -> object:
    """Coerce arbitrary parsed values into the grammar's value domain."""
    if value is None or isinstance(value, (bool, int, float)):
        return value
    text = str(value)
    try:
        if text.strip() and text.strip().lstrip("-").replace(".", "", 1).isdigit():
            return float(text) if "." in text else int(text)
    except ValueError:
        pass
    return text


def source_hash(serialized: str) -> str:
    """Hash a raw serialized plan for use as a conversion-cache key."""
    return hashlib.sha1(serialized.encode("utf-8")).hexdigest()


class ConverterHub:
    """Registry, instance pool, and conversion cache for all converters.

    The hub is the conversion pipeline's converter layer: dialect converter
    classes register into a shared class registry (the
    :func:`register_converter` decorator), and each hub instance lazily
    instantiates one converter per DBMS against its name registry and caches
    conversions by ``(dbms, format, source-hash)``.  All methods are
    thread-safe, so one hub serves the ingestion service's worker pool.
    """

    #: Class-level registry shared by every hub, populated at import time by
    #: the :func:`register_converter` decorator on the dialect converters.
    _classes: Dict[str, Type[PlanConverter]] = {}
    _alias_names: Dict[str, str] = {}

    def __init__(
        self,
        registry: Optional[NameRegistry] = None,
        cache_size: int = 1024,
        copy_on_hit: bool = False,
    ) -> None:
        self._registry = registry
        self._instances: Dict[str, PlanConverter] = {}
        self._cache = LRUCache(maxsize=cache_size)
        self._lock = threading.Lock()
        #: When true, cache hits return an independent deep copy instead of
        #: the shared cached plan (for callers that mutate plans in place).
        self.copy_on_hit = copy_on_hit

    # -- registration ----------------------------------------------------------

    @classmethod
    def register(cls, converter_class: Type[PlanConverter]) -> Type[PlanConverter]:
        """Register *converter_class* (and its aliases) for every hub."""
        name = converter_class.dbms.strip().lower()
        cls._classes[name] = converter_class
        # A converter registered under a name another converter aliased
        # must be reachable under that name: the real name wins.
        cls._alias_names.pop(name, None)
        for alias in getattr(converter_class, "aliases", ()):
            alias_key = alias.strip().lower()
            if alias_key not in cls._classes:
                cls._alias_names[alias_key] = name
        return converter_class

    @classmethod
    def resolve_name(cls, dbms: str) -> str:
        """Resolve *dbms* (canonical name or alias) to the canonical name.

        Registered converter names take precedence over aliases, so an
        extension converter named e.g. ``spark`` is reachable even though a
        built-in declares that alias.
        """
        key = dbms.strip().lower()
        if key not in cls._classes:
            key = cls._alias_names.get(key, key)
        if key not in cls._classes:
            raise ConversionError(
                dbms, f"no converter registered; available: {sorted(cls._classes)}"
            )
        return key

    @classmethod
    def dbms_names(cls) -> List[str]:
        """Canonical DBMS names with a registered converter."""
        return sorted(cls._classes)

    # -- conversion ------------------------------------------------------------

    def converter(self, dbms: str) -> PlanConverter:
        """Return the hub's (shared) converter instance for *dbms*."""
        name = self.resolve_name(dbms)
        with self._lock:
            instance = self._instances.get(name)
            if instance is None:
                instance = self._classes[name](self._registry)
                self._instances[name] = instance
            return instance

    def convert(
        self,
        dbms: str,
        serialized: str,
        format: Optional[str] = None,
        use_cache: bool = True,
    ) -> UnifiedPlan:
        """Convert *serialized* through the cache.

        The cache key is ``(canonical dbms, resolved format, sha1(source))``,
        so syntactically identical raw plans are parsed exactly once per hub
        regardless of how often they are ingested.
        """
        if not use_cache:
            converter = self.converter(dbms)
            chosen = (format or converter.formats[0]).lower()
            return converter.convert(serialized, chosen)
        return self.convert_traced(dbms, serialized, format)[0]

    def convert_traced(
        self,
        dbms: str,
        serialized: str,
        format: Optional[str] = None,
        key: Optional[Tuple[str, str, str]] = None,
    ) -> Tuple[UnifiedPlan, bool]:
        """Convert through the cache, reporting whether a parse actually ran.

        The hit-or-parse decision is made on the single cache lookup, so the
        returned flag is accurate even when worker threads share the hub
        (a separate probe-then-convert sequence could misreport under
        concurrent eviction).  Callers that already computed
        :meth:`cache_key` may pass it via *key* to skip re-hashing the
        source text.
        """
        converter = self.converter(dbms)
        chosen = (format or converter.formats[0]).lower()
        if key is None:
            key = (converter.dbms, chosen, source_hash(serialized))
        plan = self._cache.get(key)
        if plan is not None:
            return (plan.copy() if self.copy_on_hit else plan), False
        plan = converter.convert(serialized, chosen)
        # Pre-compute the fingerprint while we hold the only reference, so
        # every consumer of the shared cached plan gets O(1) identity.
        plan.fingerprint()
        self._cache.put(key, plan)
        return plan, True

    def cache_key(
        self, dbms: str, serialized: str, format: Optional[str] = None
    ) -> Tuple[str, str, str]:
        """The conversion-cache key the hub would use for this source."""
        converter = self.converter(dbms)
        chosen = (format or converter.formats[0]).lower()
        return (converter.dbms, chosen, source_hash(serialized))

    def is_cached(
        self, dbms: str, serialized: str, format: Optional[str] = None
    ) -> bool:
        """Whether converting this source would be served from the cache.

        Does not count as a cache lookup in the statistics.
        """
        return self.cache_key(dbms, serialized, format) in self._cache

    def contains_key(self, key: Tuple[str, str, str]) -> bool:
        """Like :meth:`is_cached` for callers that already hold the key."""
        return key in self._cache

    def put_cached(self, key: Tuple[str, str, str], plan: UnifiedPlan) -> None:
        """Seed the cache with an externally produced conversion.

        The ingestion service's process-pool path parses in worker processes
        and hands the unpickled plans back here, so later batches hit the
        parent hub's cache exactly as if the parse had happened in-process.
        The plan's fingerprint is pre-computed, matching :meth:`convert_traced`.
        """
        plan.fingerprint()
        self._cache.put(key, plan)

    # -- introspection ---------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Live hit/miss/eviction counters of the conversion cache."""
        return self._cache.stats

    def cache_snapshot(self) -> CacheStats:
        """An independent copy of the current cache counters."""
        return self._cache.stats.snapshot()

    def cached_conversions(self) -> int:
        """Number of conversions currently held in the cache."""
        return len(self._cache)

    def clear_cache(self, reset_stats: bool = False) -> None:
        """Drop all cached conversions (and optionally the counters)."""
        self._cache.clear(reset_stats=reset_stats)


#: Lazily created hub shared by ``converter_for`` and the pipeline defaults.
_DEFAULT_HUB: Optional[ConverterHub] = None
_DEFAULT_HUB_LOCK = threading.Lock()


def default_hub() -> ConverterHub:
    """Return the process-wide default :class:`ConverterHub`."""
    global _DEFAULT_HUB
    with _DEFAULT_HUB_LOCK:
        if _DEFAULT_HUB is None:
            _DEFAULT_HUB = ConverterHub()
        return _DEFAULT_HUB


def register_converter(converter_class: Type[PlanConverter]) -> Type[PlanConverter]:
    """Class decorator registering a converter for its DBMS (and aliases)."""
    return ConverterHub.register(converter_class)


def converter_for(dbms: str, registry: Optional[NameRegistry] = None) -> PlanConverter:
    """Instantiate the converter for *dbms* (accepts registered aliases).

    With the default *registry* this returns the default hub's shared
    instance; passing an explicit registry constructs a fresh converter.
    """
    if registry is None:
        return default_hub().converter(dbms)
    name = ConverterHub.resolve_name(dbms)
    return ConverterHub._classes[name](registry)


def available_converters() -> List[str]:
    """Return the DBMS names that have registered converters."""
    return ConverterHub.dbms_names()
