"""Converter for SparkSQL textual physical plans (``== Physical Plan ==``)."""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.converters.base import PlanConverter, register_converter
from repro.core.model import PlanNode, UnifiedPlan
from repro.errors import ConversionError

_LINE = re.compile(r"^(?P<indent>\s*)(?:\+- )?(?:\*\(\d+\)\s+)?(?P<name>\S.*)$")


@register_converter
class SparkSQLConverter(PlanConverter):
    """Parses the textual ``EXPLAIN`` output of SparkSQL."""

    dbms = "sparksql"
    aliases = ("spark",)
    formats = ("text",)

    def _parse(self, serialized: str, format: str) -> UnifiedPlan:
        plan = UnifiedPlan()
        stack: List[Tuple[int, PlanNode]] = []
        for raw_line in serialized.splitlines():
            if not raw_line.strip() or raw_line.strip().startswith("=="):
                continue
            match = _LINE.match(raw_line)
            if not match:
                continue
            depth = len(match.group("indent"))
            full_name = match.group("name").strip()
            operator = self._operator_name(full_name)
            node = self.make_node(operator)
            details = full_name[len(operator) :].strip()
            if details:
                node.properties.append(self.property("details", details))
            while stack and stack[-1][0] >= depth:
                stack.pop()
            if stack:
                stack[-1][1].children.append(node)
            elif plan.root is None:
                plan.root = node
            stack.append((depth, node))
        if plan.root is None:
            raise ConversionError(self.dbms, "no physical plan found")
        return plan

    def _operator_name(self, text: str) -> str:
        """Extract the operator name from a plan line.

        ``HashAggregate(keys=[...], functions=[...])`` → ``HashAggregate``;
        ``Exchange hashpartitioning(c0, 200)`` → ``Exchange``;
        ``Scan ExistingRDD lineitem`` → ``Scan ExistingRDD``.
        """
        name = text.split("(")[0].strip()
        first_word = name.split(" ")[0]
        if first_word in {"Exchange", "Sort", "Filter", "Project", "Union", "Subquery"}:
            return first_word
        if name.startswith("Scan"):
            return "Scan ExistingRDD"
        if name.startswith("BroadcastHashJoin"):
            return "BroadcastHashJoin"
        if name.startswith("SortMergeJoin"):
            return "SortMergeJoin"
        if name.startswith("TakeOrderedAndProject"):
            return "TakeOrderedAndProject"
        return name
