"""Campaign-level parallelism: shard the rounds across a process pool.

A :class:`~repro.testing.campaign.TestingCampaign` is a sequence of
independent per-DBMS rounds: each round derives its generator seeds from
its *index* in the configured ``dbms_names`` list and starts its QPG
coverage walk from an empty per-round set (the per-round determinism
guarantee in :mod:`repro.testing.qpg`), so no round's behaviour depends on
which process runs it.  :class:`ShardedCampaign` exploits exactly that:

* The round index space is partitioned **round-robin** across ``shards``
  workers (:func:`shard_round_indexes`), so the DBMS list and the derived
  generator seed space are split without renumbering — shard *k* runs the
  rounds a serial campaign would have run at indexes ``k, k+shards, …``
  with byte-identical seeds.
* Each worker process runs a private :class:`TestingCampaign` — its own
  dialects, converter hub, and :class:`~repro.pipeline.CoverageStore` —
  over only its round indexes (``run(only_indexes=…)``), and ships the
  result plus the store's contents back as one picklable payload
  (:meth:`~repro.pipeline.coverage.CoverageStore.merge_payload`).
* The parent merges shard stores by exact set union and folds the
  per-round report payloads back together **in round-index order** before
  deduplication, so the merged coverage set *and* the Table V rows are
  byte-identical to the serial run's (tests/test_parallel_equivalence.py).
* With ``persist_to=`` every shard keeps a durable store under
  ``<root>/shard-NN`` using the PR-2 round-mark scheme, so a crashed or
  killed worker loses at most its in-flight round: re-running the sharded
  campaign (same configuration) resumes every shard from its marks and
  still merges to the serial-identical result.

Only conversion-economy *statistics* (``conversions`` /
``conversion_cache_hits``) are allowed to differ from the serial run: the
workers' private hubs cannot share first-conversion work across shards.
Everything semantically meaningful — coverage, ``unique_plans``, Table V,
query/pair counts — merges exactly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

from repro.engine import arrays
from repro.pipeline.coverage import CoverageStore
from repro.testing.bugs import fold_reports, report_from_payload
from repro.testing.campaign import CampaignResult, TestingCampaign

try:  # BrokenProcessPool location varies with Python version
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = OSError  # type: ignore[assignment,misc]

#: Errors that mean "this environment cannot run a process pool" (or the
#: pool died under us); the sharded campaign then runs its shards
#: sequentially in-process — same partitioning, same merge, same result.
_POOL_ERRORS = (BrokenProcessPool, OSError, PermissionError, RuntimeError)


def shard_round_indexes(total_rounds: int, shards: int) -> List[List[int]]:
    """Partition ``range(total_rounds)`` round-robin into *shards* lists.

    Empty shards are dropped, so the result has ``min(total_rounds,
    shards)`` entries; within each shard the indexes are ascending.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    partitions = [
        [index for index in range(total_rounds) if index % shards == shard]
        for shard in range(shards)
    ]
    return [partition for partition in partitions if partition]


def _run_shard(config: Dict[str, object]) -> CampaignResult:
    """Worker entry point: run one shard's rounds, return the result.

    Module-level (picklable by reference) so it works under every
    multiprocessing start method.  The parent's array-kernel toggle is
    re-applied explicitly rather than inherited from fork-time state, so
    numpy-on/off equivalence runs shard workers in the intended mode.
    """
    if arrays.numpy_available():
        arrays.set_numpy_enabled(bool(config.get("numpy_enabled", True)))
    campaign = TestingCampaign(**config["campaign"])  # type: ignore[arg-type]
    return campaign.run(
        only_indexes=config["indexes"], collect_store_payload=True
    )


class ShardedCampaign:
    """Run a testing campaign's rounds across a pool of worker processes.

    Constructor arguments mirror :class:`TestingCampaign` (they are passed
    through to the per-shard campaigns) plus the sharding knobs:

    ``shards``
        How many partitions the round index space splits into.
        ``shards=1`` degenerates to the serial campaign (one worker runs
        every round) — useful as the identity case of the equivalence
        matrix.
    ``parallel``
        ``False`` forces the shards to run sequentially in this process
        (no pool); the partitioning and merge are identical, so results
        do not change — this is also the automatic fallback wherever a
        process pool cannot be created.
    ``max_workers``
        Pool width; defaults to one worker per (non-empty) shard.

    ``persist_to=`` makes every shard durable under ``<root>/shard-NN``
    and the merged parent store under ``<root>/merged``; re-running the
    same configuration resumes each shard from its round marks.
    """

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        dbms_names: Optional[List[str]] = None,
        seed: int = 1,
        queries_per_dbms: int = 150,
        cert_pairs_per_dbms: int = 60,
        bound_checks_per_dbms: int = 20,
        shards: int = 2,
        persist_to: Optional[str] = None,
        max_rounds: Optional[int] = None,
        prepared_cache: bool = True,
        executor: str = "vectorized",
        decorrelate: bool = True,
        optimize_joins: bool = True,
        novelty: str = "exact",
        novelty_threshold: float = 0.05,
        capture_trigger_plans: bool = True,
        parallel: bool = True,
        max_workers: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.dbms_names = dbms_names or ["mysql", "postgresql", "tidb"]
        self.seed = seed
        self.queries_per_dbms = queries_per_dbms
        self.cert_pairs_per_dbms = cert_pairs_per_dbms
        self.bound_checks_per_dbms = bound_checks_per_dbms
        self.shards = shards
        self.persist_to = persist_to
        self.max_rounds = max_rounds
        self.prepared_cache = prepared_cache
        self.executor = executor
        self.decorrelate = decorrelate
        self.optimize_joins = optimize_joins
        #: Novelty mode / threshold / trigger-plan capture, passed through
        #: to every shard's campaign.  In similarity mode the parent folds
        #: the per-round index payloads into a merged sidecar index, just
        #: as it folds coverage payloads into the merged store.
        self.novelty = novelty
        self.novelty_threshold = novelty_threshold
        self.capture_trigger_plans = capture_trigger_plans
        self.parallel = parallel
        self.max_workers = max_workers
        #: Whether the last :meth:`run` actually used a process pool (False
        #: before any run, after the in-process fallback, or with
        #: ``parallel=False``).  Benchmarks gate speedup floors on this.
        self.pool_active = False

    # ------------------------------------------------------------------ plumbing

    def shard_dir(self, shard: int) -> Optional[str]:
        """The durable store directory for *shard* (None when in-memory)."""
        if self.persist_to is None:
            return None
        return os.path.join(self.persist_to, f"shard-{shard:02d}")

    def merged_dir(self) -> Optional[str]:
        """Where the merged parent store persists (None when in-memory)."""
        if self.persist_to is None:
            return None
        return os.path.join(self.persist_to, "merged")

    def _shard_configs(self) -> List[Dict[str, object]]:
        partitions = shard_round_indexes(len(self.dbms_names), self.shards)
        numpy_on = arrays.numpy_available() and arrays.numpy_enabled()
        configs: List[Dict[str, object]] = []
        for shard, indexes in enumerate(partitions):
            configs.append(
                {
                    "shard": shard,
                    "indexes": indexes,
                    "numpy_enabled": numpy_on,
                    "campaign": {
                        # The full dbms_names list, not the shard's subset:
                        # round labels and seeds derive from list positions,
                        # which must match the serial campaign's exactly.
                        "dbms_names": list(self.dbms_names),
                        "seed": self.seed,
                        "queries_per_dbms": self.queries_per_dbms,
                        "cert_pairs_per_dbms": self.cert_pairs_per_dbms,
                        "bound_checks_per_dbms": self.bound_checks_per_dbms,
                        "persist_to": self.shard_dir(shard),
                        "max_rounds": self.max_rounds,
                        "prepared_cache": self.prepared_cache,
                        "executor": self.executor,
                        "decorrelate": self.decorrelate,
                        "optimize_joins": self.optimize_joins,
                        "novelty": self.novelty,
                        "novelty_threshold": self.novelty_threshold,
                        "capture_trigger_plans": self.capture_trigger_plans,
                    },
                }
            )
        return configs

    def _run_shards(self, configs: List[Dict[str, object]]) -> List[CampaignResult]:
        self.pool_active = False
        if self.parallel and len(configs) > 1:
            try:
                results = self._run_shards_pooled(configs)
                self.pool_active = True
                return results
            except _POOL_ERRORS:
                # Restricted environment or a worker died taking the pool
                # with it.  Durable shards already checkpointed their
                # completed rounds, so the sequential retry resumes them;
                # in-memory shards simply re-run — rounds are
                # deterministic, the result is the same either way.
                pass
        return [_run_shard(config) for config in configs]

    def _run_shards_pooled(
        self, configs: List[Dict[str, object]]
    ) -> List[CampaignResult]:
        workers = self.max_workers or len(configs)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_shard, config) for config in configs]
            # Collect every shard before surfacing any failure, so the
            # successful workers' durable checkpoints are complete and a
            # re-run only repeats the failed shards' unfinished rounds.
            results: List[Optional[CampaignResult]] = []
            first_error: Optional[BaseException] = None
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as error:  # noqa: BLE001 - re-raised
                    results.append(None)
                    if first_error is None:
                        first_error = error
            if first_error is not None:
                raise first_error
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------ merge

    def _merged_store(self) -> CoverageStore:
        root = self.merged_dir()
        if root is None:
            return CoverageStore()
        # Re-opening an existing merged store and re-merging is safe:
        # the merge is exact set union, hence idempotent.
        return CoverageStore.open(root)

    def run(self) -> CampaignResult:
        """Run every shard and merge into one serial-identical result."""
        configs = self._shard_configs()
        shard_results = self._run_shards(configs)

        merged = CampaignResult()
        store = self._merged_store()
        merged_index = None
        if self.novelty == "similarity":
            from repro.similarity import PlanIndex

            # The merged sidecar index lives next to the merged store;
            # re-merging is safe for the same reason: first-wins set union
            # over content-derived vectors is idempotent.
            merged_index = PlanIndex(path=self.merged_dir())
        try:
            for result in shard_results:
                if result.store_payload is not None:
                    store.merge_payload(result.store_payload)
                merged.plan_fingerprints |= result.plan_fingerprints
                merged.rounds_completed += result.rounds_completed
                merged.rounds_skipped += result.rounds_skipped
                merged.conversions += result.conversions
                merged.conversion_cache_hits += result.conversion_cache_hits

            # Fold the per-round payloads back together in round-index
            # order — the serial campaign's accumulation order — so the
            # first-occurrence dedupe below keeps exactly the rows the
            # serial run keeps.
            rounds = sorted(
                (index, payload)
                for result in shard_results
                for index, payload in result.round_payloads
            )
            for index, payload in rounds:
                merged.queries_generated += payload.get("queries_generated", 0)
                merged.cert_pairs_checked += payload.get("cert_pairs_checked", 0)
                merged.bound_queries_checked += payload.get("bound_queries_checked", 0)
                merged.novelty_reward_total += payload.get("novelty_reward_total", 0.0)
                for row in payload.get("reports", []):
                    merged.reports.append(report_from_payload(row))
                if merged_index is not None and "index" in payload:
                    merged_index.merge_payload(payload["index"])
                merged.round_payloads.append((index, payload))

            merged.plan_fingerprints |= store.structural_fingerprints()
            merged.unique_plans = len(merged.plan_fingerprints)
            merged.reports = fold_reports(merged.reports)
            order = {
                name: position for position, name in enumerate(self.dbms_names)
            }
            merged.reports.sort(
                key=lambda report: (
                    order.get(report.dbms, 9),
                    report.found_by != "QPG",
                    report.bug_id,
                )
            )
            if store.path is not None:
                store.save()
            merged.store_payload = store.to_payload()
            if merged_index is not None:
                merged_index.flush()
                merged.index_payload = merged_index.to_payload()
        finally:
            if merged_index is not None:
                merged_index.close()
            store.close()
        return merged
