"""Multi-process campaign parallelism.

:class:`ShardedCampaign` partitions a testing campaign's rounds (the
generator seed space × DBMS list) across a process pool and merges the
shard results — coverage stores, Table V reports, counters — into a result
byte-identical to the serial :class:`~repro.testing.campaign.TestingCampaign`
run, including under resume/crash of individual workers.  Operator-level
(morsel) parallelism lives in :mod:`repro.engine.morsel`.
"""

from repro.parallel.campaign import ShardedCampaign, shard_round_indexes

__all__ = ["ShardedCampaign", "shard_round_indexes"]
