"""Scalar expression evaluation with SQL three-valued logic.

Rows flowing through the engine are dictionaries.  Columns produced by scans
are keyed ``"alias.column"``; columns produced by projections and aggregates
are keyed by their output name.  :func:`evaluate` resolves a
:class:`~repro.sqlparser.ast_nodes.ColumnRef` accordingly.

SQL's three-valued logic is honoured: comparisons involving ``NULL`` yield
``None`` (unknown), and ``AND`` / ``OR`` / ``NOT`` follow Kleene logic.  The
TLP test oracle depends on this behaviour to partition queries by
``p`` / ``NOT p`` / ``p IS NULL``.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine import arrays
from repro.errors import ExecutionError
from repro.sqlparser import ast_nodes as ast

Row = Dict[str, object]

#: Signature of the hook used to evaluate subqueries appearing in expressions.
SubqueryExecutor = Callable[[ast.SelectStatement, Row], List[Row]]


class EvaluationContext:
    """Carries the current row and the subquery-execution hook."""

    __slots__ = ("row", "subquery_executor")

    def __init__(
        self,
        row: Optional[Row] = None,
        subquery_executor: Optional[SubqueryExecutor] = None,
    ) -> None:
        self.row = row or {}
        self.subquery_executor = subquery_executor

    def with_row(self, row: Row) -> "EvaluationContext":
        """Return a context bound to *row* but sharing the subquery hook."""
        return EvaluationContext(row=row, subquery_executor=self.subquery_executor)


def resolve_column(row: Row, reference: ast.ColumnRef) -> object:
    """Resolve a column reference against a row dictionary."""
    if reference.table:
        qualified = f"{reference.table}.{reference.column}"
        if qualified in row:
            return row[qualified]
        lowered = qualified.lower()
        for key, value in row.items():
            if key.lower() == lowered:
                return value
        raise ExecutionError(f"unknown column {qualified!r}")
    if reference.column in row:
        return row[reference.column]
    suffix = "." + reference.column.lower()
    matches = [key for key in row if key.lower().endswith(suffix)]
    if len(matches) == 1:
        return row[matches[0]]
    if len(matches) > 1:
        # Ambiguous unqualified reference: prefer the first match in row order,
        # mirroring the permissive behaviour of several of the studied DBMSs.
        return row[matches[0]]
    lowered_column = reference.column.lower()
    for key, value in row.items():
        if key.lower() == lowered_column:
            return value
    raise ExecutionError(f"unknown column {reference.column!r}")


def _compare(operator: str, left: object, right: object) -> Optional[bool]:
    if left is None or right is None:
        return None
    try:
        if operator == "=":
            return left == right
        if operator == "<>":
            return left != right
        if isinstance(left, bool):
            left = int(left)
        if isinstance(right, bool):
            right = int(right)
        if isinstance(left, (int, float)) != isinstance(right, (int, float)):
            left, right = str(left), str(right)
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError:
        return None
    raise ExecutionError(f"unknown comparison operator {operator!r}")


def _arithmetic(operator: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if operator == "||":
        return str(left) + str(right)
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(
            f"arithmetic {operator!r} requires numeric operands, got {left!r}, {right!r}"
        )
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            return None
        result = left / right
        return result
    if operator == "%":
        if right == 0:
            return None
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {operator!r}")


def _logical_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _logical_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def _to_bool(value: object) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def _like(value: object, pattern: object) -> Optional[bool]:
    if value is None or pattern is None:
        return None
    regex = "^" + re.escape(str(pattern)).replace("%", ".*").replace("_", ".") + "$"
    return re.match(regex, str(value), flags=re.DOTALL) is not None


_SCALAR_FUNCTIONS: Dict[str, Callable[..., object]] = {}


def scalar_function(name: str) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Register a scalar function implementation under *name*."""

    def decorator(function: Callable[..., object]) -> Callable[..., object]:
        _SCALAR_FUNCTIONS[name.upper()] = function
        return function

    return decorator


@scalar_function("GREATEST")
def _fn_greatest(*arguments: object) -> object:
    values = [value for value in arguments if value is not None]
    return max(values) if values else None


@scalar_function("LEAST")
def _fn_least(*arguments: object) -> object:
    values = [value for value in arguments if value is not None]
    return min(values) if values else None


@scalar_function("ABS")
def _fn_abs(value: object = None) -> object:
    return None if value is None else abs(value)


@scalar_function("COALESCE")
def _fn_coalesce(*arguments: object) -> object:
    for value in arguments:
        if value is not None:
            return value
    return None


@scalar_function("NULLIF")
def _fn_nullif(left: object = None, right: object = None) -> object:
    return None if left == right else left


@scalar_function("LENGTH")
def _fn_length(value: object = None) -> object:
    return None if value is None else len(str(value))


@scalar_function("UPPER")
def _fn_upper(value: object = None) -> object:
    return None if value is None else str(value).upper()


@scalar_function("LOWER")
def _fn_lower(value: object = None) -> object:
    return None if value is None else str(value).lower()


@scalar_function("ROUND")
def _fn_round(value: object = None, digits: object = 0) -> object:
    if value is None:
        return None
    return round(value, int(digits or 0))


@scalar_function("MOD")
def _fn_mod(left: object = None, right: object = None) -> object:
    if left is None or right is None or right == 0:
        return None
    return left % right


@scalar_function("SUBSTRING")
def _fn_substring(value: object = None, start: object = 1, length: object = None) -> object:
    if value is None:
        return None
    text = str(value)
    begin = max(int(start or 1) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def evaluate(expression: ast.Expression, context: EvaluationContext) -> object:
    """Evaluate *expression* against the row in *context*."""
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.ColumnRef):
        return resolve_column(context.row, expression)
    if isinstance(expression, ast.Star):
        raise ExecutionError("'*' cannot be evaluated as a scalar expression")
    if isinstance(expression, ast.Parameter):
        raise ExecutionError("positional parameters are not bound")
    if isinstance(expression, ast.BinaryOp):
        operator = expression.operator.upper()
        if operator == "AND":
            return _logical_and(
                _to_bool(evaluate(expression.left, context)),
                _to_bool(evaluate(expression.right, context)),
            )
        if operator == "OR":
            return _logical_or(
                _to_bool(evaluate(expression.left, context)),
                _to_bool(evaluate(expression.right, context)),
            )
        left = evaluate(expression.left, context)
        right = evaluate(expression.right, context)
        if operator in {"=", "<>", "<", "<=", ">", ">="}:
            return _compare(operator, left, right)
        return _arithmetic(operator, left, right)
    if isinstance(expression, ast.UnaryOp):
        operand = evaluate(expression.operand, context)
        if expression.operator.upper() == "NOT":
            value = _to_bool(operand)
            return None if value is None else not value
        if operand is None:
            return None
        return -operand if expression.operator == "-" else +operand
    if isinstance(expression, ast.FunctionCall):
        name = expression.name.upper()
        if name in AGGREGATE_FUNCTIONS:
            # Aggregates are computed by the aggregation operator, which stores
            # the result in the row under the printed expression text.
            from repro.sqlparser.printer import print_expression

            key = print_expression(expression)
            if key in context.row:
                return context.row[key]
            raise ExecutionError(f"aggregate {key!r} used outside an aggregation")
        implementation = _SCALAR_FUNCTIONS.get(name)
        if implementation is None:
            raise ExecutionError(f"unknown function {expression.name!r}")
        arguments = [evaluate(argument, context) for argument in expression.arguments]
        return implementation(*arguments)
    if isinstance(expression, ast.InList):
        value = evaluate(expression.expression, context)
        if value is None:
            return None
        saw_null = False
        for item in expression.items:
            candidate = evaluate(item, context)
            if candidate is None:
                saw_null = True
                continue
            comparison = _compare("=", value, candidate)
            if comparison:
                return not expression.negated
        if saw_null:
            return None
        return expression.negated
    if isinstance(expression, ast.InSubquery):
        return _evaluate_in_subquery(expression, context)
    if isinstance(expression, ast.Between):
        value = evaluate(expression.expression, context)
        low = evaluate(expression.low, context)
        high = evaluate(expression.high, context)
        lower_ok = _compare(">=", value, low)
        upper_ok = _compare("<=", value, high)
        result = _logical_and(lower_ok, upper_ok)
        if result is None:
            return None
        return (not result) if expression.negated else result
    if isinstance(expression, ast.Like):
        result = _like(
            evaluate(expression.expression, context),
            evaluate(expression.pattern, context),
        )
        if result is None:
            return None
        return (not result) if expression.negated else result
    if isinstance(expression, ast.IsNull):
        is_null = evaluate(expression.expression, context) is None
        return (not is_null) if expression.negated else is_null
    if isinstance(expression, ast.Case):
        if expression.operand is not None:
            operand = evaluate(expression.operand, context)
            for when in expression.whens:
                if _compare("=", operand, evaluate(when.condition, context)):
                    return evaluate(when.result, context)
        else:
            for when in expression.whens:
                if _to_bool(evaluate(when.condition, context)):
                    return evaluate(when.result, context)
        if expression.else_result is not None:
            return evaluate(expression.else_result, context)
        return None
    if isinstance(expression, ast.Cast):
        return _cast(evaluate(expression.expression, context), expression.target_type)
    if isinstance(expression, ast.ScalarSubquery):
        rows = _run_subquery(expression.query, context)
        if not rows:
            return None
        first = rows[0]
        return next(iter(first.values())) if first else None
    if isinstance(expression, ast.Exists):
        rows = _run_subquery(expression.query, context)
        result = bool(rows)
        return (not result) if expression.negated else result
    raise ExecutionError(f"cannot evaluate expression of type {type(expression).__name__}")


def _cast(value: object, target_type: str) -> object:
    if value is None:
        return None
    upper = target_type.upper()
    try:
        if upper in {"INT", "INTEGER", "BIGINT"}:
            return int(float(value))
        if upper in {"FLOAT", "REAL", "DOUBLE", "DOUBLE PRECISION", "DECIMAL", "NUMERIC"}:
            return float(value)
        if upper in {"TEXT", "VARCHAR", "CHAR"}:
            return str(value)
        if upper in {"BOOL", "BOOLEAN"}:
            return bool(value)
    except (TypeError, ValueError):
        return None
    return value


def _run_subquery(query: ast.SelectStatement, context: EvaluationContext) -> List[Row]:
    if context.subquery_executor is None:
        raise ExecutionError("subquery evaluation requires a subquery executor")
    return context.subquery_executor(query, context.row)


def _evaluate_in_subquery(
    expression: ast.InSubquery, context: EvaluationContext
) -> Optional[bool]:
    value = evaluate(expression.expression, context)
    rows = _run_subquery(expression.subquery, context)
    if value is None:
        return None if rows else expression.negated
    saw_null = False
    for row in rows:
        candidate = next(iter(row.values())) if row else None
        if candidate is None:
            saw_null = True
            continue
        if _compare("=", value, candidate):
            return not expression.negated
    if saw_null:
        return None
    return expression.negated


def evaluate_predicate(
    expression: Optional[ast.Expression], context: EvaluationContext
) -> Optional[bool]:
    """Evaluate a predicate, returning ``True`` / ``False`` / ``None``."""
    if expression is None:
        return True
    return _to_bool(evaluate(expression, context))


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------
#
# :func:`evaluate` re-discovers an expression's shape — a chain of
# ``isinstance`` checks plus operator-string dispatch — for *every row*.  The
# executor's inner loops (scan filters, join conditions, WHERE clauses of
# DML) evaluate one fixed expression over thousands of rows, so the dispatch
# can be done once: :func:`compile_expression` walks the tree a single time
# and returns a closure of closures that only performs the per-row work.
#
# The compiled form is semantically identical to :func:`evaluate` (including
# three-valued logic, NULL propagation, and error behaviour); expression
# kinds outside the hot set — subqueries, CASE, CAST, aggregates — fall back
# to an ``evaluate`` closure, so compilation is total.

_COMPARISON_OPERATORS = frozenset({"=", "<>", "<", "<=", ">", ">="})

#: Callable evaluating one compiled expression against a context.
CompiledExpression = Callable[[EvaluationContext], object]


def compile_expression(expression: ast.Expression) -> CompiledExpression:
    """Compile *expression* into a closure equivalent to ``evaluate``."""
    if isinstance(expression, ast.Literal):
        value = expression.value
        return lambda context: value
    if isinstance(expression, ast.ColumnRef):
        # Pre-compute the row key; fall back to the slow resolver only when
        # the fast key is absent (case differences, unqualified references).
        key = (
            f"{expression.table}.{expression.column}"
            if expression.table
            else expression.column
        )

        def column(context, key=key, expression=expression):
            row = context.row
            if key in row:
                return row[key]
            return resolve_column(row, expression)

        return column
    if isinstance(expression, ast.BinaryOp):
        operator = expression.operator.upper()
        left = compile_expression(expression.left)
        right = compile_expression(expression.right)
        if operator == "AND":
            return lambda context: _logical_and(
                _to_bool(left(context)), _to_bool(right(context))
            )
        if operator == "OR":
            return lambda context: _logical_or(
                _to_bool(left(context)), _to_bool(right(context))
            )
        if operator in _COMPARISON_OPERATORS:
            return lambda context: _compare(operator, left(context), right(context))
        return lambda context: _arithmetic(operator, left(context), right(context))
    if isinstance(expression, ast.UnaryOp):
        operand = compile_expression(expression.operand)
        if expression.operator.upper() == "NOT":

            def negation(context):
                value = _to_bool(operand(context))
                return None if value is None else not value

            return negation
        negate = expression.operator == "-"

        def sign(context):
            value = operand(context)
            if value is None:
                return None
            return -value if negate else +value

        return sign
    if isinstance(expression, ast.IsNull):
        inner = compile_expression(expression.expression)
        if expression.negated:
            return lambda context: inner(context) is not None
        return lambda context: inner(context) is None
    if isinstance(expression, ast.Between):
        value_fn = compile_expression(expression.expression)
        low_fn = compile_expression(expression.low)
        high_fn = compile_expression(expression.high)
        negated = expression.negated

        def between(context):
            value = value_fn(context)
            result = _logical_and(
                _compare(">=", value, low_fn(context)),
                _compare("<=", value, high_fn(context)),
            )
            if result is None:
                return None
            return (not result) if negated else result

        return between
    if isinstance(expression, ast.Like):
        value_fn = compile_expression(expression.expression)
        pattern_fn = compile_expression(expression.pattern)
        negated = expression.negated

        def like(context):
            result = _like(value_fn(context), pattern_fn(context))
            if result is None:
                return None
            return (not result) if negated else result

        return like
    if isinstance(expression, ast.InList):
        value_fn = compile_expression(expression.expression)
        item_fns = [compile_expression(item) for item in expression.items]
        negated = expression.negated

        def in_list(context):
            value = value_fn(context)
            if value is None:
                return None
            saw_null = False
            for item_fn in item_fns:
                candidate = item_fn(context)
                if candidate is None:
                    saw_null = True
                    continue
                if _compare("=", value, candidate):
                    return not negated
            if saw_null:
                return None
            return negated

        return in_list
    if isinstance(expression, ast.FunctionCall):
        name = expression.name.upper()
        if name not in AGGREGATE_FUNCTIONS:
            implementation = _SCALAR_FUNCTIONS.get(name)
            if implementation is None:
                message = f"unknown function {expression.name!r}"
                def unknown(context):
                    raise ExecutionError(message)
                return unknown
            argument_fns = [
                compile_expression(argument) for argument in expression.arguments
            ]
            return lambda context: implementation(
                *[argument_fn(context) for argument_fn in argument_fns]
            )
        # Aggregates read the pre-computed value out of the row; defer to the
        # interpreter (which owns the printed-key protocol).
    return lambda context: evaluate(expression, context)


def compile_predicate(
    expression: Optional[ast.Expression],
) -> Callable[[EvaluationContext], Optional[bool]]:
    """Compile a predicate into a ``context -> True/False/None`` closure.

    Equivalent to :func:`evaluate_predicate` with the expression bound.
    """
    if expression is None:
        return lambda context: True
    compiled = compile_expression(expression)
    return lambda context: _to_bool(compiled(context))


# ---------------------------------------------------------------------------
# Batch (vectorized) expression compilation
# ---------------------------------------------------------------------------
#
# The compiled closures above still pay one closure call, one row dictionary,
# and one :class:`EvaluationContext` per row.  The vectorized executor
# (:mod:`repro.engine.vectorized`) processes whole column chunks, so
# expressions are compiled once more into *batch* closures: each takes a
# :class:`BatchContext` (parallel column lists) and returns one value list.
# Column references resolve once per batch instead of once per row — batches
# are uniform (a single key set), so per-batch resolution is exactly
# per-row resolution amortised.
#
# Semantics are identical to :func:`evaluate` element-by-element: the same
# three-valued logic, the same NULL propagation, the same error behaviour
# (an error raised for element *i* is the error ``evaluate`` would raise for
# row *i*).  Expression kinds outside the vectorized set — subqueries, CASE,
# CAST, aggregates — fall back to per-row ``evaluate`` over materialized row
# dictionaries, so batch compilation is total.


class BatchContext:
    """A chunk of rows in columnar form: parallel value lists per column.

    ``columns`` maps row keys (``"alias.column"`` or output names) to value
    lists; every list has ``length`` elements.  ``rows()`` materializes the
    chunk as row dictionaries for the per-row fallback (built lazily, once).
    """

    __slots__ = ("columns", "length", "subquery_executor", "_rows")

    def __init__(
        self,
        columns: Dict[str, List[object]],
        length: int,
        subquery_executor: Optional[SubqueryExecutor] = None,
    ) -> None:
        self.columns = columns
        self.length = length
        self.subquery_executor = subquery_executor
        self._rows: Optional[List[Row]] = None

    def rows(self) -> List[Row]:
        """The chunk as row dictionaries (key order = column order)."""
        if self._rows is None:
            if not self.columns:
                self._rows = [{} for _ in range(self.length)]
            else:
                keys = list(self.columns)
                self._rows = [
                    dict(zip(keys, values))
                    for values in zip(*self.columns.values())
                ]
        return self._rows


def resolve_batch_column(
    context: BatchContext, reference: ast.ColumnRef
) -> List[object]:
    """Resolve a column reference against a batch (cf. :func:`resolve_column`).

    Batches are uniform, so resolving against the key set once is equivalent
    to resolving against each row; the fallback order (exact qualified,
    case-insensitive qualified, exact bare, suffix match, case-insensitive
    bare) mirrors :func:`resolve_column` including its first-match behaviour
    for ambiguous unqualified references.
    """
    columns = context.columns
    if reference.table:
        qualified = f"{reference.table}.{reference.column}"
        if qualified in columns:
            return columns[qualified]
        lowered = qualified.lower()
        for key, values in columns.items():
            if key.lower() == lowered:
                return values
        raise ExecutionError(f"unknown column {qualified!r}")
    if reference.column in columns:
        return columns[reference.column]
    suffix = "." + reference.column.lower()
    matches = [key for key in columns if key.lower().endswith(suffix)]
    if matches:
        return columns[matches[0]]
    lowered_column = reference.column.lower()
    for key, values in columns.items():
        if key.lower() == lowered_column:
            return values
    raise ExecutionError(f"unknown column {reference.column!r}")


#: Callable evaluating one compiled expression over a whole batch.
CompiledBatchExpression = Callable[[BatchContext], List[object]]


def _batch_constant(expression: ast.Expression):
    """``(True, value)`` when *expression* is a literal the array kernels can
    treat as one scalar constant (plain literals, signed numeric literals)."""
    if isinstance(expression, ast.Literal):
        return True, expression.value
    if (
        isinstance(expression, ast.UnaryOp)
        and expression.operator in ("-", "+")
        and isinstance(expression.operand, ast.Literal)
        and isinstance(expression.operand.value, (int, float))
        and not isinstance(expression.operand.value, bool)
    ):
        value = expression.operand.value
        return True, (-value if expression.operator == "-" else +value)
    return False, None


def compile_expression_batch(expression: ast.Expression) -> CompiledBatchExpression:
    """Compile *expression* into a closure evaluating whole column chunks."""
    if isinstance(expression, ast.Literal):
        value = expression.value
        return lambda context: [value] * context.length
    if isinstance(expression, ast.ColumnRef):
        key = (
            f"{expression.table}.{expression.column}"
            if expression.table
            else expression.column
        )

        def column(context, key=key, reference=expression):
            values = context.columns.get(key)
            if values is not None:
                return values
            return resolve_batch_column(context, reference)

        return column
    if isinstance(expression, ast.BinaryOp):
        operator = expression.operator.upper()
        left = compile_expression_batch(expression.left)
        right = compile_expression_batch(expression.right)
        if operator == "AND":

            def conjunction(context):
                left_values = left(context)
                right_values = right(context)
                result = arrays.kleene_and(left_values, right_values)
                if result is not None:
                    return result
                return [
                    _logical_and(_to_bool(l), _to_bool(r))
                    for l, r in zip(left_values, right_values)
                ]

            return conjunction
        if operator == "OR":

            def disjunction(context):
                left_values = left(context)
                right_values = right(context)
                result = arrays.kleene_or(left_values, right_values)
                if result is not None:
                    return result
                return [
                    _logical_or(_to_bool(l), _to_bool(r))
                    for l, r in zip(left_values, right_values)
                ]

            return disjunction
        # Literal operands stay scalar for the kernels (no [value] * length
        # materialization on the fast path); the fallback loops expand them.
        left_const, left_value = _batch_constant(expression.left)
        right_const, right_value = _batch_constant(expression.right)
        if operator in ("=", "<>"):
            flip = operator == "<>"

            def equality(context):
                left_values = left_value if left_const else left(context)
                right_values = right_value if right_const else right(context)
                result = arrays.compare(operator, left_values, right_values)
                if result is not None:
                    return result
                if left_const:
                    left_values = [left_value] * context.length
                if right_const:
                    right_values = [right_value] * context.length
                output = []
                append = output.append
                for l, r in zip(left_values, right_values):
                    if l is None or r is None:
                        append(None)
                    else:
                        try:
                            append((l != r) if flip else (l == r))
                        except TypeError:
                            append(None)
                return output

            return equality
        if operator in _COMPARISON_OPERATORS:

            def comparison(context):
                left_values = left_value if left_const else left(context)
                right_values = right_value if right_const else right(context)
                result = arrays.compare(operator, left_values, right_values)
                if result is not None:
                    return result
                if left_const:
                    left_values = [left_value] * context.length
                if right_const:
                    right_values = [right_value] * context.length
                return [
                    _compare(operator, l, r)
                    for l, r in zip(left_values, right_values)
                ]

            return comparison

        def arithmetic(context):
            left_values = left_value if left_const else left(context)
            right_values = right_value if right_const else right(context)
            result = arrays.arithmetic(operator, left_values, right_values)
            if result is not None:
                return result
            if left_const:
                left_values = [left_value] * context.length
            if right_const:
                right_values = [right_value] * context.length
            return [
                _arithmetic(operator, l, r)
                for l, r in zip(left_values, right_values)
            ]

        return arithmetic
    if isinstance(expression, ast.UnaryOp):
        operand = compile_expression_batch(expression.operand)
        if expression.operator.upper() == "NOT":

            def negation(context):
                values = operand(context)
                result = arrays.kleene_not(values)
                if result is not None:
                    return result
                output = []
                append = output.append
                for value in values:
                    truth = _to_bool(value)
                    append(None if truth is None else not truth)
                return output

            return negation
        negate = expression.operator == "-"

        def sign(context):
            values = operand(context)
            if isinstance(values, arrays.ArrayColumn):
                if not negate:
                    return values  # unary + is the identity on numeric columns
                result = arrays.negate(values)
                if result is not None:
                    return result
            return [
                None if value is None else (-value if negate else +value)
                for value in values
            ]

        return sign
    if isinstance(expression, ast.IsNull):
        inner = compile_expression_batch(expression.expression)
        negated = expression.negated

        def null_check(context):
            values = inner(context)
            result = arrays.is_null(values, negated)
            if result is not None:
                return result
            if negated:
                return [value is not None for value in values]
            return [value is None for value in values]

        return null_check
    if isinstance(expression, ast.Between):
        value_fn = compile_expression_batch(expression.expression)
        low_fn = compile_expression_batch(expression.low)
        high_fn = compile_expression_batch(expression.high)
        low_const, low_value = _batch_constant(expression.low)
        high_const, high_value = _batch_constant(expression.high)
        negated = expression.negated

        def between(context):
            values = value_fn(context)
            lows = low_value if low_const else low_fn(context)
            highs = high_value if high_const else high_fn(context)
            if isinstance(values, arrays.ArrayColumn):
                lower_ok = arrays.compare(">=", values, lows)
                upper_ok = arrays.compare("<=", values, highs)
                if lower_ok is not None and upper_ok is not None:
                    result = arrays.kleene_and(lower_ok, upper_ok)
                    if result is not None:
                        if not negated:
                            return result
                        flipped = arrays.kleene_not(result)
                        if flipped is not None:
                            return flipped
            if low_const:
                lows = [low_value] * context.length
            if high_const:
                highs = [high_value] * context.length
            output = []
            append = output.append
            for value, low, high in zip(values, lows, highs):
                result = _logical_and(
                    _compare(">=", value, low), _compare("<=", value, high)
                )
                if result is None:
                    append(None)
                else:
                    append((not result) if negated else result)
            return output

        return between
    if isinstance(expression, ast.Like):
        value_fn = compile_expression_batch(expression.expression)
        pattern_fn = compile_expression_batch(expression.pattern)
        negated = expression.negated

        def like(context):
            output = []
            append = output.append
            for value, pattern in zip(value_fn(context), pattern_fn(context)):
                result = _like(value, pattern)
                if result is None:
                    append(None)
                else:
                    append((not result) if negated else result)
            return output

        return like
    if isinstance(expression, ast.InList):
        value_fn = compile_expression_batch(expression.expression)
        item_fns = [compile_expression_batch(item) for item in expression.items]
        negated = expression.negated

        def in_list(context):
            values = value_fn(context)
            item_columns = [item_fn(context) for item_fn in item_fns]
            output = []
            append = output.append
            for position, value in enumerate(values):
                if value is None:
                    append(None)
                    continue
                saw_null = False
                matched = False
                for item_column in item_columns:
                    candidate = item_column[position]
                    if candidate is None:
                        saw_null = True
                        continue
                    if _compare("=", value, candidate):
                        append(not negated)
                        matched = True
                        break
                if matched:
                    continue
                append(None if saw_null else negated)
            return output

        return in_list
    if isinstance(expression, ast.FunctionCall):
        name = expression.name.upper()
        if name not in AGGREGATE_FUNCTIONS:
            implementation = _SCALAR_FUNCTIONS.get(name)
            if implementation is None:
                message = f"unknown function {expression.name!r}"

                def unknown(context):
                    if context.length:
                        raise ExecutionError(message)
                    return []

                return unknown
            argument_fns = [
                compile_expression_batch(argument)
                for argument in expression.arguments
            ]
            if not argument_fns:
                return lambda context: [
                    implementation() for _ in range(context.length)
                ]
            return lambda context: [
                implementation(*values)
                for values in zip(*[fn(context) for fn in argument_fns])
            ]
        # Aggregates read pre-computed values out of the rows; fall through.
    # Everything else — subqueries, CASE, CAST, aggregates, parameters —
    # evaluates per row over materialized dictionaries.
    def fallback(context):
        hook = context.subquery_executor
        return [
            evaluate(expression, EvaluationContext(row, hook))
            for row in context.rows()
        ]

    return fallback


#: Expression kinds whose batch evaluation yields only True / False / None.
def _yields_boolean(expression: ast.Expression) -> bool:
    if isinstance(expression, ast.BinaryOp):
        operator = expression.operator.upper()
        return operator in _COMPARISON_OPERATORS or operator in ("AND", "OR")
    if isinstance(expression, ast.UnaryOp):
        return expression.operator.upper() == "NOT"
    return isinstance(
        expression, (ast.IsNull, ast.Between, ast.Like, ast.InList)
    )


def compile_predicate_batch(
    expression: Optional[ast.Expression],
) -> Callable[[BatchContext], List[int]]:
    """Compile a predicate into a **selection vector** builder.

    The returned closure evaluates the predicate over a whole batch and
    returns the positions whose three-valued result is true — exactly the
    rows :func:`evaluate_predicate` would keep (``False`` and ``NULL`` rows
    are filtered out alike).
    """
    if expression is None:
        return lambda context: list(range(context.length))
    compiled = compile_expression_batch(expression)
    if _yields_boolean(expression):

        def select_boolean(context):
            values = compiled(context)
            selection = arrays.selection_vector(values)
            if selection is not None:
                return selection
            # The compiled closure can only produce True / False / None.
            return [
                position for position, value in enumerate(values) if value is True
            ]

        return select_boolean

    def select(context):
        values = compiled(context)
        selection = arrays.selection_vector(values)
        if selection is not None:
            return selection
        return [
            position for position, value in enumerate(values) if _to_bool(value)
        ]

    return select
