"""Optional NumPy-backed column kernels with validity bitmaps.

The vectorized executor's batches hold plain Python lists unless this module
upgrades them: :func:`make_column` turns a value list into an
:class:`ArrayColumn` — a typed ``numpy`` array plus a validity bitmap for SQL
three-valued logic — when, and only when, exactness allows.  The kernels
below (comparisons, arithmetic, Kleene AND/OR/NOT, IS NULL, sort orders,
grouped reductions) then operate on whole columns per ufunc call.

numpy is a *soft* dependency: when it is absent (or disabled via the
``REPRO_DISABLE_NUMPY`` environment variable or :func:`set_numpy_enabled`),
every constructor returns the original list and every kernel returns
``None``, so callers fall back to the pure-Python per-element paths and the
engine stays fully functional.

Exactness contract (the fallback rule decides, never numpy coercion):

* **dtype inference** — a column is typed only when its Python type set is
  exactly ``{int}`` or ``{float}`` (each optionally with ``NoneType``).
  Mixed int/float, bool, string, and NULL-only columns stay plain lists.
* **2**53 cap** — ``int64`` arrays never hold ``|v| > 2**53``; wider
  integers stay (or are re-materialized as) lists, so every
  ``int64 <-> float64`` crossing is exact and SQL ``=`` equality classes
  are preserved.  Arithmetic results are re-checked after every kernel.
* **validity bitmap** — a parallel bool array, ``True`` = valid;
  ``None`` means all-valid.  Kernels propagate validity per Kleene logic;
  values at invalid positions are unspecified but always bounded.
* **bail over guess** — any operand or result a kernel cannot represent
  with oracle semantics (NaN in a sort or MIN/MAX, division overflow,
  huge literals, string operands) makes the kernel return ``None``; the
  caller's per-element loop is the single source of truth.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via both CI jobs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Largest magnitude an ``int64`` column may hold: beyond ``2**53`` the
#: implicit float64 crossings (comparisons, sort keys) stop being exact.
MAX_EXACT_INT = 2 ** 53

#: Intermediate integer reductions stay below this so ``int64`` never wraps.
_SAFE_INT_BOUND = 2 ** 62

#: Tables smaller than this keep plain-list snapshots: array construction
#: costs more than it saves on tiny inputs (see BENCH_executor.json's
#: corpus_execute field, measured over 1-60 row generator tables).
ARRAY_MIN_ROWS = 64

_BAIL = object()  # internal sentinel: operand not vectorizable

_enabled = _np is not None and os.environ.get("REPRO_DISABLE_NUMPY", "") in ("", "0")
_generation = 0


def numpy_available() -> bool:
    """Whether numpy could be imported at all."""
    return _np is not None


def numpy_enabled() -> bool:
    """Whether the array kernels are active (available and not disabled)."""
    return _enabled


def set_numpy_enabled(enabled: bool) -> bool:
    """Toggle the array kernels at runtime; returns the effective state.

    Enabling is a no-op when numpy is not importable.  Every effective
    toggle bumps the :func:`state_token`, which invalidates cached columnar
    snapshots built under the previous state.
    """
    global _enabled, _generation
    target = bool(enabled) and _np is not None
    if target != _enabled:
        _enabled = target
        _generation += 1
    return _enabled


def state_token() -> int:
    """An opaque token that changes whenever the kernels are toggled."""
    return _generation


if _np is not None:
    _COMPARE_OPS = {
        "=": _np.equal,
        "<>": _np.not_equal,
        "<": _np.less,
        "<=": _np.less_equal,
        ">": _np.greater,
        ">=": _np.greater_equal,
    }
else:  # pragma: no cover
    _COMPARE_OPS = {}


class ArrayColumn:
    """A typed column: ``values`` ndarray plus an optional validity bitmap.

    Quacks like the value list it replaces — ``len``, iteration, indexing,
    slicing, and ``==`` against lists all yield Python scalars with ``None``
    at invalid positions — so every per-element fallback path in the engine
    works unchanged; kernels reach ``values``/``validity`` directly.
    Columns are immutable by convention: operators build new columns.
    """

    __slots__ = ("values", "validity", "_list")

    def __init__(self, values, validity=None) -> None:
        self.values = values
        self.validity = validity
        self._list: Optional[List[object]] = None

    @property
    def kind(self) -> str:
        """The dtype kind: ``'i'`` (int64), ``'f'`` (float64), ``'b'`` (bool)."""
        return self.values.dtype.kind

    def has_nulls(self) -> bool:
        """Whether any position is NULL."""
        return self.validity is not None and not bool(self.validity.all())

    def tolist(self) -> List[object]:
        """The column as a plain list of Python scalars (cached)."""
        cached = self._list
        if cached is None:
            cached = self.values.tolist()
            if self.validity is not None:
                for position in _np.flatnonzero(~self.validity).tolist():
                    cached[position] = None
            self._list = cached
        return cached

    def take(self, positions) -> "ArrayColumn":
        """A new column holding the values at *positions* (in that order)."""
        index = _np.asarray(positions, dtype=_np.intp)
        validity = (
            self.validity.take(index) if self.validity is not None else None
        )
        return ArrayColumn(self.values.take(index), validity)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.tolist())

    def __getitem__(self, item):
        if isinstance(item, slice):
            validity = self.validity[item] if self.validity is not None else None
            return ArrayColumn(self.values[item], validity)
        return self.tolist()[item]

    def __eq__(self, other: object):
        if isinstance(other, ArrayColumn):
            return self.tolist() == other.tolist()
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    def __getstate__(self):
        # Columns cross process boundaries (morsel workers, sharded
        # campaigns); ship only the arrays — the materialized-list cache is
        # derived state and may be large.
        return (self.values, self.validity)

    def __setstate__(self, state) -> None:
        self.values, self.validity = state
        self._list = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayColumn(dtype={self.values.dtype}, length={len(self.values)}, "
            f"nulls={self.has_nulls()})"
        )


def make_column(values: List[object]):
    """Return an :class:`ArrayColumn` for *values* when exactness allows.

    Anything outside the typed domain — mixed types, bool, strings,
    integers beyond ``2**53``, all-NULL columns, kernels disabled — returns
    *values* unchanged (the dtype-inference rule of the module contract).
    """
    if not _enabled or not values:
        return values
    kinds = set(map(type, values))
    has_null = type(None) in kinds
    kinds.discard(type(None))
    # ``type()`` keeps bool apart from int, so pure-bool columns stay lists
    # (their arithmetic/ordering quirks remain on the oracle path).
    if kinds == {int}:
        filled = [0 if value is None else value for value in values] if has_null else values
        if max(filled) > MAX_EXACT_INT or min(filled) < -MAX_EXACT_INT:
            return values
        array = _np.array(filled, dtype=_np.int64)
    elif kinds == {float}:
        filled = [0.0 if value is None else value for value in values] if has_null else values
        array = _np.array(filled, dtype=_np.float64)
    else:
        return values
    validity = None
    if has_null:
        validity = _np.fromiter(
            (value is not None for value in values), dtype=bool, count=len(values)
        )
    return ArrayColumn(array, validity)


# ---------------------------------------------------------------------------
# Scalar operand preparation
# ---------------------------------------------------------------------------


def _scalar_for_compare(value, other: Optional[ArrayColumn]):
    if isinstance(value, bool):
        return int(value)  # the oracle compares bool as int for ordering ops
    if isinstance(value, int):
        if -MAX_EXACT_INT <= value <= MAX_EXACT_INT:
            return value
        # Wider ints stay exact only against pure-int64 arrays (no float
        # promotion); anything else falls back to Python's exact compare.
        if other is not None and other.kind == "i" and -(2 ** 63) < value < 2 ** 63:
            return value
        return _BAIL
    if isinstance(value, float):
        return value  # NaN included: ufunc comparisons yield False, like Python
    return _BAIL


def _scalar_for_arithmetic(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value if -MAX_EXACT_INT <= value <= MAX_EXACT_INT else _BAIL
    if isinstance(value, float):
        return value
    return _BAIL


def _and_validity(left, right):
    if left is None:
        return right
    if right is None:
        return left
    return left & right


def _all_null(length: int) -> ArrayColumn:
    return ArrayColumn(
        _np.zeros(length, dtype=bool), _np.zeros(length, dtype=bool)
    )


# ---------------------------------------------------------------------------
# Comparison / arithmetic kernels
# ---------------------------------------------------------------------------


def compare(operator: str, left, right):
    """Vectorized ``_compare``: an all-bool column, or ``None`` to fall back.

    Operands are :class:`ArrayColumn` or scalar constants; at least one
    column is required.  A ``None`` constant yields an all-NULL result.
    """
    if not _enabled:
        return None
    left_column = isinstance(left, ArrayColumn)
    right_column = isinstance(right, ArrayColumn)
    if not (left_column or right_column):
        return None
    if (not left_column and isinstance(left, (list, tuple))) or (
        not right_column and isinstance(right, (list, tuple))
    ):
        return None
    length = len(left) if left_column else len(right)
    if (not left_column and left is None) or (not right_column and right is None):
        return _all_null(length)
    lv = left.values if left_column else _scalar_for_compare(left, right if right_column else None)
    rv = right.values if right_column else _scalar_for_compare(right, left if left_column else None)
    if lv is _BAIL or rv is _BAIL:
        return None
    with _np.errstate(invalid="ignore"):
        values = _COMPARE_OPS[operator](lv, rv)
    validity = _and_validity(
        left.validity if left_column else None,
        right.validity if right_column else None,
    )
    return ArrayColumn(values, validity)


def _bounded_int_result(values, validity):
    """Re-apply the 2**53 cap to an integer kernel result.

    Invalid positions are zeroed (keeping every stored int64 bounded); a
    result that exceeds the cap is materialized back to a plain list so
    downstream float crossings can never round it.
    """
    if validity is not None:
        values = _np.where(validity, values, 0)
    if values.size and int(_np.abs(values).max()) > MAX_EXACT_INT:
        output = values.tolist()
        if validity is not None:
            for position in _np.flatnonzero(~validity).tolist():
                output[position] = None
        return output
    return ArrayColumn(values, validity)


def arithmetic(operator: str, left, right):
    """Vectorized ``_arithmetic``: a column, a plain list (re-materialized
    for exactness), or ``None`` to fall back.
    """
    if not _enabled or operator == "||":
        return None
    left_column = isinstance(left, ArrayColumn)
    right_column = isinstance(right, ArrayColumn)
    if not (left_column or right_column):
        return None
    if (not left_column and isinstance(left, (list, tuple))) or (
        not right_column and isinstance(right, (list, tuple))
    ):
        return None
    length = len(left) if left_column else len(right)
    if (not left_column and left is None) or (not right_column and right is None):
        return _all_null(length)

    def prepare(operand, is_column):
        if not is_column:
            return _scalar_for_arithmetic(operand), None, isinstance(operand, (bool, int))
        values = operand.values
        if values.dtype.kind == "b":
            # numpy bool "+" is logical-or; the oracle treats bool as int.
            values = values.astype(_np.int64)
        return values, operand.validity, operand.kind in ("i", "b")

    lv, lvalid, left_integer = prepare(left, left_column)
    rv, rvalid, right_integer = prepare(right, right_column)
    if lv is _BAIL or rv is _BAIL:
        return None
    validity = _and_validity(lvalid, rvalid)
    integer_result = left_integer and right_integer

    if operator in ("+", "-"):
        # |operand| <= 2**53 on both sides, so int64 cannot wrap; the cap
        # is re-checked on the result.
        with _np.errstate(over="ignore", invalid="ignore"):
            values = _np.add(lv, rv) if operator == "+" else _np.subtract(lv, rv)
        if integer_result:
            return _bounded_int_result(values, validity)
        return ArrayColumn(values, validity)
    if operator == "*":
        if integer_result:
            left_peak = int(_np.abs(lv).max()) if left_column else abs(lv)
            right_peak = int(_np.abs(rv).max()) if right_column else abs(rv)
            if left_peak * right_peak > _SAFE_INT_BOUND:
                return None  # products may exceed int64: Python stays exact
            return _bounded_int_result(_np.multiply(lv, rv), validity)
        with _np.errstate(over="ignore", invalid="ignore"):
            return ArrayColumn(_np.multiply(lv, rv), validity)
    if operator in ("/", "%"):
        if right_column or not isinstance(rv, (int, float)):
            zero = rv == 0
            if zero is not False and getattr(zero, "any", None) and zero.any():
                if validity is None:
                    validity = ~zero
                else:
                    validity = validity & ~zero
                rv = _np.where(zero, 1, rv)
        elif rv == 0:
            return _all_null(length)
        ufunc = _np.true_divide if operator == "/" else _np.remainder
        with _np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            values = ufunc(lv, rv)
        # Integer % stays integral and |a % b| < |b| <= 2**53: no re-check.
        return ArrayColumn(values, validity)
    return None


def negate(column):
    """Vectorized unary minus, or ``None`` to fall back."""
    if not _enabled or not isinstance(column, ArrayColumn):
        return None
    if column.kind == "b":
        return None  # the oracle yields -1/0 ints; rare enough to fall back
    return ArrayColumn(-column.values, column.validity)


# ---------------------------------------------------------------------------
# Three-valued logic kernels
# ---------------------------------------------------------------------------


def _truth(column):
    """Per-element ``_to_bool``: ``(truth, validity)`` arrays, or ``None``."""
    if not isinstance(column, ArrayColumn):
        return None
    values = column.values
    if values.dtype.kind == "b":
        return values, column.validity
    with _np.errstate(invalid="ignore"):
        return values != 0, column.validity  # NaN != 0 is True, like Python


def _known_truth(column):
    prepared = _truth(column)
    if prepared is None:
        return None
    truth, validity = prepared
    if validity is None:
        return truth, ~truth
    return truth & validity, ~truth & validity


def kleene_and(left, right):
    """Kleene AND over two columns, or ``None`` to fall back."""
    if not _enabled:
        return None
    prepared_left = _known_truth(left)
    prepared_right = _known_truth(right)
    if prepared_left is None or prepared_right is None:
        return None
    left_true, left_false = prepared_left
    right_true, right_false = prepared_right
    false_ = left_false | right_false
    true_ = left_true & right_true
    validity = false_ | true_
    return ArrayColumn(true_, None if validity.all() else validity)


def kleene_or(left, right):
    """Kleene OR over two columns, or ``None`` to fall back."""
    if not _enabled:
        return None
    prepared_left = _known_truth(left)
    prepared_right = _known_truth(right)
    if prepared_left is None or prepared_right is None:
        return None
    left_true, left_false = prepared_left
    right_true, right_false = prepared_right
    true_ = left_true | right_true
    false_ = left_false & right_false
    validity = false_ | true_
    return ArrayColumn(true_, None if validity.all() else validity)


def kleene_not(column):
    """Kleene NOT over a column, or ``None`` to fall back."""
    if not _enabled:
        return None
    prepared = _truth(column)
    if prepared is None:
        return None
    truth, validity = prepared
    return ArrayColumn(~truth, validity)


def is_null(column, negated: bool):
    """``IS [NOT] NULL`` over a column (always two-valued), or ``None``."""
    if not _enabled or not isinstance(column, ArrayColumn):
        return None
    if column.validity is None:
        return ArrayColumn(_np.full(len(column), bool(negated), dtype=bool), None)
    values = column.validity if negated else ~column.validity
    return ArrayColumn(values, None)


def selection_vector(result):
    """Positions whose three-valued truth is True, or ``None`` to fall back.

    Matches ``compile_predicate_batch``: ``False`` and NULL filter alike.
    """
    if not isinstance(result, ArrayColumn):
        return None
    truth, validity = _truth(result)
    mask = truth if validity is None else truth & validity
    return _np.flatnonzero(mask)


# ---------------------------------------------------------------------------
# Hash-join probe
# ---------------------------------------------------------------------------


def join_probe(left, right):
    """Vectorized single-key equi-join probe, or ``None`` to fall back.

    Returns ``(candidate_left, candidate_right, starts)`` — the candidate
    pair lists in the exact order the per-row probe loop produces them:
    left-major, and within one left row the matching right positions
    ascending (the build table's bucket order).  ``starts`` has
    ``len(left) + 1`` entries; row *i*'s candidates live at
    ``[starts[i], starts[i+1])``.

    Only ``int64``/``float64`` key columns qualify: their SQL ``=``
    equality classes equal float64 equality exactly (``|int| <= 2**53`` by
    the module contract, matching ``_normalise_value``'s ``("n", float(v))``
    key).  Bool columns, NaN keys, and plain lists bail to the per-row
    probe.  NULL keys on either side never match.
    """
    if not _enabled:
        return None
    # Key columns below ARRAY_MIN_ROWS (or sliced out of list batches) are
    # plain lists; converting one here is O(n) — cheaper than the per-row
    # probe loop it replaces — and make_column's dtype rules still decide.
    if isinstance(left, list):
        left = make_column(left)
    if isinstance(right, list):
        right = make_column(right)
    if not isinstance(left, ArrayColumn) or not isinstance(right, ArrayColumn):
        return None
    if left.kind not in ("i", "f") or right.kind not in ("i", "f"):
        return None
    left_values = left.values.astype(_np.float64) if left.kind == "i" else left.values
    right_values = right.values.astype(_np.float64) if right.kind == "i" else right.values
    if left.kind == "f" and _np.isnan(left_values).any():
        return None  # NaN has no stable _normalise_value equality class
    if right.kind == "f" and _np.isnan(right_values).any():
        return None

    if right.validity is not None:
        right_positions = _np.flatnonzero(right.validity)
        right_keys = right_values[right_positions]
    else:
        right_positions = _np.arange(len(right_values), dtype=_np.intp)
        right_keys = right_values
    # Stable sort: equal keys keep ascending right positions, so each
    # bucket enumerates in exactly the build dict's append order.
    order = _np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    sorted_positions = right_positions[order]

    lo = _np.searchsorted(sorted_keys, left_values, side="left")
    hi = _np.searchsorted(sorted_keys, left_values, side="right")
    counts = hi - lo
    if left.validity is not None:
        counts = _np.where(left.validity, counts, 0)
    length = len(left_values)
    starts = _np.zeros(length + 1, dtype=_np.int64)
    _np.cumsum(counts, out=starts[1:])
    total = int(starts[-1])
    candidate_left = _np.repeat(_np.arange(length, dtype=_np.intp), counts)
    if total:
        offsets = _np.arange(total, dtype=_np.int64) - _np.repeat(starts[:-1], counts)
        candidate_right = sorted_positions[_np.repeat(lo, counts) + offsets]
    else:
        candidate_right = _np.empty(0, dtype=_np.intp)
    return candidate_left, candidate_right, starts


# ---------------------------------------------------------------------------
# Batch plumbing: gather / concat
# ---------------------------------------------------------------------------


def take_column(column, positions):
    """Gather *positions* out of a column (array take or list comprehension)."""
    if isinstance(column, ArrayColumn):
        return column.take(positions)
    return [column[position] for position in positions]


def concat_columns(parts: Sequence[object]):
    """Concatenate column chunks; arrays stay arrays when dtypes agree."""
    if len(parts) == 1:
        return parts[0]
    if (
        _enabled
        and parts
        and all(isinstance(part, ArrayColumn) for part in parts)
        and len({part.values.dtype for part in parts}) == 1
    ):
        values = _np.concatenate([part.values for part in parts])
        if any(part.validity is not None for part in parts):
            validity = _np.concatenate(
                [
                    part.validity
                    if part.validity is not None
                    else _np.ones(len(part), dtype=bool)
                    for part in parts
                ]
            )
        else:
            validity = None
        return ArrayColumn(values, validity)
    output: List[object] = []
    for part in parts:
        output.extend(part)
    return output


# ---------------------------------------------------------------------------
# Sort orders
# ---------------------------------------------------------------------------


def sort_order(keys: Sequence[Tuple[object, bool]]):
    """A stable global sort order via ``np.lexsort``, or ``None``.

    *keys* holds ``(column, descending)`` pairs in ORDER BY priority.  The
    encoding mirrors ``_SortKey``/``_ComparableKey`` exactly: NULLs first
    (rank 0) ascending, ranks and values negated per-key for DESC, ties
    broken by ascending position (lexsort stability).  NaN anywhere breaks
    the total order, so it falls back to the decorated Python sort.
    """
    if not _enabled or not keys:
        return None
    sequence = []
    for column, descending in keys:
        if not isinstance(column, ArrayColumn):
            return None
        values = column.values
        if values.dtype.kind != "f":
            values = values.astype(_np.float64)  # exact: |int| <= 2**53, bool
        if _np.isnan(values).any():
            return None
        if column.validity is not None:
            rank = column.validity.astype(_np.float64)
            values = _np.where(column.validity, values, 0.0)
        else:
            rank = None
        if descending:
            values = -values
            if rank is not None:
                rank = -rank
        sequence.append((rank, values))
    lex: List[object] = []
    for rank, values in reversed(sequence):
        lex.append(values)
        if rank is not None:
            lex.append(rank)
    return _np.lexsort(lex)


# ---------------------------------------------------------------------------
# Grouped reductions
# ---------------------------------------------------------------------------


def _group_codes(key_columns: Sequence[ArrayColumn], length: int):
    """First-appearance-ordered group ids for *key_columns*, or ``None``.

    Returns ``(codes, count, first_positions)``: ``codes[i]`` is row *i*'s
    group id, ids numbered by each group's first appearance (matching the
    row executor's insertion-ordered group dict), ``first_positions[g]``
    the row where group *g* first appeared.
    """
    columns = []
    for column in key_columns:
        values = column.values
        if values.dtype.kind == "f" and _np.isnan(values).any():
            return None  # NaN keys have no consistent equality; fall back
        columns.append(values)
    order = _np.lexsort(tuple(reversed(columns)))
    boundary = _np.zeros(length, dtype=bool)
    boundary[0] = True
    for values in columns:
        ordered = values[order]
        boundary[1:] |= ordered[1:] != ordered[:-1]
    sorted_ids = _np.cumsum(boundary) - 1
    ids = _np.empty(length, dtype=_np.int64)
    ids[order] = sorted_ids
    count = int(sorted_ids[-1]) + 1
    first = _np.full(count, length, dtype=_np.int64)
    _np.minimum.at(first, ids, _np.arange(length))
    appearance = _np.argsort(first, kind="stable")
    rank = _np.empty(count, dtype=_np.int64)
    rank[appearance] = _np.arange(count)
    return rank[ids], count, first[appearance]


def grouped_aggregate(
    key_columns: Sequence[ArrayColumn],
    specs: Sequence[Tuple[str, bool, Optional[ArrayColumn]]],
    length: int,
):
    """Vectorized GROUP BY reduction, or ``None`` to fall back.

    *key_columns* are NULL-free :class:`ArrayColumn` group keys (possibly
    empty for a global aggregate over ``length > 0`` rows); *specs* holds
    ``(name, star, argument_column)`` per aggregate, names restricted by the
    caller to COUNT / SUM / AVG / MIN / MAX without DISTINCT, SUM/AVG to
    int64 arguments.  Returns ``(count, first_positions, results)`` with
    per-group Python values in first-appearance group order — exactly
    ``fold_aggregate``'s output (Python-int SUM, exact int/int AVG).
    """
    if not _enabled:
        return None
    for name, star, column in specs:
        if star:
            continue
        if column.kind == "f" and _np.isnan(column.values).any():
            return None  # Python min/max over NaN is order-dependent
        if name in ("SUM", "AVG") and len(column):
            peak = int(_np.abs(column.values).max())
            if peak * length > _SAFE_INT_BOUND:
                return None  # Python big-int sums stay exact
    if key_columns:
        grouped = _group_codes(key_columns, length)
        if grouped is None:
            return None
        codes, count, first_positions = grouped
    else:
        codes = _np.zeros(length, dtype=_np.int64)
        count = 1
        first_positions = _np.zeros(1, dtype=_np.int64)
    order = _np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    starts = _np.flatnonzero(
        _np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
    )
    results: List[List[object]] = []
    for name, star, column in specs:
        if star:  # COUNT(*): every member row counts, NULLs included
            results.append(_np.bincount(codes, minlength=count).tolist())
            continue
        validity = column.validity
        if validity is None:
            member_counts = _np.bincount(codes, minlength=count)
        else:
            member_counts = _np.bincount(codes[validity], minlength=count)
        counts = member_counts.tolist()
        if name == "COUNT":
            results.append(counts)
            continue
        values = column.values
        if name in ("SUM", "AVG"):
            if validity is not None:
                values = _np.where(validity, values, 0)
            sums = _np.add.reduceat(values[order], starts).tolist()
            if name == "SUM":
                results.append(
                    [total if count_ else None for total, count_ in zip(sums, counts)]
                )
            else:
                results.append(
                    [
                        total / count_ if count_ else None
                        for total, count_ in zip(sums, counts)
                    ]
                )
            continue
        if name == "MIN":
            fill = _np.inf if column.kind == "f" else _np.iinfo(_np.int64).max
            ufunc = _np.minimum
        else:
            fill = -_np.inf if column.kind == "f" else _np.iinfo(_np.int64).min
            ufunc = _np.maximum
        if validity is not None:
            values = _np.where(validity, values, fill)
        reduced = ufunc.reduceat(values[order], starts).tolist()
        results.append(
            [value if count_ else None for value, count_ in zip(reduced, counts)]
        )
    return count, first_positions.tolist(), results
