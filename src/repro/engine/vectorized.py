"""A columnar batch executor: MonetDB/X100-style vectorization for the engine.

The row executor (:class:`~repro.engine.executor.Executor`) materializes a
``List[Dict[str, object]]`` at every operator — one dictionary, one
:class:`~repro.engine.expressions.EvaluationContext`, and one closure call
per row per node.  The vectorized executor processes :class:`RowBatch`
chunks instead: parallel per-column value lists (default 1024 rows per
chunk), fed by the heap tables' cached columnar snapshots
(:meth:`~repro.storage.table.HeapTable.column_batch`) and filtered through
batch-compiled expressions with selection vectors
(:func:`~repro.engine.expressions.compile_predicate_batch`).

Design rules:

* **Drop-in** — :class:`VectorizedExecutor` subclasses :class:`Executor`
  and keeps its public API (``execute(plan, analyze=, outer_row=)`` returns
  row dictionaries); only the internals move to batches.
* **Per-node fallback** — operators without a batch implementation
  (subqueries, VALUES, RESULT, DML, DDL) and every operator evaluated under
  a correlated outer row run the inherited row handlers; batches and rows
  convert at the boundary (:func:`batches_from_rows` groups consecutive
  rows with identical key sets, so every batch is *uniform* and per-batch
  column resolution is exactly per-row resolution).
* **Oracle equivalence** — results, row order, and ``EXPLAIN ANALYZE``
  runtime row counts are identical to the row executor's
  (tests/test_vectorized_equivalence.py fuzzes this over the generator
  corpus); the row executor stays untouched as the correctness oracle.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.executor import (
    Executor,
    Row,
    _HANDLERS,
    _ComparableKey,
    _equi_join_keys,
    _extract_bounds,
    _normalise_value,
    _semi_join_key,
    fold_aggregate,
)
from repro.engine import arrays
from repro.engine.expressions import (
    BatchContext,
    EvaluationContext,
    compile_expression_batch,
    compile_predicate_batch,
    evaluate,
    resolve_batch_column,
)
from repro.errors import ExecutionError, StorageError
from repro.optimizer.physical import OpKind, PhysicalNode
from repro.sqlparser import ast_nodes as ast
from repro.sqlparser.printer import print_expression
from repro.storage.index import sortable

#: Default number of rows per chunk flowing between operators.
DEFAULT_BATCH_SIZE = 1024

_EMPTY_ROW: Row = {}

_SCAN_KINDS = (OpKind.SEQ_SCAN, OpKind.INDEX_SCAN, OpKind.INDEX_ONLY_SCAN)


class RowBatch:
    """A uniform chunk of rows in columnar form.

    ``columns`` maps each row key to a value list; all lists are parallel
    and ``length`` long.  Every batch is *uniform*: all of its rows share
    the same key set, in the same order.  Batches are treated as immutable
    — operators build new column lists instead of mutating inputs, which
    lets scans hand out the cached table snapshot's lists directly.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[str, List[object]], length: int) -> None:
        self.columns = columns
        self.length = length

    def to_rows(self) -> List[Row]:
        """Materialize the chunk as (fresh) row dictionaries."""
        if not self.columns:
            return [{} for _ in range(self.length)]
        keys = list(self.columns)
        return [dict(zip(keys, values)) for values in zip(*self.columns.values())]

    def schema(self) -> Tuple[str, ...]:
        """The batch's key set, in column order."""
        return tuple(self.columns)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowBatch(columns={list(self.columns)}, length={self.length})"


def batches_from_rows(rows: List[Row], batch_size: int = DEFAULT_BATCH_SIZE) -> List[RowBatch]:
    """Chunk *rows* into uniform batches, preserving order.

    Consecutive rows with identical key lists share a batch (capped at
    *batch_size*); a run break starts a new batch, so heterogeneous row
    lists (e.g. positional UNIONs of different arities) round-trip exactly.
    """
    batches: List[RowBatch] = []
    run: List[Row] = []
    run_keys: Optional[List[str]] = None

    def flush() -> None:
        if run:
            columns = {key: [row[key] for row in run] for key in run_keys}
            batches.append(RowBatch(columns, len(run)))
            run.clear()

    for row in rows:
        keys = list(row)
        if run_keys is None or keys != run_keys or len(run) >= batch_size:
            flush()
            run_keys = keys
        run.append(row)
    flush()
    return batches


def rows_from_batches(batches: List[RowBatch]) -> List[Row]:
    """Materialize a batch list back into row dictionaries."""
    rows: List[Row] = []
    for batch in batches:
        rows.extend(batch.to_rows())
    return rows


def _gather(batch: RowBatch, positions) -> RowBatch:
    """A new batch holding *batch*'s rows at *positions* (in that order).

    *positions* may be a list or an ndarray selection vector; typed array
    columns gather via ``take``, plain lists by comprehension.
    """
    return RowBatch(
        {
            key: arrays.take_column(values, positions)
            for key, values in batch.columns.items()
        },
        len(positions),
    )


def _split(batch: RowBatch, batch_size: int) -> List[RowBatch]:
    """Split *batch* into chunks of at most *batch_size* rows."""
    if batch.length <= batch_size:
        return [batch] if batch.length else []
    return [
        RowBatch(
            {key: values[start : start + batch_size] for key, values in batch.columns.items()},
            min(batch_size, batch.length - start),
        )
        for start in range(0, batch.length, batch_size)
    ]


def _uniform_schema(batches: List[RowBatch]) -> bool:
    """Whether every batch shares one key set (the common case)."""
    if len(batches) <= 1:
        return True
    first = batches[0].schema()
    return all(batch.schema() == first for batch in batches[1:])


def _concat(batches: List[RowBatch]) -> RowBatch:
    """Concatenate uniform batches into one (callers check uniformity).

    Same-dtype array columns stay arrays (one ``np.concatenate``); anything
    else degrades to a plain list.
    """
    if not batches:
        return RowBatch({}, 0)
    if len(batches) == 1:
        return batches[0]
    columns: Dict[str, List[object]] = {
        key: arrays.concat_columns([batch.columns[key] for batch in batches])
        for key in batches[0].columns
    }
    total = sum(batch.length for batch in batches)
    return RowBatch(columns, total)


def _gather_global(
    batches: List[RowBatch], order: List[int], batch_size: int
) -> List[RowBatch]:
    """Reorder rows across *batches* by global index (sorts, dedupes).

    With a uniform schema the gather is columnar; otherwise the rows are
    materialized, reordered as dictionaries, and re-chunked.
    """
    if not batches:
        return []
    if _uniform_schema(batches):
        combined = _concat(batches)
        return _split(_gather(combined, order), batch_size)
    rows = rows_from_batches(batches)
    return batches_from_rows([rows[g] for g in order], batch_size)


class VectorizedExecutor(Executor):
    """Executes physical plans over columnar batches.

    Drop-in for :class:`Executor`: identical public API, identical results
    and ``EXPLAIN ANALYZE`` row counts, batched internals.
    """

    #: Statements whose scans cover fewer total rows than this run on the
    #: inherited row path: per-statement snapshot/batch setup costs more
    #: than vectorization saves on tiny inputs (the corpus_execute field of
    #: BENCH_executor.json tracks the effect over 1-60 row corpus tables).
    ROW_PATH_THRESHOLD = 32

    def __init__(
        self,
        database,
        planner: Optional[object] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        row_path_threshold: Optional[int] = None,
    ) -> None:
        super().__init__(database, planner)
        self.batch_size = batch_size
        self.row_path_threshold = (
            self.ROW_PATH_THRESHOLD if row_path_threshold is None else row_path_threshold
        )
        self._row_mode = 0

    # ------------------------------------------------------------------ dispatch

    def execute(
        self,
        plan: PhysicalNode,
        analyze: bool = False,
        outer_row: Optional[Row] = None,
    ) -> List[Row]:
        # Adaptive small-input routing: when every scan in the plan covers a
        # tiny table, the whole statement (including nested subquery
        # executions) runs on the inherited row path — which *is* the
        # oracle, so results, order, and ANALYZE counts stay identical.
        if not self._row_mode and self._prefers_row_path(plan):
            self._row_mode += 1
            try:
                return super().execute(plan, analyze=analyze, outer_row=outer_row)
            finally:
                self._row_mode -= 1
        return super().execute(plan, analyze=analyze, outer_row=outer_row)

    def _prefers_row_path(self, plan: PhysicalNode) -> bool:
        threshold = self.row_path_threshold
        if threshold <= 0:
            return False
        total = 0
        for node in plan.walk():
            if node.kind in _SCAN_KINDS:
                table_name = node.info.get("table")
                if table_name is None:
                    return False
                try:
                    total += self.database.table(table_name).row_count
                except Exception:
                    return False
                if total >= threshold:
                    return False
        return True

    def _execute_node(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        if self._row_mode:
            return Executor._execute_node(self, node, analyze, outer_row)
        # The batch↔row boundary: inherited row handlers (and the public
        # API) see rows, vectorized handlers exchange batches underneath.
        return rows_from_batches(self._execute_batches(node, analyze, outer_row))

    def _execute_batches(
        self, node: PhysicalNode, analyze: bool, outer_row: Row
    ) -> List[RowBatch]:
        started = time.perf_counter()
        handler = _BATCH_HANDLERS.get(node.kind) if not outer_row else None
        if handler is not None:
            batches = handler(self, node, analyze)
        else:
            row_handler = _HANDLERS.get(node.kind)
            if row_handler is None:
                raise ExecutionError(f"no executor for operator {node.kind.value}")
            # Row fallback: the inherited handler pulls its children through
            # the overridden _execute_node above, so a non-vectorized node
            # composes with vectorized children at the boundary.
            rows = row_handler(self, node, analyze, outer_row)
            batches = batches_from_rows(rows, self.batch_size)
        if analyze:
            node.runtime.executed = True
            node.runtime.actual_rows = sum(batch.length for batch in batches)
            node.runtime.actual_time_ms = (time.perf_counter() - started) * 1000.0
            node.runtime.loops += 1
        return batches

    # ------------------------------------------------------------------ helpers

    def _batch_context(self, batch: RowBatch) -> BatchContext:
        return BatchContext(batch.columns, batch.length, self._run_subquery)

    def _node_batch_compiled(self, node: PhysicalNode, key: str, builder: Callable):
        """Per-(node, key) cache of batch-compiled artifacts.

        Plans are shared across executions by the prepared-query cache, so
        batch compilation — like the row path's compiled predicates — runs
        once per node and is reused by every later execution.
        """
        cache = getattr(node, "_batch_compiled", None)
        if cache is None:
            cache = {}
            node._batch_compiled = cache
        compiled = cache.get(key)
        if compiled is None:
            compiled = builder()
            cache[key] = compiled
        return compiled

    def _node_batch_predicate(self, node: PhysicalNode, key: str):
        return self._node_batch_compiled(
            node, key, lambda: compile_predicate_batch(node.info.get(key))
        )

    def _scalar_context(self) -> EvaluationContext:
        return EvaluationContext({}, self._run_subquery)

    # ------------------------------------------------------------------ producers

    def _table_snapshot(self, table):
        """The columnar snapshot scans read from.

        With a pinned :class:`~repro.catalog.database.DatabaseView` installed
        (the serving layer's snapshot isolation), scans read the view's
        snapshot of the table — the version the statement was planned
        against — even if writers have advanced the live database since.
        Without a view, behavior is unchanged: the table's cached snapshot
        at the current version.
        """
        view = self.snapshot_view
        if view is not None:
            snapshot = view.get(table.schema.name)
            if snapshot is not None:
                return snapshot
        return table.column_batch(self.database.version)

    def _batch_seq_scan(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        table = self.database.table(node.info["table"])
        alias = node.info.get("alias") or node.info["table"]
        snapshot = self._table_snapshot(table)
        prefix = alias + "."
        base = RowBatch(
            {prefix + name: values for name, values in snapshot.columns.items()},
            snapshot.length,
        )
        batches = _split(base, self.batch_size)
        if node.info.get("filter") is None:
            return batches
        return self._apply_filter(node, "filter", batches)

    def _batch_index_scan(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        table = self.database.table(node.info["table"])
        alias = node.info.get("alias") or node.info["table"]
        index = self.database.index(node.info["index"])
        index_condition = node.info.get("index_condition")
        bounds = _extract_bounds(index_condition, index.definition.leading_column())
        if bounds is not None and bounds.equality_values is not None:
            row_ids: List[int] = []
            for value in bounds.equality_values:
                row_ids.extend(index.prefix_lookup((value,)))
        else:
            low = bounds.low if bounds else None
            high = bounds.high if bounds else None
            include_low = bounds.include_low if bounds else True
            include_high = bounds.include_high if bounds else True
            row_ids = [
                row_id
                for _, row_id in index.range_scan(low, high, include_low, include_high)
            ]
        snapshot = self._table_snapshot(table)
        try:
            positions = [snapshot.position_of(row_id) for row_id in row_ids]
        except KeyError as exc:
            raise StorageError(
                f"row id {exc.args[0]} does not exist in {table.schema.name!r}"
            ) from exc
        prefix = alias + "."
        batch = RowBatch(
            {
                prefix + name: arrays.take_column(values, positions)
                for name, values in snapshot.columns.items()
            },
            len(positions),
        )
        # Row order mirrors the row executor: index order, the index
        # condition re-checked first, the residual filter on its survivors.
        if index_condition is not None and batch.length:
            selection = self._node_batch_predicate(node, "index_condition")(
                self._batch_context(batch)
            )
            if len(selection) != batch.length:
                batch = _gather(batch, selection)
        if node.info.get("filter") is not None and batch.length:
            selection = self._node_batch_predicate(node, "filter")(
                self._batch_context(batch)
            )
            if len(selection) != batch.length:
                batch = _gather(batch, selection)
        return _split(batch, self.batch_size)

    # ------------------------------------------------------------------ executors

    def _batch_filter(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        batches = self._execute_batches(node.children[0], analyze, _EMPTY_ROW)
        return self._apply_filter(node, "predicate", batches)

    def _apply_filter(
        self, node: PhysicalNode, key: str, batches: List[RowBatch]
    ) -> List[RowBatch]:
        """Run the node's *key* predicate over *batches*, keeping survivors.

        Batch order is the row order contract; a subclass may evaluate the
        batches concurrently (the parallel executor's morsel exchange) as
        long as the surviving batches come back in input order.
        """
        select = self._node_batch_predicate(node, key)
        output: List[RowBatch] = []
        for batch in batches:
            selection = select(self._batch_context(batch))
            if len(selection) == batch.length:
                output.append(batch)
            elif len(selection):
                output.append(_gather(batch, selection))
        return output

    def _batch_passthrough(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        return self._execute_batches(node.children[0], analyze, _EMPTY_ROW)

    def _batch_project(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        batches = self._execute_batches(node.children[0], analyze, _EMPTY_ROW)

        def compile_items():
            compiled = []
            for expression, name in node.info.get("items", []):
                if isinstance(expression, ast.Star):
                    compiled.append(("star", expression.table, None, None))
                else:
                    # Non-column expressions pass through by printed text
                    # when an aggregation below already produced the value —
                    # the row executor's grouped-expression passthrough.
                    printed = (
                        None
                        if isinstance(expression, ast.ColumnRef)
                        else print_expression(expression)
                    )
                    compiled.append(
                        ("expr", name, compile_expression_batch(expression), printed)
                    )
            return compiled

        items = self._node_batch_compiled(node, "items", compile_items)
        output: List[RowBatch] = []
        for batch in batches:
            context = self._batch_context(batch)
            columns: Dict[str, List[object]] = {}
            for kind, name, fn, printed in items:
                if kind == "star":
                    if name:  # qualified star: name carries the table alias
                        prefix = name + "."
                        for key, values in batch.columns.items():
                            if key.startswith(prefix):
                                columns[key] = values
                    else:
                        columns.update(batch.columns)
                elif printed is not None and printed in batch.columns:
                    columns[name] = batch.columns[printed]
                else:
                    columns[name] = fn(context)
            output.append(RowBatch(columns, batch.length))
        return output

    # ------------------------------------------------------------------ joins

    def _batch_nested_loop_join(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        left = self._execute_batches(node.children[0], analyze, _EMPTY_ROW)
        right = self._execute_batches(node.children[1], analyze, _EMPTY_ROW)
        return self._batch_join_generic(node, left, right)

    def _batch_hash_join(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        left_batches = self._execute_batches(node.children[0], analyze, _EMPTY_ROW)
        right_batches = self._execute_batches(node.children[1], analyze, _EMPTY_ROW)
        keys = _equi_join_keys(node.info.get("condition"))
        if not keys:
            return self._batch_join_generic(node, left_batches, right_batches)
        join_type = node.info.get("join_type", "INNER")
        if (
            join_type in ("RIGHT", "FULL")
            or not _uniform_schema(left_batches)
            or not _uniform_schema(right_batches)
        ):
            # RIGHT/FULL padding follows the row executor's any(check)
            # probe over whole combined rows, whose column resolution can
            # differ from per-side key resolution in degenerate conditions;
            # the row core stays the single source of truth for it.
            return batches_from_rows(
                self._hash_join_rows(
                    node,
                    rows_from_batches(left_batches),
                    rows_from_batches(right_batches),
                    _EMPTY_ROW,
                ),
                self.batch_size,
            )
        left = _concat(left_batches)
        right = _concat(right_batches)

        left_keys = self._key_columns(left, [pair[0] for pair in keys])
        right_keys = self._key_columns(right, [pair[1] for pair in keys])

        # Probe.  Single-key array columns take the sort/searchsorted kernel
        # (arrays.join_probe), which emits candidate pairs in exactly the
        # per-row loop's order — left-major, ascending right positions per
        # left row — so both paths feed identical candidates downstream.
        probed = (
            arrays.join_probe(left_keys[0], right_keys[0])
            if left_keys is not None and right_keys is not None and len(keys) == 1
            else None
        )
        if probed is not None:
            candidate_left, candidate_right, candidate_starts = probed
        else:
            # Build on the right side: normalised key tuple -> right positions
            # (in right order, matching the row executor's bucket lists).
            build = self._hash_build(right, right_keys)

            # Probe: collect candidate (left, right) pairs left-major.
            candidate_left: List[int] = []
            candidate_right: List[int] = []
            candidate_starts: List[int] = []  # per left row, start offset
            for position in range(left.length):
                candidate_starts.append(len(candidate_left))
                if left_keys is None:
                    continue
                key = _key_at(left_keys, position)
                if key is None:
                    continue
                for right_position in build.get(key, ()):
                    candidate_left.append(position)
                    candidate_right.append(right_position)
            candidate_starts.append(len(candidate_left))

        combined_keys, sides = _combined_schema(left, right)
        candidates = RowBatch(
            {
                key: arrays.take_column(
                    source, candidate_right if side == "r" else candidate_left
                )
                for key, side, source in sides
            },
            len(candidate_left),
        )
        check = self._node_batch_predicate(node, "condition")
        # An empty candidate chunk is never evaluated: the row executor
        # evaluates the condition per probed pair, so zero pairs mean zero
        # evaluations (and no resolution errors from an absent schema).
        survivors = (
            set(check(self._batch_context(candidates))) if candidates.length else set()
        )

        if join_type != "LEFT":
            order = sorted(survivors)
            return _split(_gather(candidates, order), self.batch_size)

        columns: Dict[str, List[object]] = {key: [] for key in combined_keys}
        length = 0
        for position in range(left.length):
            matched = False
            for candidate in range(candidate_starts[position], candidate_starts[position + 1]):
                if candidate in survivors:
                    matched = True
                    for key, side, source in sides:
                        columns[key].append(
                            source[candidate_right[candidate]]
                            if side == "r"
                            else source[candidate_left[candidate]]
                        )
                    length += 1
            if not matched:
                for key, side, source in sides:
                    columns[key].append(source[position] if side == "l" else None)
                length += 1
        return _split(RowBatch(columns, length), self.batch_size)

    def _hash_build(
        self, right: RowBatch, right_keys: Optional[List[List[object]]]
    ) -> Dict[Tuple, List[int]]:
        """The hash-join build table: normalised key tuple -> right-side
        positions, bucket lists in ascending position order (the row
        executor's bucket order).  A seam for the parallel executor, which
        builds per-morsel partial tables and merges them in morsel order —
        producing this exact mapping."""
        build: Dict[Tuple, List[int]] = {}
        if right_keys is not None:
            for position in range(right.length):
                key = _key_at(right_keys, position)
                if key is not None:
                    build.setdefault(key, []).append(position)
        return build

    def _batch_merge_join(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        # Correctness first, exactly as the row executor: a merge join
        # produces the same rows as a hash join.
        return self._batch_hash_join(node, analyze)

    def _batch_semi_join(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        """Hash semi / null-aware anti join over batches.

        The inner side's first output column is collected into one key set,
        then each outer batch evaluates the probe expression as a chunk and
        keeps the matching (semi) or non-matching (anti) positions.  The
        three-valued edge cases — NULL probes never TRUE, ``NOT IN`` against
        an empty inner keeping everything, a single inner NULL emptying the
        ``NOT IN`` result — mirror the row executor's ``_semi_join_rows``.
        """
        left_batches = self._execute_batches(node.children[0], analyze, _EMPTY_ROW)
        right_batches = self._execute_batches(node.children[1], analyze, _EMPTY_ROW)
        anti = node.kind is OpKind.ANTI_JOIN
        if node.info.get("quantifier") == "exists":
            has_rows = any(batch.length for batch in right_batches)
            return left_batches if has_rows != anti else []
        inner_keys = set()
        saw_null = False
        total_right = 0
        for batch in right_batches:
            total_right += batch.length
            if not batch.columns:
                # Rows without columns read as a NULL first value.
                saw_null = saw_null or batch.length > 0
                continue
            for value in next(iter(batch.columns.values())):
                if value is None:
                    saw_null = True
                else:
                    inner_keys.add(_semi_join_key(value))
        if anti and not total_right:
            return left_batches
        if anti and saw_null:
            return []
        probe = self._node_batch_compiled(
            node, "probe", lambda: compile_expression_batch(node.info["probe"])
        )
        output: List[RowBatch] = []
        for batch in left_batches:
            values = probe(self._batch_context(batch))
            selection = [
                position
                for position, value in enumerate(values)
                if value is not None
                and (_semi_join_key(value) in inner_keys) != anti
            ]
            if len(selection) == batch.length:
                output.append(batch)
            elif selection:
                output.append(_gather(batch, selection))
        return output

    def _batch_join_generic(
        self, node: PhysicalNode, left_batches: List[RowBatch], right_batches: List[RowBatch]
    ) -> List[RowBatch]:
        """Nested-loop join over batches (also: hash join without equi keys)."""
        if not _uniform_schema(left_batches) or not _uniform_schema(right_batches):
            return batches_from_rows(
                self._join_rows(
                    node,
                    rows_from_batches(left_batches),
                    rows_from_batches(right_batches),
                    _EMPTY_ROW,
                ),
                self.batch_size,
            )
        left = _concat(left_batches)
        right = _concat(right_batches)
        join_type = node.info.get("join_type", "INNER")
        pad_left = join_type in ("LEFT", "FULL")
        pad_right = join_type in ("RIGHT", "FULL")
        check = self._node_batch_predicate(node, "condition")

        combined_keys, sides = _combined_schema(left, right)
        columns: Dict[str, List[object]] = {key: [] for key in combined_keys}
        matched_right: set = set()
        length = 0
        for position in range(left.length):
            # Broadcast this left row against the whole right side and
            # evaluate the join condition as one chunk.  An empty right
            # side is never evaluated (zero pairs, like the row executor).
            if right.length:
                broadcast = {
                    key: ([source[position]] * right.length if side == "l" else source)
                    for key, side, source in sides
                }
                selection = check(
                    BatchContext(broadcast, right.length, self._run_subquery)
                )
            else:
                selection = []
            for right_position in selection:
                matched_right.add(right_position)
                for key, side, source in sides:
                    columns[key].append(
                        source[right_position] if side == "r" else source[position]
                    )
            length += len(selection)
            if not len(selection) and pad_left:
                for key, side, source in sides:
                    columns[key].append(source[position] if side == "l" else None)
                length += 1
        if pad_right:
            for position in range(right.length):
                if position not in matched_right:
                    for key, side, source in sides:
                        columns[key].append(source[position] if side == "r" else None)
                    length += 1
        return _split(RowBatch(columns, length), self.batch_size)

    def _key_columns(
        self, batch: RowBatch, references: List[ast.ColumnRef]
    ) -> Optional[List[List[object]]]:
        """Resolve join-key columns, ``None`` when any reference is unknown
        (the row executor's ``_hash_key`` treats that as a NULL key)."""
        if not batch.length:
            return None
        context = BatchContext(batch.columns, batch.length)
        try:
            return [resolve_batch_column(context, ref) for ref in references]
        except ExecutionError:
            return None

    # ------------------------------------------------------------------ folders

    def _batch_aggregate(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        input_batches = self._execute_batches(node.children[0], analyze, _EMPTY_ROW)
        group_keys: List[ast.Expression] = node.info.get("group_keys", [])
        aggregates: List[ast.FunctionCall] = node.info.get("aggregates", [])
        if node.info.get("deduplicate"):
            return self._batch_dedupe(input_batches)
        if not group_keys and not aggregates:
            return input_batches

        compiled = self._node_batch_compiled(
            node,
            "aggregate",
            lambda: (
                [compile_expression_batch(e) for e in group_keys],
                [
                    compile_expression_batch(a.arguments[0])
                    if (not a.star and a.arguments)
                    else None
                    for a in aggregates
                ],
            ),
        )
        key_fns, argument_fns = compiled

        fast = self._numpy_aggregate(
            input_batches, group_keys, aggregates, key_fns, argument_fns
        )
        if fast is not None:
            return fast

        groups: Dict[Tuple, List[List[object]]] = {}  # key -> per-agg value lists
        group_order: List[Tuple] = []
        group_raw: Dict[Tuple, List[object]] = {}  # key -> raw group-key values
        group_sizes: Dict[Tuple, int] = {}
        for batch in input_batches:
            context = self._batch_context(batch)
            key_columns = [fn(context) for fn in key_fns]
            argument_columns = [
                fn(context) if fn is not None else None for fn in argument_fns
            ]
            for position in range(batch.length):
                raw = [column[position] for column in key_columns]
                key = tuple(_normalise_value(value) for value in raw)
                record = groups.get(key)
                if record is None:
                    record = [[] for _ in aggregates]
                    groups[key] = record
                    group_order.append(key)
                    group_raw[key] = raw
                    group_sizes[key] = 0
                group_sizes[key] += 1
                for slot, column in enumerate(argument_columns):
                    record[slot].append(1 if column is None else column[position])

        total_rows = sum(batch.length for batch in input_batches)
        if not group_keys and not total_rows:
            # Aggregates over an empty input produce one row of "empty" values.
            key = ()
            groups[key] = [[] for _ in aggregates]
            group_order.append(key)
            group_raw[key] = []
            group_sizes[key] = 0

        output_rows: List[Row] = []
        for key in group_order:
            raw = group_raw[key]
            size = group_sizes[key]
            result: Row = {}
            for expression, value in zip(group_keys, raw):
                name = print_expression(expression)
                if not size:
                    value = None
                result[name] = value
                if isinstance(expression, ast.ColumnRef):
                    qualified = (
                        f"{expression.table}.{expression.column}"
                        if expression.table
                        else expression.column
                    )
                    result[qualified] = value
                    result[expression.column] = value
            for aggregate, values in zip(aggregates, groups[key]):
                result[print_expression(aggregate)] = fold_aggregate(aggregate, values)
            output_rows.append(result)
        return batches_from_rows(output_rows, self.batch_size)

    def _numpy_aggregate(
        self,
        input_batches: List[RowBatch],
        group_keys: List[ast.Expression],
        aggregates: List[ast.FunctionCall],
        key_fns,
        argument_fns,
    ) -> Optional[List[RowBatch]]:
        """Grouped reductions over typed arrays; ``None`` = generic path.

        Eligibility is strict so semantics never change: every group-key and
        argument column must be a NULL-free (keys) typed array, aggregates
        limited to non-DISTINCT COUNT/SUM/AVG/MIN/MAX, SUM/AVG to int64
        arguments (float sums are order-dependent, Python big-int sums are
        exact), MIN/MAX to int64 / NaN-free float64.  The reduction itself
        (np.add/minimum/maximum.reduceat over first-appearance group codes)
        and the output rows reproduce ``fold_aggregate`` exactly.
        """
        if not arrays.numpy_enabled() or not input_batches:
            return None
        if not _uniform_schema(input_batches):
            return None
        for aggregate in aggregates:
            name = aggregate.name.upper()
            if aggregate.distinct or name not in _FAST_AGGREGATES:
                return None
            if aggregate.star:
                if name != "COUNT":
                    return None
            elif not aggregate.arguments:
                return None
        combined = _concat(input_batches)
        if not combined.length:
            return None
        context = self._batch_context(combined)
        key_columns = [fn(context) for fn in key_fns]
        for column in key_columns:
            if not isinstance(column, arrays.ArrayColumn) or column.has_nulls():
                return None
        specs = []
        for aggregate, fn in zip(aggregates, argument_fns):
            name = aggregate.name.upper()
            if fn is None:
                specs.append((name, True, None))
                continue
            column = fn(context)
            if not isinstance(column, arrays.ArrayColumn):
                return None
            if name in ("SUM", "AVG") and column.kind != "i":
                return None
            if name in ("MIN", "MAX") and column.kind == "b":
                return None
            specs.append((name, False, column))
        reduced = arrays.grouped_aggregate(key_columns, specs, combined.length)
        if reduced is None:
            return None
        group_count, first_positions, per_aggregate = reduced
        output_rows: List[Row] = []
        for group in range(group_count):
            position = first_positions[group]
            result: Row = {}
            for expression, column in zip(group_keys, key_columns):
                value = column[position]
                result[print_expression(expression)] = value
                if isinstance(expression, ast.ColumnRef):
                    qualified = (
                        f"{expression.table}.{expression.column}"
                        if expression.table
                        else expression.column
                    )
                    result[qualified] = value
                    result[expression.column] = value
            for aggregate, values in zip(aggregates, per_aggregate):
                result[print_expression(aggregate)] = values[group]
            output_rows.append(result)
        return batches_from_rows(output_rows, self.batch_size)

    # ------------------------------------------------------------------ combinators

    def _batch_sort(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        batches = self._execute_batches(node.children[0], analyze, _EMPTY_ROW)
        keys: List[Tuple[ast.Expression, bool]] = node.info.get("sort_keys", [])
        if not keys:
            sorted_batches = batches
        elif not batches:
            sorted_batches = []
        else:
            compiled = self._node_batch_compiled(
                node,
                "sort",
                lambda: [
                    (compile_expression_batch(expression), expression, descending)
                    for expression, descending in keys
                ],
            )
            if _uniform_schema(batches):
                # Evaluate the sort keys over one combined chunk; typed key
                # columns order via np.lexsort (NULLS FIRST rank encoding,
                # per-key DESC negation, stable position tiebreak — exactly
                # _SortKey/_ComparableKey), anything else via the decorated
                # Python sort over the same value columns.
                combined = _concat(batches)
                context = self._batch_context(combined)
                value_columns = [
                    (self._safe_batch_values(fn, expression, context), descending)
                    for fn, expression, descending in compiled
                ]
                order = arrays.sort_order(value_columns)
                if order is None:
                    decorated = []
                    for position in range(combined.length):
                        components = [
                            (sortable((column[position],))[0], descending)
                            for column, descending in value_columns
                        ]
                        decorated.append(
                            (_ComparableKey(components, position), position)
                        )
                    decorated.sort(key=lambda item: item[0])
                    order = [position for _, position in decorated]
                sorted_batches = _split(_gather(combined, order), self.batch_size)
            else:
                decorated = []
                offset = 0
                for batch in batches:
                    context = self._batch_context(batch)
                    value_columns = [
                        (self._safe_batch_values(fn, expression, context), descending)
                        for fn, expression, descending in compiled
                    ]
                    for position in range(batch.length):
                        components = [
                            (sortable((column[position],))[0], descending)
                            for column, descending in value_columns
                        ]
                        global_position = offset + position
                        decorated.append(
                            (_ComparableKey(components, global_position), global_position)
                        )
                    offset += batch.length
                decorated.sort(key=lambda item: item[0])
                order = [global_position for _, global_position in decorated]
                sorted_batches = _gather_global(batches, order, self.batch_size)
        if node.kind is OpKind.TOP_N:
            limit_expression = node.info.get("limit")
            limit_value = (
                evaluate(limit_expression, self._scalar_context())
                if limit_expression is not None
                else None
            )
            if isinstance(limit_value, (int, float)):
                end = int(limit_value)
                if end < 0:
                    # SQLite semantics (the dialect under test): a negative
                    # LIMIT means "no limit", exactly as the row executor.
                    return sorted_batches
                return _slice_batches(sorted_batches, 0, end)
        return sorted_batches

    def _safe_batch_values(self, fn, expression, context: BatchContext) -> List[object]:
        """Sort-key values with the row executor's per-row error absorption.

        The row path evaluates each sort key under ``try/except
        ExecutionError -> None``; a whole-chunk evaluation that raises is
        therefore redone row by row so only the failing rows become NULL.
        """
        try:
            return fn(context)
        except ExecutionError:
            values = []
            for row in context.rows():
                try:
                    values.append(
                        evaluate(expression, EvaluationContext(row, context.subquery_executor))
                    )
                except ExecutionError:
                    values.append(None)
            return values

    def _batch_limit(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        batches = self._execute_batches(node.children[0], analyze, _EMPTY_ROW)
        context = self._scalar_context()
        offset_expression = node.info.get("offset")
        limit_expression = node.info.get("limit")
        start = 0
        if offset_expression is not None:
            offset_value = evaluate(offset_expression, context)
            if isinstance(offset_value, (int, float)):
                start = max(int(offset_value), 0)
        end: Optional[int] = None
        if limit_expression is not None:
            limit_value = evaluate(limit_expression, context)
            # A negative LIMIT means "no limit" (SQLite semantics), exactly
            # as the row executor slices.
            if isinstance(limit_value, (int, float)) and int(limit_value) >= 0:
                end = start + int(limit_value)
        return _slice_batches(batches, start, end)

    def _batch_distinct(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        return self._batch_dedupe(
            self._execute_batches(node.children[0], analyze, _EMPTY_ROW)
        )

    def _batch_dedupe(self, batches: List[RowBatch]) -> List[RowBatch]:
        seen = set()
        order: List[int] = []
        offset = 0
        for batch in batches:
            value_lists = list(batch.columns.values())
            for position in range(batch.length):
                key = tuple(
                    _normalise_value(values[position]) for values in value_lists
                )
                if key not in seen:
                    seen.add(key)
                    order.append(offset + position)
            offset += batch.length
        if offset and len(order) == offset:
            return batches
        return _gather_global(batches, order, self.batch_size)

    def _batch_append(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        outputs = [
            self._execute_batches(child, analyze, _EMPTY_ROW)
            for child in node.children
        ]
        template: Optional[Tuple[str, ...]] = None
        for batches in outputs:
            for batch in batches:
                template = batch.schema()
                break
            if template is not None:
                break
        combined: List[RowBatch] = []
        for batches in outputs:
            for batch in batches:
                schema = batch.schema()
                if (
                    template is None
                    or schema == template
                    or len(schema) != len(template)
                ):
                    combined.append(batch)
                else:
                    # Align columns by position with the first child.
                    combined.append(
                        RowBatch(
                            dict(zip(template, batch.columns.values())), batch.length
                        )
                    )
        return combined

    def _batch_intersect(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        return self._batch_set_operation(node, analyze, keep_members=True)

    def _batch_except(self, node: PhysicalNode, analyze: bool) -> List[RowBatch]:
        return self._batch_set_operation(node, analyze, keep_members=False)

    def _batch_set_operation(
        self, node: PhysicalNode, analyze: bool, keep_members: bool
    ) -> List[RowBatch]:
        left = self._execute_batches(node.children[0], analyze, _EMPTY_ROW)
        right = self._execute_batches(node.children[1], analyze, _EMPTY_ROW)
        right_keys = set()
        for batch in right:
            value_lists = list(batch.columns.values())
            for position in range(batch.length):
                right_keys.add(
                    tuple(_normalise_value(values[position]) for values in value_lists)
                )
        filtered: List[RowBatch] = []
        for batch in left:
            value_lists = list(batch.columns.values())
            selection = [
                position
                for position in range(batch.length)
                if (
                    tuple(_normalise_value(values[position]) for values in value_lists)
                    in right_keys
                )
                == keep_members
            ]
            if len(selection) == batch.length:
                filtered.append(batch)
            elif selection:
                filtered.append(_gather(batch, selection))
        return self._batch_dedupe(filtered)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _key_at(key_columns: List[List[object]], position: int) -> Optional[Tuple]:
    """The normalised join key at *position*; ``None`` when any part is NULL."""
    values = []
    for column in key_columns:
        value = column[position]
        if value is None:
            return None
        values.append(_normalise_value(value))
    return tuple(values)


def _combined_schema(left: RowBatch, right: RowBatch):
    """The ``{**left, **right}`` schema of joined rows.

    Returns ``(keys, sides)`` where ``sides`` holds one ``(key, side,
    source_column)`` triple per output column; duplicated keys read from the
    right side, mirroring dict-merge semantics.  An empty side contributes
    no columns, exactly as ``_null_row_like([])`` pads with nothing.
    """
    sides: List[Tuple[str, str, List[object]]] = []
    keys: List[str] = []
    left_columns = left.columns if left.length else {}
    right_columns = right.columns if right.length else {}
    for key, values in left_columns.items():
        if key in right_columns:
            sides.append((key, "r", right_columns[key]))
        else:
            sides.append((key, "l", values))
        keys.append(key)
    for key, values in right_columns.items():
        if key not in left_columns:
            sides.append((key, "r", values))
            keys.append(key)
    return keys, sides


def _slice_batches(
    batches: List[RowBatch], start: int, end: Optional[int]
) -> List[RowBatch]:
    """``rows[start:end]`` over a batch list (LIMIT / OFFSET / TOP-N)."""
    output: List[RowBatch] = []
    offset = 0
    for batch in batches:
        if end is not None and offset >= end:
            break
        low = max(start - offset, 0)
        high = batch.length if end is None else min(end - offset, batch.length)
        if low < high:
            if low == 0 and high == batch.length:
                output.append(batch)
            else:
                output.append(
                    RowBatch(
                        {
                            key: values[low:high]
                            for key, values in batch.columns.items()
                        },
                        high - low,
                    )
                )
        offset += batch.length
    return output


_FAST_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

_BATCH_HANDLERS: Dict[OpKind, Callable] = {
    OpKind.SEQ_SCAN: VectorizedExecutor._batch_seq_scan,
    OpKind.INDEX_SCAN: VectorizedExecutor._batch_index_scan,
    OpKind.INDEX_ONLY_SCAN: VectorizedExecutor._batch_index_scan,
    OpKind.NESTED_LOOP_JOIN: VectorizedExecutor._batch_nested_loop_join,
    OpKind.HASH_JOIN: VectorizedExecutor._batch_hash_join,
    OpKind.MERGE_JOIN: VectorizedExecutor._batch_merge_join,
    OpKind.SEMI_JOIN: VectorizedExecutor._batch_semi_join,
    OpKind.ANTI_JOIN: VectorizedExecutor._batch_semi_join,
    OpKind.HASH_AGGREGATE: VectorizedExecutor._batch_aggregate,
    OpKind.SORT_AGGREGATE: VectorizedExecutor._batch_aggregate,
    OpKind.SORT: VectorizedExecutor._batch_sort,
    OpKind.TOP_N: VectorizedExecutor._batch_sort,
    OpKind.LIMIT: VectorizedExecutor._batch_limit,
    OpKind.DISTINCT: VectorizedExecutor._batch_distinct,
    OpKind.APPEND: VectorizedExecutor._batch_append,
    OpKind.INTERSECT: VectorizedExecutor._batch_intersect,
    OpKind.EXCEPT: VectorizedExecutor._batch_except,
    OpKind.PROJECT: VectorizedExecutor._batch_project,
    OpKind.FILTER: VectorizedExecutor._batch_filter,
    OpKind.MATERIALIZE: VectorizedExecutor._batch_passthrough,
    OpKind.GATHER: VectorizedExecutor._batch_passthrough,
    OpKind.HASH_BUILD: VectorizedExecutor._batch_passthrough,
}
