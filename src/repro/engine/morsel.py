"""Morsel-driven intra-operator parallelism: the exchange operator.

The vectorized executor already moves data in :class:`~repro.engine.vectorized.RowBatch`
chunks; this module fans those chunks — *morsels* — across a pool of
workers for the operators where per-chunk work is independent: seq-scan
filters, standalone filters, and the hash-join build.  The shape follows
EVA's queue-per-stage exchange-operator idiom (without the Ray
dependency): morsels are tagged with a sequence number and pushed onto an
input queue, one **stage-complete sentinel** per worker follows them, each
worker applies the stage function and emits ``(sequence, result)`` —
or the raised exception — onto the output queue, and the consumer drains
the queue until it has seen every worker's sentinel.

Determinism rules, proven by tests/test_parallel_equivalence.py and
tests/test_morsel_exchange.py against the serial vectorized oracle:

* Results are reassembled **by sequence number**, so operator output order
  is identical to the serial loop no matter which worker finished first.
* When stage calls fail, every morsel still runs to completion and the
  error with the **lowest sequence number** is re-raised — the same error a
  serial left-to-right loop would have surfaced first.
* The hash-join build merges per-morsel partial tables in morsel order, so
  every bucket's position list stays ascending — byte-identical to the
  serial build (and therefore to the row executor's bucket lists).

Workers are threads, not processes: morsels are zero-copy slices of shared
immutable snapshots, and the batch-compiled predicate closures are pure
per-call, so the engine-level pool trades GIL-bound CPU overlap for zero
serialization.  (Process-level parallelism lives one layer up, in
:mod:`repro.parallel` — whole campaign rounds per worker.)  Predicates that
embed subqueries stay on the serial path: subquery execution re-enters the
executor, which is not a thread-safe surface.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.vectorized import (
    RowBatch,
    VectorizedExecutor,
    _key_at,
)
from repro.optimizer.physical import PhysicalNode
from repro.sqlparser import ast_nodes as ast

#: Below this many total input rows a morsel fan-out costs more than the
#: stage itself; the serial path runs instead.
MORSEL_MIN_ROWS = 256

#: Hard cap on engine-level workers; morsel stages are GIL-bound Python,
#: so a few threads capture the available overlap.
MAX_MORSEL_WORKERS = 4


def default_morsel_workers() -> int:
    """The default exchange width for this machine (always >= 2, so the
    exchange machinery is exercised even on single-core hosts)."""
    return max(2, min(MAX_MORSEL_WORKERS, os.cpu_count() or 1))


def morsel_ranges(total: int, size: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into contiguous ``(start, stop)`` morsels."""
    if total <= 0:
        return []
    size = max(1, size)
    return [(start, min(start + size, total)) for start in range(0, total, size)]


class _Sentinel:
    """Stage-complete marker; one per worker flows input -> output queue."""

    __slots__ = ()


_STAGE_COMPLETE = _Sentinel()


class MorselExchange:
    """Fan a stage function over a morsel sequence, deterministically.

    ``map(items, stage)`` behaves exactly like ``[stage(item) for item in
    items]`` — same results, same order, same first error — but runs the
    stage calls on ``workers`` threads.  The exchange is reusable and
    creates its worker threads per call (stages are short-lived; a
    persistent pool would have to outlive executors that are created per
    statement in places).
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("MorselExchange needs at least one worker")
        self.workers = workers or default_morsel_workers()

    def map(self, items: Sequence[object], stage: Callable[[object], object]) -> List[object]:
        if not items:
            return []
        if len(items) == 1 or self.workers == 1:
            return [stage(item) for item in items]
        inputs: "queue.SimpleQueue" = queue.SimpleQueue()
        outputs: "queue.SimpleQueue" = queue.SimpleQueue()
        for sequence, item in enumerate(items):
            inputs.put((sequence, item))
        for _ in range(self.workers):
            inputs.put(_STAGE_COMPLETE)

        def worker() -> None:
            while True:
                task = inputs.get()
                if isinstance(task, _Sentinel):
                    # Propagate the stage-complete sentinel so the consumer
                    # knows this worker drained its share of the queue.
                    outputs.put(_STAGE_COMPLETE)
                    return
                sequence, item = task
                try:
                    outputs.put((sequence, False, stage(item)))
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    # Error propagation through the queue: the morsel's
                    # failure travels as a value; the worker keeps draining
                    # so every morsel is accounted for.
                    outputs.put((sequence, True, error))

        threads = [
            threading.Thread(target=worker, name=f"morsel-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        results: Dict[int, object] = {}
        errors: Dict[int, BaseException] = {}
        seen_sentinels = 0
        while seen_sentinels < len(threads):
            message = outputs.get()
            if isinstance(message, _Sentinel):
                seen_sentinels += 1
                continue
            sequence, failed, payload = message
            if failed:
                errors[sequence] = payload
            else:
                results[sequence] = payload
        for thread in threads:
            thread.join()
        if errors:
            # Deterministic error selection: the lowest-sequence failure is
            # what a serial left-to-right loop raises first.
            raise errors[min(errors)]
        return [results[sequence] for sequence in range(len(items))]


def _has_subquery(expression: Optional[ast.Expression]) -> bool:
    """Whether *expression* embeds a subquery (re-enters the executor)."""
    return any(
        isinstance(node, (ast.InSubquery, ast.ScalarSubquery, ast.Exists))
        for node in ast.iter_expressions(expression)
    )


class ParallelExecutor(VectorizedExecutor):
    """The vectorized executor with morsel-driven operator parallelism.

    Drop-in for :class:`VectorizedExecutor` (which is itself drop-in for
    the row oracle): identical results, row order, and ``EXPLAIN ANALYZE``
    counts.  Selected with ``executor="parallel"``; the serial vectorized
    engine is the correctness oracle (tests/test_parallel_equivalence.py).
    """

    def __init__(
        self,
        database,
        planner: Optional[object] = None,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        morsel_min_rows: int = MORSEL_MIN_ROWS,
    ) -> None:
        if batch_size is None:
            super().__init__(database, planner)
        else:
            super().__init__(database, planner, batch_size)
        self.exchange = MorselExchange(workers)
        self.morsel_min_rows = morsel_min_rows

    # ------------------------------------------------------------------ gating

    def _exchange_worthwhile(self, batches: List[RowBatch]) -> bool:
        """Fan out only when there are >= 2 morsels of meaningful size."""
        if len(batches) < 2:
            return False
        return sum(batch.length for batch in batches) >= self.morsel_min_rows

    # ------------------------------------------------------------------ filters

    def _apply_filter(
        self, node: PhysicalNode, key: str, batches: List[RowBatch]
    ) -> List[RowBatch]:
        from repro.engine.vectorized import _gather

        if not self._exchange_worthwhile(batches) or _has_subquery(
            node.info.get(key)
        ):
            return super()._apply_filter(node, key, batches)
        select = self._node_batch_predicate(node, key)

        def stage(batch: RowBatch) -> Optional[RowBatch]:
            selection = select(self._batch_context(batch))
            if len(selection) == batch.length:
                return batch
            if len(selection):
                return _gather(batch, selection)
            return None

        survivors = self.exchange.map(batches, stage)
        return [batch for batch in survivors if batch is not None]

    # ------------------------------------------------------------------ joins

    def _hash_build(
        self, right: RowBatch, right_keys: Optional[List[List[object]]]
    ) -> Dict[Tuple, List[int]]:
        if right_keys is None:
            return {}
        if right.length < max(self.morsel_min_rows, 2 * self.batch_size):
            return super()._hash_build(right, right_keys)
        ranges = morsel_ranges(right.length, self.batch_size)
        if len(ranges) < 2:
            return super()._hash_build(right, right_keys)

        def stage(bounds: Tuple[int, int]) -> Dict[Tuple, List[int]]:
            start, stop = bounds
            partial: Dict[Tuple, List[int]] = {}
            for position in range(start, stop):
                key = _key_at(right_keys, position)
                if key is not None:
                    partial.setdefault(key, []).append(position)
            return partial

        build: Dict[Tuple, List[int]] = {}
        # Merge the partial tables in morsel order: morsels are contiguous
        # ascending position ranges, so every bucket list ends up sorted
        # ascending — byte-identical to the serial single-pass build.
        for partial in self.exchange.map(ranges, stage):
            for key, positions in partial.items():
                bucket = build.get(key)
                if bucket is None:
                    build[key] = positions
                else:
                    bucket.extend(positions)
        return build
