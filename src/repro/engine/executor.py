"""A tree-walking executor for physical plans.

The executor interprets :class:`~repro.optimizer.physical.PhysicalNode` trees
against a :class:`~repro.catalog.database.Database`.  Rows are dictionaries:
scan operators key columns as ``"alias.column"``; projections and aggregates
key their outputs by the select-item name.

When ``analyze=True`` each node's :class:`~repro.optimizer.physical.RuntimeStats`
is filled in (actual rows, wall-clock milliseconds), which the dialects expose
through ``EXPLAIN ANALYZE``-style properties — the Listing 4 / query 11
analysis of the paper relies on these timings.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.catalog.database import Database
from repro.catalog.schema import Column, DataType, TableSchema
from repro.engine.expressions import (
    EvaluationContext,
    compile_expression,
    compile_predicate,
    evaluate,
    evaluate_predicate,
    resolve_column,
)
from repro.errors import ExecutionError
from repro.optimizer.physical import OpKind, PhysicalNode
from repro.sqlparser import ast_nodes as ast
from repro.sqlparser.printer import print_expression
from repro.storage.index import sortable

Row = Dict[str, object]


class Executor:
    """Executes physical plans against a database."""

    #: Optional pinned :class:`~repro.catalog.database.DatabaseView` set by
    #: the serving layer for snapshot-isolated reads.  The row executor scans
    #: the live heap and ignores it (it is the semantics oracle and only ever
    #: runs under exclusive access); the vectorized executor honors it.
    snapshot_view = None

    def __init__(self, database: Database, planner: Optional[object] = None) -> None:
        self.database = database
        # The planner is only needed to plan subqueries found in expressions;
        # it is created lazily to avoid an import cycle.
        self._planner = planner

    # ------------------------------------------------------------------ public API

    def execute(
        self,
        plan: PhysicalNode,
        analyze: bool = False,
        outer_row: Optional[Row] = None,
    ) -> List[Row]:
        """Execute *plan* and return its output rows."""
        started = time.perf_counter()
        rows = self._execute_node(plan, analyze=analyze, outer_row=outer_row or {})
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if analyze:
            plan.runtime.executed = True
            plan.runtime.actual_rows = len(rows)
            plan.runtime.actual_time_ms = elapsed_ms
            plan.runtime.loops = max(plan.runtime.loops, 1)
        return rows

    # ------------------------------------------------------------------ dispatch

    def _execute_node(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        started = time.perf_counter()
        handler = _HANDLERS.get(node.kind)
        if handler is None:
            raise ExecutionError(f"no executor for operator {node.kind.value}")
        rows = handler(self, node, analyze, outer_row)
        if analyze:
            node.runtime.executed = True
            node.runtime.actual_rows = len(rows)
            node.runtime.actual_time_ms = (time.perf_counter() - started) * 1000.0
            node.runtime.loops += 1
        return rows

    def _context(self, row: Row, outer_row: Row) -> EvaluationContext:
        # The current row's columns take precedence over (and are listed
        # before) the outer query's columns, so unqualified references inside
        # subqueries resolve to the inner scope first.  Without an outer row
        # (every top-level query) the row is used as-is: evaluation never
        # mutates context rows, so the copy would be pure overhead.
        if not outer_row:
            return EvaluationContext(row, self._run_subquery)
        merged = dict(row)
        for key, value in outer_row.items():
            merged.setdefault(key, value)
        return EvaluationContext(merged, self._run_subquery)

    def _node_predicate(self, node: PhysicalNode, key: str):
        """The compiled predicate for ``node.info[key]``, cached on the node.

        Physical plans are shared across executions by the prepared-query
        cache, so the compiled closure is computed once per (node, key) and
        reused by every later execution of the same plan.
        """
        cache = getattr(node, "_compiled", None)
        if cache is None:
            cache = {}
            node._compiled = cache
        compiled = cache.get(key)
        if compiled is None:
            compiled = compile_predicate(node.info.get(key))
            cache[key] = compiled
        return compiled

    def _node_scalar(self, node: PhysicalNode, key: str):
        """Like :meth:`_node_predicate` but compiling a scalar expression
        (the semi-join probe); cached under a distinct key space."""
        cache = getattr(node, "_compiled", None)
        if cache is None:
            cache = {}
            node._compiled = cache
        cache_key = ("scalar", key)
        compiled = cache.get(cache_key)
        if compiled is None:
            compiled = compile_expression(node.info[key])
            cache[cache_key] = compiled
        return compiled

    def _run_subquery(self, query: ast.SelectStatement, outer_row: Row) -> List[Row]:
        planner = self._get_planner()
        # Predicate subqueries may legally reference the outer row, so they
        # plan through the scope-relaxed entry point.
        if hasattr(planner, "plan_subquery"):
            plan = planner.plan_subquery(query)
        else:  # pragma: no cover - custom planner objects
            plan = planner.plan_select(query)
        return self.execute(plan, analyze=False, outer_row=outer_row)

    def _get_planner(self):
        if self._planner is None:
            from repro.optimizer.planner import Planner

            self._planner = Planner(self.database)
        return self._planner

    # ------------------------------------------------------------------ producers

    def _execute_seq_scan(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        table = self.database.table(node.info["table"])
        alias = node.info.get("alias") or node.info["table"]
        prefix = alias + "."
        output: List[Row] = []
        append = output.append
        if node.info.get("filter") is None:
            for _, stored in table.scan():
                append({prefix + column: value for column, value in stored.items()})
            return output
        check = self._node_predicate(node, "filter")
        context = self._context
        for _, stored in table.scan():
            row = {prefix + column: value for column, value in stored.items()}
            if check(context(row, outer_row)):
                append(row)
        return output

    def _execute_index_scan(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        table = self.database.table(node.info["table"])
        alias = node.info.get("alias") or node.info["table"]
        index = self.database.index(node.info["index"])
        index_condition = node.info.get("index_condition")
        predicate = node.info.get("filter")
        bounds = _extract_bounds(index_condition, index.definition.leading_column())
        output: List[Row] = []
        if bounds is not None and bounds.equality_values is not None:
            row_ids: List[int] = []
            for value in bounds.equality_values:
                row_ids.extend(index.prefix_lookup((value,)))
        else:
            low = bounds.low if bounds else None
            high = bounds.high if bounds else None
            include_low = bounds.include_low if bounds else True
            include_high = bounds.include_high if bounds else True
            row_ids = [
                row_id
                for _, row_id in index.range_scan(low, high, include_low, include_high)
            ]
        check_index = (
            self._node_predicate(node, "index_condition")
            if index_condition is not None
            else None
        )
        check_filter = (
            self._node_predicate(node, "filter") if predicate is not None else None
        )
        prefix = alias + "."
        append = output.append
        for row_id in row_ids:
            stored = table.get(row_id)
            row = {prefix + column: value for column, value in stored.items()}
            context = self._context(row, outer_row)
            if check_index is not None and not check_index(context):
                continue
            if check_filter is None or check_filter(context):
                append(row)
        return output

    def _execute_values(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        columns: List[str] = node.info.get("columns", [])
        output: List[Row] = []
        for literal_row in node.info.get("rows", []):
            values = [
                evaluate(expression, self._context({}, outer_row))
                for expression in literal_row
            ]
            if columns:
                output.append(dict(zip(columns, values)))
            else:
                output.append({f"column{i}": value for i, value in enumerate(values, 1)})
        return output

    def _execute_subquery_scan(
        self, node: PhysicalNode, analyze: bool, outer_row: Row
    ) -> List[Row]:
        alias = node.info.get("alias", "subquery")
        inner_rows = self._execute_node(node.children[0], analyze, outer_row)
        predicate = node.info.get("filter")
        output: List[Row] = []
        for inner in inner_rows:
            row = {f"{alias}.{_strip_qualifier(key)}": value for key, value in inner.items()}
            if predicate is None or evaluate_predicate(predicate, self._context(row, outer_row)):
                output.append(row)
        return output

    def _execute_result(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        context = self._context({}, outer_row)
        where = node.info.get("where")
        if where is not None and not evaluate_predicate(where, context):
            return []
        row: Row = {}
        for expression, name in node.info.get("items", []):
            row[name] = evaluate(expression, context)
        return [row]

    # ------------------------------------------------------------------ joins

    def _execute_nested_loop_join(
        self, node: PhysicalNode, analyze: bool, outer_row: Row
    ) -> List[Row]:
        left_rows = self._execute_node(node.children[0], analyze, outer_row)
        right_rows = self._execute_node(node.children[1], analyze, outer_row)
        return self._join_rows(node, left_rows, right_rows, outer_row)

    def _execute_hash_join(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        left_rows = self._execute_node(node.children[0], analyze, outer_row)
        right_rows = self._execute_node(node.children[1], analyze, outer_row)
        return self._hash_join_rows(node, left_rows, right_rows, outer_row)

    def _hash_join_rows(
        self,
        node: PhysicalNode,
        left_rows: List[Row],
        right_rows: List[Row],
        outer_row: Row,
    ) -> List[Row]:
        """The hash-join core over materialized inputs (shared with the
        vectorized executor's row-fallback path)."""
        condition = node.info.get("condition")
        keys = _equi_join_keys(condition)
        if not keys:
            return self._join_rows(node, left_rows, right_rows, outer_row)
        # Key references and the compiled join condition are hoisted out of
        # the probe loop: they are per-node constants, not per-row facts.
        right_references = [right_key for _, right_key in keys]
        left_references = [left_key for left_key, _ in keys]
        check = self._node_predicate(node, "condition")
        context = self._context
        # Build a hash table on the right side.
        build: Dict[Tuple, List[Row]] = {}
        for right in right_rows:
            key = _hash_key(right, right_references, outer_row)
            if key is None:
                continue
            build.setdefault(key, []).append(right)
        join_type = node.info.get("join_type", "INNER")
        right_null_row = _null_row_like(right_rows)
        left_null_row = _null_row_like(left_rows)
        output: List[Row] = []
        append = output.append
        empty: List[Row] = []
        for left in left_rows:
            key = _hash_key(left, left_references, outer_row)
            matches = build.get(key, empty) if key is not None else empty
            matched = False
            for right in matches:
                combined = {**left, **right}
                if check(context(combined, outer_row)):
                    matched = True
                    append(combined)
            if not matched and join_type in ("LEFT", "FULL"):
                append({**left, **right_null_row})
        if join_type in ("RIGHT", "FULL"):
            for right in right_rows:
                has_match = any(
                    check(context({**left, **right}, outer_row))
                    for left in left_rows
                )
                if not has_match:
                    append({**left_null_row, **right})
        return output

    def _execute_merge_join(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        # Correctness first: a merge join produces the same rows as a hash join.
        return self._execute_hash_join(node, analyze, outer_row)

    def _execute_semi_join(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        left_rows = self._execute_node(node.children[0], analyze, outer_row)
        right_rows = self._execute_node(node.children[1], analyze, outer_row)
        return self._semi_join_rows(node, left_rows, right_rows, outer_row)

    def _semi_join_rows(
        self,
        node: PhysicalNode,
        left_rows: List[Row],
        right_rows: List[Row],
        outer_row: Row,
    ) -> List[Row]:
        """Hash semi / null-aware anti join over materialized inputs.

        Replicates the three-valued semantics of the per-row
        ``IN`` / ``EXISTS`` predicate evaluation it decorrelates
        (:func:`repro.engine.expressions._evaluate_in_subquery`), but builds
        the inner key set once instead of re-running the subquery per outer
        row.  Output order is the outer input's order, exactly as a filter
        preserves it (shared with the vectorized executor's row fallback).
        """
        anti = node.kind is OpKind.ANTI_JOIN
        if node.info.get("quantifier") == "exists":
            # Uncorrelated EXISTS is a pure emptiness test on the inner side.
            keep = bool(right_rows) != anti
            return list(left_rows) if keep else []
        inner_keys = set()
        saw_null = False
        for right in right_rows:
            value = next(iter(right.values())) if right else None
            if value is None:
                saw_null = True
            else:
                inner_keys.add(_semi_join_key(value))
        if anti and not right_rows:
            # ``x NOT IN (empty)`` is TRUE for every x — even NULL.
            return list(left_rows)
        if anti and saw_null:
            # The NOT IN + inner-NULL trap: with a NULL in the inner
            # relation the predicate is never TRUE (matches are FALSE,
            # non-matches are NULL), so the result is empty.
            return []
        probe = self._node_scalar(node, "probe")
        context = self._context
        output: List[Row] = []
        append = output.append
        for left in left_rows:
            value = probe(context(left, outer_row))
            if value is None:
                # A NULL probe value never compares TRUE.
                continue
            if (_semi_join_key(value) in inner_keys) != anti:
                append(left)
        return output

    def _join_rows(
        self,
        node: PhysicalNode,
        left_rows: List[Row],
        right_rows: List[Row],
        outer_row: Row,
    ) -> List[Row]:
        check = self._node_predicate(node, "condition")
        context = self._context
        join_type = node.info.get("join_type", "INNER")
        right_null_row = _null_row_like(right_rows)
        left_null_row = _null_row_like(left_rows)
        output: List[Row] = []
        matched_right_ids: set = set()
        for left in left_rows:
            matched = False
            for right in right_rows:
                combined = {**left, **right}
                if check(context(combined, outer_row)):
                    matched = True
                    matched_right_ids.add(id(right))
                    output.append(combined)
            if not matched and join_type in ("LEFT", "FULL"):
                output.append({**left, **right_null_row})
        if join_type in ("RIGHT", "FULL"):
            for right in right_rows:
                if id(right) not in matched_right_ids:
                    output.append({**left_null_row, **right})
        return output

    # ------------------------------------------------------------------ folders

    def _execute_aggregate(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        input_rows = self._execute_node(node.children[0], analyze, outer_row)
        group_keys: List[ast.Expression] = node.info.get("group_keys", [])
        aggregates: List[ast.FunctionCall] = node.info.get("aggregates", [])
        if node.info.get("deduplicate"):
            return _dedupe_rows(input_rows)
        if not group_keys and not aggregates:
            return input_rows

        groups: Dict[Tuple, List[Row]] = {}
        group_order: List[Tuple] = []
        for row in input_rows:
            context = self._context(row, outer_row)
            key = tuple(
                _normalise_value(evaluate(expression, context)) for expression in group_keys
            )
            if key not in groups:
                groups[key] = []
                group_order.append(key)
            groups[key].append(row)

        if not group_keys and not input_rows:
            # Aggregates over an empty input produce one row of "empty" values.
            groups[()] = []
            group_order.append(())

        output: List[Row] = []
        for key in group_order:
            member_rows = groups[key]
            representative = member_rows[0] if member_rows else {}
            result: Row = {}
            for expression, _key_value in zip(group_keys, key):
                name = print_expression(expression)
                if member_rows:
                    value = evaluate(expression, self._context(representative, outer_row))
                else:
                    value = None
                result[name] = value
                if isinstance(expression, ast.ColumnRef):
                    qualified = (
                        f"{expression.table}.{expression.column}"
                        if expression.table
                        else expression.column
                    )
                    result[qualified] = value
                    result[expression.column] = value
            for aggregate in aggregates:
                result[print_expression(aggregate)] = self._compute_aggregate(
                    aggregate, member_rows, outer_row
                )
            output.append(result)
        return output

    def _compute_aggregate(
        self, aggregate: ast.FunctionCall, rows: List[Row], outer_row: Row
    ) -> object:
        if aggregate.star:
            values: List[object] = [1] * len(rows)
        else:
            argument = aggregate.arguments[0] if aggregate.arguments else None
            values = []
            for row in rows:
                if argument is None:
                    values.append(1)
                else:
                    values.append(evaluate(argument, self._context(row, outer_row)))
        return fold_aggregate(aggregate, values)

    # ------------------------------------------------------------------ combinators

    def _execute_sort(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        rows = self._execute_node(node.children[0], analyze, outer_row)
        keys: List[Tuple[ast.Expression, bool]] = node.info.get("sort_keys", [])
        sorted_rows = _sort_rows(rows, keys, lambda row: self._context(row, outer_row))
        if node.kind is OpKind.TOP_N:
            limit_expression = node.info.get("limit")
            limit_value = (
                evaluate(limit_expression, self._context({}, outer_row))
                if limit_expression is not None
                else None
            )
            if isinstance(limit_value, (int, float)) and int(limit_value) >= 0:
                return sorted_rows[: int(limit_value)]
            # SQLite semantics (the dialect under test): a negative LIMIT
            # means "no limit".
        return sorted_rows

    def _execute_limit(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        rows = self._execute_node(node.children[0], analyze, outer_row)
        context = self._context({}, outer_row)
        offset_expression = node.info.get("offset")
        limit_expression = node.info.get("limit")
        start = 0
        if offset_expression is not None:
            offset_value = evaluate(offset_expression, context)
            if isinstance(offset_value, (int, float)):
                start = max(int(offset_value), 0)
        end: Optional[int] = None
        if limit_expression is not None:
            limit_value = evaluate(limit_expression, context)
            # SQLite semantics (the dialect under test): a negative LIMIT
            # means "no limit" — only non-negative values bound the slice.
            if isinstance(limit_value, (int, float)) and int(limit_value) >= 0:
                end = start + int(limit_value)
        return rows[start:end]

    def _execute_distinct(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        return _dedupe_rows(self._execute_node(node.children[0], analyze, outer_row))

    def _execute_append(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        outputs = [self._execute_node(child, analyze, outer_row) for child in node.children]
        return _positional_union(outputs)

    def _execute_intersect(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        left = self._execute_node(node.children[0], analyze, outer_row)
        right = self._execute_node(node.children[1], analyze, outer_row)
        right_keys = {tuple(_normalise_value(v) for v in row.values()) for row in right}
        output = [
            row
            for row in left
            if tuple(_normalise_value(v) for v in row.values()) in right_keys
        ]
        return _dedupe_rows(output)

    def _execute_except(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        left = self._execute_node(node.children[0], analyze, outer_row)
        right = self._execute_node(node.children[1], analyze, outer_row)
        right_keys = {tuple(_normalise_value(v) for v in row.values()) for row in right}
        output = [
            row
            for row in left
            if tuple(_normalise_value(v) for v in row.values()) not in right_keys
        ]
        return _dedupe_rows(output)

    # ------------------------------------------------------------------ executors

    def _execute_filter(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        rows = self._execute_node(node.children[0], analyze, outer_row)
        check = self._node_predicate(node, "predicate")
        context = self._context
        return [row for row in rows if check(context(row, outer_row))]

    def _execute_passthrough(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        return self._execute_node(node.children[0], analyze, outer_row)

    def _execute_project(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        rows = self._execute_node(node.children[0], analyze, outer_row)
        items: List[Tuple[ast.Expression, str]] = node.info.get("items", [])
        # Grouped expression columns pass through by their printed text: an
        # aggregation below keys each group-key value under
        # ``print_expression(key)``, exactly as aggregate results are read
        # back (see ``evaluate``'s aggregate case), so re-evaluating the
        # expression against the aggregated row would wrongly look for its
        # base columns.  The printed names are cached on the (shared) node
        # like every other per-node compiled artifact.
        cache = getattr(node, "_compiled", None)
        if cache is None:
            cache = {}
            node._compiled = cache
        printed = cache.get(("printed", "items"))
        if printed is None:
            printed = [
                None
                if isinstance(expression, ast.Star)
                else print_expression(expression)
                for expression, _ in items
            ]
            cache[("printed", "items")] = printed
        output: List[Row] = []
        for row in rows:
            context = self._context(row, outer_row)
            projected: Row = {}
            for (expression, name), text in zip(items, printed):
                if isinstance(expression, ast.Star):
                    if expression.table:
                        prefix = expression.table + "."
                        for key, value in row.items():
                            if key.startswith(prefix):
                                projected[key] = value
                    else:
                        projected.update(row)
                elif text in row and not isinstance(expression, ast.ColumnRef):
                    projected[name] = row[text]
                else:
                    projected[name] = evaluate(expression, context)
            output.append(projected)
        return output

    # ------------------------------------------------------------------ consumers

    def _execute_insert(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        statement: ast.Insert = node.info["statement"]
        table = self.database.table(statement.table)
        schema_columns = table.schema.column_names()
        target_columns = statement.columns or schema_columns
        rows_to_insert: List[Row] = []
        if statement.select is not None:
            source_rows = self._execute_node(node.children[0], analyze, outer_row)
            for source in source_rows:
                values = list(source.values())
                rows_to_insert.append(dict(zip(target_columns, values)))
        else:
            for literal_row in statement.rows:
                values = [
                    evaluate(expression, self._context({}, outer_row))
                    for expression in literal_row
                ]
                rows_to_insert.append(dict(zip(target_columns, values)))
        inserted = self.database.insert_rows(statement.table, rows_to_insert)
        return [{"inserted": inserted}]

    def _execute_update(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        statement: ast.Update = node.info["statement"]
        table = self.database.table(statement.table)
        alias = statement.table
        row_ids: List[int] = []
        changes: List[Row] = []
        check = compile_predicate(statement.where)
        for row_id, stored in list(table.scan()):
            row = {f"{alias}.{column}": value for column, value in stored.items()}
            if check(self._context(row, outer_row)):
                new_values: Row = {}
                for column, expression in statement.assignments:
                    new_values[column] = evaluate(expression, self._context(row, outer_row))
                row_ids.append(row_id)
                changes.append(new_values)
        updated = self.database.update_rows(statement.table, row_ids, changes)
        return [{"updated": updated}]

    def _execute_delete(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        statement: ast.Delete = node.info["statement"]
        table = self.database.table(statement.table)
        alias = statement.table
        row_ids: List[int] = []
        check = compile_predicate(statement.where)
        for row_id, stored in list(table.scan()):
            row = {f"{alias}.{column}": value for column, value in stored.items()}
            if check(self._context(row, outer_row)):
                row_ids.append(row_id)
        deleted = self.database.delete_rows(statement.table, row_ids)
        return [{"deleted": deleted}]

    def _execute_create_table(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        statement: ast.CreateTable = node.info["statement"]
        columns = [
            Column(
                name=definition.name,
                data_type=DataType.from_sql(definition.type_name),
                nullable=not definition.not_null and not definition.primary_key,
                primary_key=definition.primary_key,
                unique=definition.unique,
                default=(
                    definition.default.value
                    if isinstance(definition.default, ast.Literal)
                    else None
                ),
            )
            for definition in statement.columns
        ]
        self.database.create_table(
            TableSchema(name=statement.name, columns=columns),
            if_not_exists=statement.if_not_exists,
        )
        return [{"created": statement.name}]

    def _execute_create_index(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        statement: ast.CreateIndex = node.info["statement"]
        self.database.create_index(
            statement.name, statement.table, statement.columns, statement.unique
        )
        return [{"created": statement.name}]

    def _execute_drop_table(self, node: PhysicalNode, analyze: bool, outer_row: Row) -> List[Row]:
        statement: ast.DropTable = node.info["statement"]
        self.database.drop_table(statement.name, if_exists=statement.if_exists)
        return [{"dropped": statement.name}]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


class _Bounds:
    """Bounds extracted from an index condition on the leading column."""

    __slots__ = ("low", "high", "include_low", "include_high", "equality_values")

    def __init__(self) -> None:
        self.low: Optional[object] = None
        self.high: Optional[object] = None
        self.include_low = True
        self.include_high = True
        self.equality_values: Optional[List[object]] = None


def _extract_bounds(
    condition: Optional[ast.Expression], leading_column: str
) -> Optional[_Bounds]:
    if condition is None:
        return None
    bounds = _Bounds()
    found = False
    for conjunct in ast.split_conjuncts(condition):
        if isinstance(conjunct, ast.BinaryOp) and isinstance(conjunct.left, ast.ColumnRef):
            if conjunct.left.column.lower() != leading_column.lower():
                continue
            if not isinstance(conjunct.right, ast.Literal):
                continue
            value = conjunct.right.value
            operator = conjunct.operator
        elif isinstance(conjunct, ast.BinaryOp) and isinstance(conjunct.right, ast.ColumnRef):
            if conjunct.right.column.lower() != leading_column.lower():
                continue
            if not isinstance(conjunct.left, ast.Literal):
                continue
            value = conjunct.left.value
            operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
                conjunct.operator, conjunct.operator
            )
        elif isinstance(conjunct, ast.Between) and isinstance(
            conjunct.expression, ast.ColumnRef
        ):
            if conjunct.expression.column.lower() != leading_column.lower():
                continue
            if isinstance(conjunct.low, ast.Literal):
                bounds.low = conjunct.low.value
            if isinstance(conjunct.high, ast.Literal):
                bounds.high = conjunct.high.value
            found = True
            continue
        elif isinstance(conjunct, ast.InList) and isinstance(
            conjunct.expression, ast.ColumnRef
        ):
            if conjunct.expression.column.lower() != leading_column.lower() or conjunct.negated:
                continue
            values = [
                item.value for item in conjunct.items if isinstance(item, ast.Literal)
            ]
            if len(values) == len(conjunct.items):
                bounds.equality_values = values
                found = True
            continue
        else:
            continue
        found = True
        if operator == "=":
            bounds.equality_values = [value]
        elif operator in {"<", "<="}:
            bounds.high = value
            bounds.include_high = operator == "<="
        elif operator in {">", ">="}:
            bounds.low = value
            bounds.include_low = operator == ">="
    return bounds if found else None


def _strip_qualifier(key: str) -> str:
    return key.split(".", 1)[1] if "." in key else key


def _null_row_like(rows: List[Row]) -> Row:
    """A row with every column of *rows* set to NULL (outer-join padding)."""
    if not rows:
        return {}
    return {key: None for key in rows[0]}


def _equi_join_keys(
    condition: Optional[ast.Expression],
) -> List[Tuple[ast.ColumnRef, ast.ColumnRef]]:
    keys: List[Tuple[ast.ColumnRef, ast.ColumnRef]] = []
    for conjunct in ast.split_conjuncts(condition):
        if (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.operator == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            keys.append((conjunct.left, conjunct.right))
    return keys


def _hash_key(
    row: Row, references: Sequence[ast.ColumnRef], outer_row: Row
) -> Optional[Tuple]:
    values = []
    source = {**outer_row, **row} if outer_row else row
    for reference in references:
        try:
            value = resolve_column(source, reference)
        except ExecutionError:
            return None
        if value is None:
            return None
        values.append(_normalise_value(value))
    return tuple(values)


def _semi_join_key(value: object) -> object:
    """Set key for semi/anti-join probes, matching ``_compare("=", …)``.

    ``_compare`` implements SQL ``=`` as Python ``==``, and Python's own
    hash/equality contract already gives exactly those equality classes for
    the engine's scalar domain: ``1 == 1.0 == True`` across int/float/bool,
    *exact* for integers beyond 2**53 (which a float coercion would
    collide), and type-distinct for strings.  So the value itself is the
    key — never :func:`_normalise_value`, whose float-coercing sort keys
    serve ordering, not equality.  Callers handle NULL before keying.
    """
    return value


def _normalise_value(value: object) -> object:
    """Make a value hashable and comparable across int/float."""
    if isinstance(value, bool):
        return ("b", int(value))
    if isinstance(value, (int, float)):
        return ("n", float(value))
    if value is None:
        return ("z", "")
    return ("s", str(value))


def fold_aggregate(aggregate: ast.FunctionCall, values: List[object]) -> object:
    """Fold one aggregate over its collected per-group argument values.

    The single definition of DISTINCT normalisation, NULL handling, and the
    numeric folds — shared by the row executor (which collects the values
    per member row) and the vectorized executor (which slices them out of
    batch-evaluated argument columns), so the two can never drift apart.
    """
    name = aggregate.name.upper()
    non_null = [value for value in values if value is not None]
    if aggregate.distinct:
        seen = set()
        unique = []
        for value in non_null:
            marker = _normalise_value(value)
            if marker not in seen:
                seen.add(marker)
                unique.append(value)
        non_null = unique
    if name == "COUNT":
        return len(values) if aggregate.star else len(non_null)
    if not non_null:
        return None
    if name == "SUM":
        return sum(non_null)
    if name == "AVG":
        return sum(non_null) / len(non_null)
    if name == "MIN":
        return min(non_null)
    if name == "MAX":
        return max(non_null)
    raise ExecutionError(f"unknown aggregate {aggregate.name!r}")


def _dedupe_rows(rows: List[Row]) -> List[Row]:
    seen = set()
    output: List[Row] = []
    for row in rows:
        key = tuple(_normalise_value(value) for value in row.values())
        if key not in seen:
            seen.add(key)
            output.append(row)
    return output


def _positional_union(outputs: List[List[Row]]) -> List[Row]:
    """Concatenate child outputs, aligning columns by position with the first child."""
    non_empty = [rows for rows in outputs if rows]
    if not non_empty:
        return []
    template_keys = list(non_empty[0][0].keys())
    combined: List[Row] = []
    for rows in outputs:
        for row in rows:
            values = list(row.values())
            if list(row.keys()) == template_keys or len(values) != len(template_keys):
                combined.append(row)
            else:
                combined.append(dict(zip(template_keys, values)))
    return combined


def _sort_rows(
    rows: List[Row],
    keys: List[Tuple[ast.Expression, bool]],
    context_factory: Callable[[Row], EvaluationContext],
) -> List[Row]:
    if not keys:
        return list(rows)

    decorated = []
    for position, row in enumerate(rows):
        context = context_factory(row)
        sort_values = []
        for expression, descending in keys:
            try:
                value = evaluate(expression, context)
            except ExecutionError:
                value = None
            sort_values.append((value, descending))
        decorated.append((sort_values, position, row))

    def compare_key(item):
        sort_values, position, _ = item
        components = []
        for value, descending in sort_values:
            wrapped = sortable((value,))[0]
            components.append((wrapped, descending))
        return _ComparableKey(components, position)

    return [row for _, _, row in sorted(decorated, key=compare_key)]


class _ComparableKey:
    """Sort key supporting per-component descending order."""

    __slots__ = ("components", "position")

    def __init__(self, components, position: int) -> None:
        self.components = components
        self.position = position

    def __lt__(self, other: "_ComparableKey") -> bool:
        for (left, descending), (right, _) in zip(self.components, other.components):
            if left == right:
                continue
            if descending:
                return right < left
            return left < right
        return self.position < other.position

    def __eq__(self, other: object) -> bool:  # pragma: no cover - required pair
        return (
            isinstance(other, _ComparableKey)
            and self.components == other.components
            and self.position == other.position
        )


_HANDLERS: Dict[OpKind, Callable[[Executor, PhysicalNode, bool, Row], List[Row]]] = {
    OpKind.SEQ_SCAN: Executor._execute_seq_scan,
    OpKind.INDEX_SCAN: Executor._execute_index_scan,
    OpKind.INDEX_ONLY_SCAN: Executor._execute_index_scan,
    OpKind.VALUES: Executor._execute_values,
    OpKind.SUBQUERY_SCAN: Executor._execute_subquery_scan,
    OpKind.RESULT: Executor._execute_result,
    OpKind.NESTED_LOOP_JOIN: Executor._execute_nested_loop_join,
    OpKind.HASH_JOIN: Executor._execute_hash_join,
    OpKind.MERGE_JOIN: Executor._execute_merge_join,
    OpKind.SEMI_JOIN: Executor._execute_semi_join,
    OpKind.ANTI_JOIN: Executor._execute_semi_join,
    OpKind.HASH_AGGREGATE: Executor._execute_aggregate,
    OpKind.SORT_AGGREGATE: Executor._execute_aggregate,
    OpKind.SORT: Executor._execute_sort,
    OpKind.TOP_N: Executor._execute_sort,
    OpKind.LIMIT: Executor._execute_limit,
    OpKind.DISTINCT: Executor._execute_distinct,
    OpKind.APPEND: Executor._execute_append,
    OpKind.INTERSECT: Executor._execute_intersect,
    OpKind.EXCEPT: Executor._execute_except,
    OpKind.PROJECT: Executor._execute_project,
    OpKind.FILTER: Executor._execute_filter,
    OpKind.MATERIALIZE: Executor._execute_passthrough,
    OpKind.GATHER: Executor._execute_passthrough,
    OpKind.HASH_BUILD: Executor._execute_passthrough,
    OpKind.INSERT: Executor._execute_insert,
    OpKind.UPDATE: Executor._execute_update,
    OpKind.DELETE: Executor._execute_delete,
    OpKind.CREATE_TABLE: Executor._execute_create_table,
    OpKind.CREATE_INDEX: Executor._execute_create_index,
    OpKind.DROP_TABLE: Executor._execute_drop_table,
}
