"""Execution engine substrate: expression evaluation and the plan executors.

Three interchangeable executors interpret physical plans: the row-at-a-time
:class:`~repro.engine.executor.Executor` (the correctness oracle), the
columnar :class:`~repro.engine.vectorized.VectorizedExecutor` (the fast
path), and the morsel-driven :class:`~repro.engine.morsel.ParallelExecutor`
(the vectorized engine with exchange-operator parallelism for scans,
filters, and hash-join builds).  ``create_executor`` picks one by name —
the ``executor=`` toggle the dialects and campaigns expose."""

from repro.engine import arrays
from repro.engine.arrays import (
    ArrayColumn,
    numpy_available,
    numpy_enabled,
    set_numpy_enabled,
)
from repro.engine.expressions import (
    BatchContext,
    EvaluationContext,
    compile_expression_batch,
    compile_predicate_batch,
    evaluate,
    evaluate_predicate,
    resolve_column,
)
from repro.engine.executor import Executor
from repro.engine.morsel import MorselExchange, ParallelExecutor
from repro.engine.vectorized import RowBatch, VectorizedExecutor

#: The executor implementations selectable by name.
EXECUTORS = {
    "row": Executor,
    "vectorized": VectorizedExecutor,
    "parallel": ParallelExecutor,
}


def create_executor(kind: str, database, planner=None) -> Executor:
    """Instantiate the executor implementation called *kind*."""
    try:
        implementation = EXECUTORS[kind.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown executor {kind!r}; available: {sorted(EXECUTORS)}"
        ) from exc
    return implementation(database, planner)


__all__ = [
    "arrays",
    "ArrayColumn",
    "numpy_available",
    "numpy_enabled",
    "set_numpy_enabled",
    "BatchContext",
    "EvaluationContext",
    "compile_expression_batch",
    "compile_predicate_batch",
    "evaluate",
    "evaluate_predicate",
    "resolve_column",
    "Executor",
    "MorselExchange",
    "ParallelExecutor",
    "RowBatch",
    "VectorizedExecutor",
    "EXECUTORS",
    "create_executor",
]
