"""Execution engine substrate: expression evaluation and the plan executor."""

from repro.engine.expressions import (
    EvaluationContext,
    evaluate,
    evaluate_predicate,
    resolve_column,
)
from repro.engine.executor import Executor

__all__ = [
    "EvaluationContext",
    "evaluate",
    "evaluate_predicate",
    "resolve_column",
    "Executor",
]
