"""Validation of unified query plans against the design's constraints.

The unified representation is *complete*, *general*, and *extensible*
(Section IV-B), but a plan instance still has to satisfy structural rules:
identifiers must be grammar keywords, values must be in the grammar's value
domain, categories must be the studied ones, and the tree must really be a
tree (no shared or cyclic nodes).  :func:`validate_plan` checks all of this
and either raises :class:`~repro.errors.PlanValidationError` or returns a
list of human-readable findings when ``raise_on_error=False``.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.categories import OperationCategory, PropertyCategory
from repro.core.model import PlanNode, UnifiedPlan, is_valid_keyword, is_valid_value
from repro.errors import PlanValidationError


def _validate_node(node: PlanNode, seen: Set[int], findings: List[str], path: str) -> None:
    if id(node) in seen:
        findings.append(f"{path}: node appears more than once in the tree (not a tree)")
        return
    seen.add(id(node))

    if not isinstance(node.operation.category, OperationCategory):
        findings.append(f"{path}: invalid operation category {node.operation.category!r}")
    if not is_valid_keyword(node.operation.identifier):
        findings.append(f"{path}: invalid operation identifier {node.operation.identifier!r}")

    for index, prop in enumerate(node.properties):
        prop_path = f"{path}.properties[{index}]"
        if not isinstance(prop.category, PropertyCategory):
            findings.append(f"{prop_path}: invalid property category {prop.category!r}")
        if not is_valid_keyword(prop.identifier):
            findings.append(f"{prop_path}: invalid property identifier {prop.identifier!r}")
        if not is_valid_value(prop.value):
            findings.append(f"{prop_path}: invalid property value {prop.value!r}")

    for index, child in enumerate(node.children):
        _validate_node(child, seen, findings, f"{path}.children[{index}]")


def validate_plan(plan: UnifiedPlan, raise_on_error: bool = True) -> List[str]:
    """Validate *plan*; return findings (empty when valid).

    Parameters
    ----------
    plan:
        The plan to validate.
    raise_on_error:
        When true (default) a :class:`PlanValidationError` is raised if any
        finding is produced; otherwise the findings are returned.
    """
    findings: List[str] = []

    for index, prop in enumerate(plan.properties):
        path = f"plan.properties[{index}]"
        if not isinstance(prop.category, PropertyCategory):
            findings.append(f"{path}: invalid property category {prop.category!r}")
        if not is_valid_keyword(prop.identifier):
            findings.append(f"{path}: invalid property identifier {prop.identifier!r}")
        if not is_valid_value(prop.value):
            findings.append(f"{path}: invalid property value {prop.value!r}")

    if plan.root is not None:
        _validate_node(plan.root, set(), findings, "plan.tree")

    if plan.root is None and not plan.properties:
        findings.append("plan has neither a tree nor plan-associated properties")

    if findings and raise_on_error:
        raise PlanValidationError("; ".join(findings))
    return findings


def is_valid_plan(plan: UnifiedPlan) -> bool:
    """Return whether *plan* passes :func:`validate_plan`."""
    return not validate_plan(plan, raise_on_error=False)
