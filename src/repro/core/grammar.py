"""The EBNF-defined canonical text form of the unified plan representation.

Listing 2 of the paper defines the unified query plan representation with this
grammar (EBNF):

.. code-block:: text

    plan       ::= ( tree )? properties
    tree       ::= node ( '--children-->' '{' tree (',' tree)* '}' )?
    node       ::= operation properties
    operation  ::= 'Operation' ':' operation_category '->' operation_identifier
    properties ::= ( property ( ',' property )* )?
    property   ::= property_category '->' property_identifier ':' value
    keyword    ::= letter ( letter | digit | '_' )*
    value      ::= string | number | boolean | 'null'

This module provides a faithful serializer (:func:`serialize`) and parser
(:func:`parse`) for that grammar.  Because the grammar's ``keyword`` production
does not admit spaces, identifiers containing spaces (the unified naming
convention uses e.g. ``Full Table Scan``) are encoded with underscores on
serialization and decoded back to spaces on parsing.  The encoding is lossless
for unified names, which never contain literal underscores.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.categories import OperationCategory, PropertyCategory
from repro.core.model import (
    Operation,
    PlanNode,
    Property,
    PropertyValue,
    UnifiedPlan,
)
from repro.errors import GrammarError

_OPERATION_CATEGORIES = {member.value for member in OperationCategory}
_PROPERTY_CATEGORIES = {member.value for member in PropertyCategory}

_CHILDREN_ARROW = "--children-->"


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _encode_keyword(identifier: str) -> str:
    """Encode an identifier into a grammar-conformant keyword."""
    return identifier.replace(" ", "_")


def _decode_keyword(keyword: str) -> str:
    """Decode a grammar keyword back into the unified spaced form."""
    return keyword.replace("_", " ")


def _encode_value(value: PropertyValue) -> str:
    """Render a property value per the ``value`` production."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _serialize_properties(properties: List[Property]) -> str:
    rendered = [
        f"{prop.category.value}->{_encode_keyword(prop.identifier)}: {_encode_value(prop.value)}"
        for prop in properties
    ]
    return ", ".join(rendered)


def _serialize_node(node: PlanNode) -> str:
    parts = [
        f"Operation: {node.operation.category.value}->"
        f"{_encode_keyword(node.operation.identifier)}"
    ]
    if node.properties:
        parts.append(_serialize_properties(node.properties))
    text = " ".join(parts)
    if node.children:
        children = ", ".join(_serialize_node(child) for child in node.children)
        text = f"{text} {_CHILDREN_ARROW} {{ {children} }}"
    return text


def serialize(plan: UnifiedPlan) -> str:
    """Serialize *plan* into the canonical grammar text form."""
    pieces = []
    if plan.root is not None:
        pieces.append(_serialize_node(plan.root))
    if plan.properties:
        pieces.append(_serialize_properties(plan.properties))
    return " ".join(pieces)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class _Token:
    """A lexical token of the grammar text form."""

    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int) -> None:
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.text!r}, {self.position})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if text.startswith(_CHILDREN_ARROW, index):
            tokens.append(_Token("ARROW_CHILDREN", _CHILDREN_ARROW, index))
            index += len(_CHILDREN_ARROW)
            continue
        if text.startswith("->", index):
            tokens.append(_Token("ARROW", "->", index))
            index += 2
            continue
        if char in "{},:":
            kinds = {"{": "LBRACE", "}": "RBRACE", ",": "COMMA", ":": "COLON"}
            tokens.append(_Token(kinds[char], char, index))
            index += 1
            continue
        if char == '"':
            end = index + 1
            value_chars: List[str] = []
            while end < length:
                if text[end] == "\\" and end + 1 < length:
                    value_chars.append(text[end + 1])
                    end += 2
                    continue
                if text[end] == '"':
                    break
                value_chars.append(text[end])
                end += 1
            if end >= length:
                raise GrammarError(f"unterminated string at position {index}")
            tokens.append(_Token("STRING", "".join(value_chars), index))
            index = end + 1
            continue
        if char == "-" or char.isdigit():
            end = index + 1
            while end < length and (text[end].isdigit() or text[end] in ".eE+-"):
                end += 1
            tokens.append(_Token("NUMBER", text[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            tokens.append(_Token("WORD", text[index:end], index))
            index = end
            continue
        raise GrammarError(f"unexpected character {char!r} at position {index}")
    return tokens


class _Parser:
    """Recursive-descent parser for the grammar text form."""

    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token utilities ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[_Token]:
        position = self._index + offset
        if position < len(self._tokens):
            return self._tokens[position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise GrammarError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise GrammarError(
                f"expected {kind} but found {token.kind} ({token.text!r}) "
                f"at position {token.position}"
            )
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- productions ----------------------------------------------------------

    def parse_plan(self) -> UnifiedPlan:
        plan = UnifiedPlan()
        token = self._peek()
        if token is not None and token.kind == "WORD" and token.text == "Operation":
            plan.root = self._parse_tree()
        plan.properties = self._parse_properties(allow_leading_comma=True)
        if not self.at_end():
            token = self._peek()
            raise GrammarError(
                f"trailing input at position {token.position}: {token.text!r}"
            )
        return plan

    def _parse_tree(self) -> PlanNode:
        node = self._parse_node()
        token = self._peek()
        if token is not None and token.kind == "ARROW_CHILDREN":
            self._next()
            self._expect("LBRACE")
            node.children.append(self._parse_tree())
            while self._peek() is not None and self._peek().kind == "COMMA":
                # A comma may either separate sibling trees or (outside a brace)
                # separate properties; inside the braces it is always a sibling.
                self._next()
                node.children.append(self._parse_tree())
            self._expect("RBRACE")
        return node

    def _parse_node(self) -> PlanNode:
        keyword = self._expect("WORD")
        if keyword.text != "Operation":
            raise GrammarError(
                f"expected 'Operation' at position {keyword.position}, "
                f"found {keyword.text!r}"
            )
        self._expect("COLON")
        category_token = self._expect("WORD")
        if category_token.text not in _OPERATION_CATEGORIES:
            raise GrammarError(
                f"unknown operation category {category_token.text!r} "
                f"at position {category_token.position}"
            )
        self._expect("ARROW")
        identifier_token = self._expect("WORD")
        operation = Operation(
            OperationCategory.from_name(category_token.text),
            _decode_keyword(identifier_token.text),
        )
        node = PlanNode(operation)
        node.properties = self._parse_properties(allow_leading_comma=False)
        return node

    def _looking_at_property(self) -> bool:
        token = self._peek()
        arrow = self._peek(1)
        return (
            token is not None
            and token.kind == "WORD"
            and token.text in _PROPERTY_CATEGORIES
            and arrow is not None
            and arrow.kind == "ARROW"
        )

    def _parse_properties(self, allow_leading_comma: bool) -> List[Property]:
        properties: List[Property] = []
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "COMMA":
                follow = self._peek(1)
                is_property_next = (
                    follow is not None
                    and follow.kind == "WORD"
                    and follow.text in _PROPERTY_CATEGORIES
                    and self._peek(2) is not None
                    and self._peek(2).kind == "ARROW"
                )
                if (properties or allow_leading_comma) and is_property_next:
                    self._next()
                    continue
                break
            if not self._looking_at_property():
                break
            properties.append(self._parse_property())
        return properties

    def _parse_property(self) -> Property:
        category_token = self._expect("WORD")
        self._expect("ARROW")
        identifier_token = self._expect("WORD")
        self._expect("COLON")
        value = self._parse_value()
        return Property(
            PropertyCategory.from_name(category_token.text),
            _decode_keyword(identifier_token.text),
            value,
        )

    def _parse_value(self) -> PropertyValue:
        token = self._next()
        if token.kind == "STRING":
            return token.text
        if token.kind == "NUMBER":
            text = token.text
            try:
                if any(ch in text for ch in ".eE") and not text.lstrip("-").isdigit():
                    return float(text)
                return int(text)
            except ValueError as exc:
                raise GrammarError(f"invalid number {text!r}") from exc
        if token.kind == "WORD":
            lowered = token.text.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            if lowered == "null":
                return None
        raise GrammarError(
            f"expected a value at position {token.position}, found {token.text!r}"
        )


def parse(text: str) -> UnifiedPlan:
    """Parse a plan from the canonical grammar text form."""
    tokens = _tokenize(text)
    return _Parser(tokens).parse_plan()


def roundtrip(plan: UnifiedPlan) -> UnifiedPlan:
    """Serialize then re-parse *plan*; useful for validation and testing."""
    restored = parse(serialize(plan))
    restored.source_dbms = plan.source_dbms
    restored.query = plan.query
    return restored
