"""Operation and property categories of the unified query plan representation.

The exploratory case study (Section III of the paper) identifies that query
plan representations across nine DBMSs share three conceptual components:
*operations*, *properties*, and *formats*.  Operations fall into seven
categories grounded in relational algebra, and properties fall into four
categories.  These enumerations are the backbone of the unified representation
defined in Section IV (Listing 2 of the paper).
"""

from __future__ import annotations

import enum
from typing import Optional


class OperationCategory(enum.Enum):
    """The seven operation categories identified by the case study.

    ========== =====================================================
    Category   Meaning (relational-algebra correspondence)
    ========== =====================================================
    PRODUCER   Retrieves data from storage or returns constants (σ).
    COMBINATOR Changes permutation/combination of tuples (∪, ∩, −).
    JOIN       Generates new tuples by recombining attributes (⋈, ×).
    FOLDER     Derives new tuples from a set of tuples (γ).
    PROJECTOR  Removes attributes from all tuples (Π).
    EXECUTOR   Makes no change to tuples/attributes (DBMS-internal).
    CONSUMER   Has no output; modifies stored data or system state.
    ========== =====================================================
    """

    PRODUCER = "Producer"
    COMBINATOR = "Combinator"
    JOIN = "Join"
    FOLDER = "Folder"
    PROJECTOR = "Projector"
    EXECUTOR = "Executor"
    CONSUMER = "Consumer"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def algebra(self) -> str:
        """The relational-algebra operators realized by this category."""
        return _ALGEBRA[self]

    @classmethod
    def from_name(cls, name: str) -> "OperationCategory":
        """Resolve a category from its canonical (case-insensitive) name."""
        cleaned = name.strip().lower()
        for member in cls:
            if member.value.lower() == cleaned:
                return member
        raise ValueError(f"unknown operation category: {name!r}")


class PropertyCategory(enum.Enum):
    """The four property categories identified by the case study.

    ============= ======================================================
    Category      Meaning
    ============= ======================================================
    CARDINALITY   Numeric estimates of data sizes returned by operations.
    COST          Numeric estimates of resource consumption.
    CONFIGURATION Operation parameters (predicates, keys, options).
    STATUS        Runtime status metrics determined by the environment.
    ============= ======================================================
    """

    CARDINALITY = "Cardinality"
    COST = "Cost"
    CONFIGURATION = "Configuration"
    STATUS = "Status"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "PropertyCategory":
        """Resolve a category from its canonical (case-insensitive) name."""
        cleaned = name.strip().lower()
        for member in cls:
            if member.value.lower() == cleaned:
                return member
        raise ValueError(f"unknown property category: {name!r}")


_ALGEBRA = {
    OperationCategory.PRODUCER: "σ",
    OperationCategory.COMBINATOR: "∪, ∩, −",
    OperationCategory.JOIN: "⋈, ×",
    OperationCategory.FOLDER: "γ",
    OperationCategory.PROJECTOR: "Π",
    OperationCategory.EXECUTOR: "",
    OperationCategory.CONSUMER: "",
}

#: Canonical ordering used by Table II / Table VI of the paper.
OPERATION_CATEGORY_ORDER = (
    OperationCategory.PRODUCER,
    OperationCategory.COMBINATOR,
    OperationCategory.JOIN,
    OperationCategory.FOLDER,
    OperationCategory.PROJECTOR,
    OperationCategory.EXECUTOR,
    OperationCategory.CONSUMER,
)

#: Canonical ordering used by the right part of Table II.
PROPERTY_CATEGORY_ORDER = (
    PropertyCategory.CARDINALITY,
    PropertyCategory.COST,
    PropertyCategory.CONFIGURATION,
    PropertyCategory.STATUS,
)


def operation_category(name: Optional[str]) -> Optional[OperationCategory]:
    """Lenient lookup used by converters: returns ``None`` for ``None``."""
    if name is None:
        return None
    return OperationCategory.from_name(name)


def property_category(name: Optional[str]) -> Optional[PropertyCategory]:
    """Lenient lookup used by converters: returns ``None`` for ``None``."""
    if name is None:
        return None
    return PropertyCategory.from_name(name)
