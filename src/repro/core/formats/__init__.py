"""Serialization formats for the unified query plan representation.

The case study (Section III-E) classifies serialized formats into *natural*
formats optimized for readability (graph, text, table) and *structured*
formats optimized for machine reading (JSON, XML, YAML).  UPlan can be
serialized into any of them; JSON, XML, YAML, the indented text form, and
the grammar form can also be parsed back, and every round-trip preserves the
plan's fingerprint (the pipeline layer's round-trip invariant).

The registry exposed here lets applications look formats up by name::

    from repro.core import formats
    text = formats.serialize(plan, "json")
    plan2 = formats.deserialize(text, "json")
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.model import UnifiedPlan
from repro.errors import FormatError

from repro.core.formats.json_format import dumps as json_dumps, loads as json_loads
from repro.core.formats.text_format import render as text_render, parse as text_parse
from repro.core.formats.table_format import render as table_render
from repro.core.formats.xml_format import dumps as xml_dumps, loads as xml_loads
from repro.core.formats.yaml_format import dumps as yaml_dumps, loads as yaml_loads
from repro.core import grammar

#: Format classification mirroring Table III of the paper.
NATURAL_FORMATS = ("text", "table", "graph")
STRUCTURED_FORMATS = ("json", "xml", "yaml")

_SERIALIZERS: Dict[str, Callable[[UnifiedPlan], str]] = {}
_DESERIALIZERS: Dict[str, Callable[[str], UnifiedPlan]] = {}


def register_format(
    name: str,
    serializer: Callable[[UnifiedPlan], str],
    deserializer: Optional[Callable[[str], UnifiedPlan]] = None,
) -> None:
    """Register a serializer (and optionally a deserializer) for *name*.

    This is the extension point the paper's design calls out: supporting an
    additional format requires only registering a pair of callables.
    """
    key = name.strip().lower()
    if not key:
        raise FormatError("format name must be non-empty")
    _SERIALIZERS[key] = serializer
    if deserializer is not None:
        _DESERIALIZERS[key] = deserializer


def supported_formats() -> List[str]:
    """Return the names of all registered serialization formats."""
    return sorted(_SERIALIZERS)


def parseable_formats() -> List[str]:
    """Return the names of formats that can also be parsed back."""
    return sorted(_DESERIALIZERS)


def serialize(plan: UnifiedPlan, format_name: str) -> str:
    """Serialize *plan* into the named format."""
    key = format_name.strip().lower()
    serializer = _SERIALIZERS.get(key)
    if serializer is None:
        raise FormatError(
            f"unknown format {format_name!r}; supported: {supported_formats()}"
        )
    return serializer(plan)


def deserialize(text: str, format_name: str) -> UnifiedPlan:
    """Parse a plan from the named format (if the format supports parsing)."""
    key = format_name.strip().lower()
    deserializer = _DESERIALIZERS.get(key)
    if deserializer is None:
        raise FormatError(
            f"format {format_name!r} cannot be parsed; parseable: {parseable_formats()}"
        )
    return deserializer(text)


# Built-in formats ----------------------------------------------------------

register_format("json", json_dumps, json_loads)
register_format("text", text_render, text_parse)
register_format("table", table_render)
register_format("xml", xml_dumps, xml_loads)
register_format("yaml", yaml_dumps, yaml_loads)
register_format("grammar", grammar.serialize, grammar.parse)

__all__ = [
    "NATURAL_FORMATS",
    "STRUCTURED_FORMATS",
    "register_format",
    "supported_formats",
    "parseable_formats",
    "serialize",
    "deserialize",
]
