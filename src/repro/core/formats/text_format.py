"""Indented text serialization of unified query plans.

This is the human-oriented "natural" format used throughout the paper's
examples (e.g. Listing 4), where each operation appears on its own line as
``Category->Identifier`` and is indented below its parent, followed by
indented property lines::

    Combinator->Sort
      Folder->Aggregate
        Join->Hash Join
          Producer->Full Table Scan
            Configuration->name object: "partsupp"

The format can be parsed back, which converters for indentation-based raw
plans also reuse.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.categories import OperationCategory, PropertyCategory
from repro.core.model import (
    Operation,
    PlanNode,
    Property,
    PropertyValue,
    UnifiedPlan,
)
from repro.errors import FormatError

_INDENT = "  "

_OPERATION_CATEGORIES = {member.value: member for member in OperationCategory}
_PROPERTY_CATEGORIES = {member.value: member for member in PropertyCategory}


#: Characters str.splitlines() treats as line terminators; they must be
#: escaped inside rendered values or parsing would split mid-value.
_LINE_TERMINATORS = "\n\r\x0b\x0c\x1c\x1d\x1e\x85\u2028\u2029"


def _render_value(value: PropertyValue) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("\\", "\\\\").replace('"', '\\"')
    text = text.replace("\n", "\\n").replace("\r", "\\r")
    for terminator in _LINE_TERMINATORS[2:]:
        text = text.replace(terminator, f"\\u{ord(terminator):04x}")
    return '"' + text + '"'


def _unescape_string(text: str) -> str:
    chars = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch == "\\" and index + 1 < len(text):
            follower = text[index + 1]
            if follower == "u" and index + 5 < len(text):
                try:
                    chars.append(chr(int(text[index + 2 : index + 6], 16)))
                    index += 6
                    continue
                except ValueError:
                    pass
            chars.append(
                {"n": "\n", "r": "\r", '"': '"', "\\": "\\"}.get(follower, follower)
            )
            index += 2
            continue
        chars.append(ch)
        index += 1
    return "".join(chars)


def _parse_value(text: str) -> PropertyValue:
    stripped = text.strip()
    if stripped == "null":
        return None
    if stripped == "true":
        return True
    if stripped == "false":
        return False
    if stripped.startswith('"') and stripped.endswith('"') and len(stripped) >= 2:
        return _unescape_string(stripped[1:-1])
    try:
        if any(ch in stripped for ch in ".eE"):
            return float(stripped)
        return int(stripped)
    except ValueError:
        return stripped


def _render_node(node: PlanNode, depth: int, lines: List[str], with_properties: bool) -> None:
    prefix = _INDENT * depth
    lines.append(f"{prefix}{node.operation.category.value}->{node.operation.identifier}")
    if with_properties:
        for prop in node.properties:
            lines.append(
                f"{prefix}{_INDENT}* {prop.category.value}->{prop.identifier}: "
                f"{_render_value(prop.value)}"
            )
    for child in node.children:
        _render_node(child, depth + 1, lines, with_properties)


def render(plan: UnifiedPlan, with_properties: bool = True) -> str:
    """Render *plan* into the indented text form."""
    lines: List[str] = []
    if plan.root is not None:
        _render_node(plan.root, 0, lines, with_properties)
    for prop in plan.properties:
        lines.append(
            f"= {prop.category.value}->{prop.identifier}: {_render_value(prop.value)}"
        )
    return "\n".join(lines)


def _split_line(line: str) -> Tuple[int, str]:
    stripped = line.lstrip(" ")
    indent_spaces = len(line) - len(stripped)
    if indent_spaces % len(_INDENT) != 0:
        raise FormatError(f"inconsistent indentation in line: {line!r}")
    return indent_spaces // len(_INDENT), stripped


def _parse_operation_line(text: str) -> Operation:
    if "->" not in text:
        raise FormatError(f"operation line must contain '->': {text!r}")
    category_name, identifier = text.split("->", 1)
    category = _OPERATION_CATEGORIES.get(category_name.strip())
    if category is None:
        raise FormatError(f"unknown operation category in line: {text!r}")
    return Operation(category, identifier.strip())


def _parse_property_line(text: str) -> Property:
    if "->" not in text or ":" not in text:
        raise FormatError(f"property line must contain '->' and ':': {text!r}")
    category_name, rest = text.split("->", 1)
    identifier, value_text = rest.split(":", 1)
    category = _PROPERTY_CATEGORIES.get(category_name.strip())
    if category is None:
        raise FormatError(f"unknown property category in line: {text!r}")
    return Property(category, identifier.strip(), _parse_value(value_text))


def parse(text: str) -> UnifiedPlan:
    """Parse a plan from the indented text form produced by :func:`render`."""
    plan = UnifiedPlan()
    stack: List[Tuple[int, PlanNode]] = []
    for raw_line in text.splitlines():
        if not raw_line.strip():
            continue
        if raw_line.lstrip().startswith("= "):
            plan.properties.append(_parse_property_line(raw_line.lstrip()[2:]))
            continue
        depth, content = _split_line(raw_line)
        if content.startswith("* "):
            if not stack:
                raise FormatError(f"property line with no operation: {raw_line!r}")
            stack[-1][1].properties.append(_parse_property_line(content[2:]))
            continue
        node = PlanNode(_parse_operation_line(content))
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if not stack:
            if plan.root is not None:
                raise FormatError("text plan has more than one root operation")
            plan.root = node
        else:
            stack[-1][1].children.append(node)
        stack.append((depth, node))
    return plan
