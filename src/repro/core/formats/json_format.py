"""JSON serialization of unified query plans.

JSON is the structured format most widely supported by the studied DBMSs
(Table III) and the format the paper's applications A.2 and A.3 rely on.  The
schema mirrors :meth:`repro.core.model.UnifiedPlan.to_dict`:

.. code-block:: json

    {
      "source_dbms": "postgresql",
      "query": "SELECT ...",
      "properties": [{"category": "Status", "identifier": "Planning Time", "value": 0.1}],
      "tree": {
        "operation": {"category": "Producer", "identifier": "Full Table Scan"},
        "properties": [...],
        "children": [...]
      }
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.model import UnifiedPlan
from repro.errors import FormatError


def dumps(plan: UnifiedPlan, indent: int = 2) -> str:
    """Serialize *plan* to a JSON document."""
    return json.dumps(plan.to_dict(), indent=indent, sort_keys=False)


def loads(text: str) -> UnifiedPlan:
    """Parse a unified plan from its JSON document form."""
    try:
        data: Dict[str, Any] = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FormatError(f"invalid JSON document: {exc}") from exc
    if not isinstance(data, dict):
        raise FormatError("a unified plan JSON document must be an object")
    try:
        return UnifiedPlan.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed unified plan document: {exc}") from exc
