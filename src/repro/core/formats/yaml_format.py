"""YAML serialization of unified query plans.

Only PostgreSQL, of the studied DBMSs, exposes query plans as YAML
(Table III).  To keep the library dependency-free both the emitter and the
parser implement the small YAML subset needed for plan documents (nested
mappings, sequences and scalars) — the parser accepts exactly the documents
the emitter produces, which is what the pipeline's round-trip invariant
requires.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.core.model import UnifiedPlan
from repro.errors import FormatError

_INDENT = "  "


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


#: Every character str.splitlines() treats as a line terminator; any of them
#: inside a scalar must be escaped or the parser would split the document
#: mid-value.
_LINE_TERMINATORS = "\n\r\x0b\x0c\x1c\x1d\x1e\x85\u2028\u2029"


def _escape_string(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    escaped = escaped.replace("\r", "\\r")
    for terminator in _LINE_TERMINATORS[2:]:
        escaped = escaped.replace(terminator, f"\\u{ord(terminator):04x}")
    return escaped


def _scalar(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    needs_quotes = (
        text == ""
        or text.strip() != text
        or any(ch in text for ch in ":#{}[],&*?|-<>=!%@`\"'")
        or any(ch in text for ch in _LINE_TERMINATORS)
        or text.lower() in {"null", "true", "false", "yes", "no"}
        # Quote numeric-looking strings so parsing restores them as strings.
        or _looks_numeric(text)
    )
    if needs_quotes:
        return f'"{_escape_string(text)}"'
    return text


def _emit(value: Any, depth: int, lines: List[str]) -> None:
    prefix = _INDENT * depth
    if isinstance(value, dict):
        for key, item in value.items():
            if isinstance(item, (dict, list)) and item:
                lines.append(f"{prefix}{key}:")
                _emit(item, depth + 1, lines)
            elif isinstance(item, (dict, list)):
                lines.append(f"{prefix}{key}: " + ("{}" if isinstance(item, dict) else "[]"))
            else:
                lines.append(f"{prefix}{key}: {_scalar(item)}")
        return
    if isinstance(value, list):
        for item in value:
            if isinstance(item, (dict, list)) and item:
                lines.append(f"{prefix}-")
                _emit(item, depth + 1, lines)
            elif isinstance(item, (dict, list)):
                lines.append(f"{prefix}- " + ("{}" if isinstance(item, dict) else "[]"))
            else:
                lines.append(f"{prefix}- {_scalar(item)}")
        return
    lines.append(f"{prefix}{_scalar(value)}")


def dumps(plan: UnifiedPlan) -> str:
    """Serialize *plan* to a YAML document."""
    lines: List[str] = []
    _emit(plan.to_dict(), 0, lines)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Parsing (the emitter's subset only)
# ---------------------------------------------------------------------------


def _unquote(text: str) -> str:
    chars: List[str] = []
    index = 1  # skip opening quote
    end = len(text) - 1
    while index < end:
        ch = text[index]
        if ch == "\\" and index + 1 < end:
            follower = text[index + 1]
            if follower == "u" and index + 5 < end:
                try:
                    chars.append(chr(int(text[index + 2 : index + 6], 16)))
                    index += 6
                    continue
                except ValueError:
                    pass
            chars.append(
                {"n": "\n", "r": "\r", '"': '"', "\\": "\\"}.get(follower, follower)
            )
            index += 2
            continue
        chars.append(ch)
        index += 1
    return "".join(chars)


def _parse_scalar(text: str) -> Any:
    stripped = text.strip()
    if stripped == "null":
        return None
    if stripped == "true":
        return True
    if stripped == "false":
        return False
    if stripped == "[]":
        return []
    if stripped == "{}":
        return {}
    if stripped.startswith('"'):
        if not stripped.endswith('"') or len(stripped) < 2:
            raise FormatError(f"unterminated YAML string: {stripped!r}")
        return _unquote(stripped)
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped


def _split_lines(text: str) -> List[Tuple[int, str]]:
    lines: List[Tuple[int, str]] = []
    for raw in text.splitlines():
        if not raw.strip():
            continue
        content = raw.lstrip(" ")
        indent_spaces = len(raw) - len(content)
        if indent_spaces % len(_INDENT) != 0:
            raise FormatError(f"inconsistent YAML indentation: {raw!r}")
        lines.append((indent_spaces // len(_INDENT), content))
    return lines


def _parse_block(lines: List[Tuple[int, str]], index: int, depth: int) -> Tuple[Any, int]:
    """Parse the block starting at *index*, which sits at *depth*."""
    if lines[index][1].startswith("-"):
        return _parse_sequence(lines, index, depth)
    return _parse_mapping(lines, index, depth)


def _parse_sequence(lines, index, depth):
    items: List[Any] = []
    while index < len(lines) and lines[index][0] == depth:
        line_depth, content = lines[index]
        if not content.startswith("-"):
            break
        remainder = content[1:].strip()
        if remainder:
            items.append(_parse_scalar(remainder))
            index += 1
        else:
            index += 1
            if index < len(lines) and lines[index][0] > depth:
                value, index = _parse_block(lines, index, depth + 1)
            else:
                value = None
            items.append(value)
    return items, index


def _parse_mapping(lines, index, depth):
    mapping = {}
    while index < len(lines) and lines[index][0] == depth:
        line_depth, content = lines[index]
        if content.startswith("-"):
            break
        if ":" not in content:
            raise FormatError(f"expected 'key: value' in YAML line: {content!r}")
        key, _, rest = content.partition(":")
        key = key.strip()
        rest = rest.strip()
        index += 1
        if rest:
            mapping[key] = _parse_scalar(rest)
        elif index < len(lines) and lines[index][0] > depth:
            mapping[key], index = _parse_block(lines, index, depth + 1)
        else:
            mapping[key] = None
    return mapping, index


def loads(text: str) -> UnifiedPlan:
    """Parse a unified plan from the YAML document form :func:`dumps` emits."""
    lines = _split_lines(text)
    if not lines:
        raise FormatError("empty YAML document")
    data, index = _parse_mapping(lines, 0, 0)
    if index != len(lines):
        raise FormatError(
            f"trailing YAML content at line {index + 1}: {lines[index][1]!r}"
        )
    if not isinstance(data, dict):
        raise FormatError("a unified plan YAML document must be a mapping")
    try:
        return UnifiedPlan.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed unified plan document: {exc}") from exc
