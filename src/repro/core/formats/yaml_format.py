"""YAML serialization of unified query plans.

Only PostgreSQL, of the studied DBMSs, exposes query plans as YAML
(Table III).  To keep the library dependency-free the emitter implements the
small YAML subset needed for plan documents (nested mappings, sequences and
scalars); it does not implement a YAML parser.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.model import UnifiedPlan

_INDENT = "  "


def _scalar(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    needs_quotes = (
        text == ""
        or text.strip() != text
        or any(ch in text for ch in ":#{}[],&*?|-<>=!%@`\"'\n")
        or text.lower() in {"null", "true", "false", "yes", "no"}
    )
    if needs_quotes:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    return text


def _emit(value: Any, depth: int, lines: List[str]) -> None:
    prefix = _INDENT * depth
    if isinstance(value, dict):
        for key, item in value.items():
            if isinstance(item, (dict, list)) and item:
                lines.append(f"{prefix}{key}:")
                _emit(item, depth + 1, lines)
            elif isinstance(item, (dict, list)):
                lines.append(f"{prefix}{key}: " + ("{}" if isinstance(item, dict) else "[]"))
            else:
                lines.append(f"{prefix}{key}: {_scalar(item)}")
        return
    if isinstance(value, list):
        for item in value:
            if isinstance(item, (dict, list)) and item:
                lines.append(f"{prefix}-")
                _emit(item, depth + 1, lines)
            elif isinstance(item, (dict, list)):
                lines.append(f"{prefix}- " + ("{}" if isinstance(item, dict) else "[]"))
            else:
                lines.append(f"{prefix}- {_scalar(item)}")
        return
    lines.append(f"{prefix}{_scalar(value)}")


def dumps(plan: UnifiedPlan) -> str:
    """Serialize *plan* to a YAML document."""
    lines: List[str] = []
    _emit(plan.to_dict(), 0, lines)
    return "\n".join(lines)
