"""XML serialization of unified query plans.

XML is one of the structured formats supported by PostgreSQL and SQL Server
(Table III).  The document layout is::

    <unifiedPlan sourceDbms="postgresql">
      <planProperties>
        <property category="Status" identifier="Planning Time">0.1</property>
      </planProperties>
      <node category="Producer" identifier="Full Table Scan">
        <property category="Configuration" identifier="name object">t0</property>
        <node .../>
      </node>
    </unifiedPlan>
"""

from __future__ import annotations

from xml.etree import ElementTree
from xml.dom import minidom

from repro.core.model import PlanNode, Property, UnifiedPlan


def _value_attributes(prop: Property) -> str:
    if prop.value is None:
        return "null"
    if isinstance(prop.value, bool):
        return "boolean"
    if isinstance(prop.value, (int, float)):
        return "number"
    return "string"


def _property_element(prop: Property) -> ElementTree.Element:
    element = ElementTree.Element(
        "property",
        category=prop.category.value,
        identifier=prop.identifier,
        type=_value_attributes(prop),
    )
    if prop.value is not None:
        element.text = str(prop.value).lower() if isinstance(prop.value, bool) else str(prop.value)
    return element


def _node_element(node: PlanNode) -> ElementTree.Element:
    element = ElementTree.Element(
        "node",
        category=node.operation.category.value,
        identifier=node.operation.identifier,
    )
    for prop in node.properties:
        element.append(_property_element(prop))
    for child in node.children:
        element.append(_node_element(child))
    return element


def dumps(plan: UnifiedPlan) -> str:
    """Serialize *plan* to a pretty-printed XML document."""
    root = ElementTree.Element("unifiedPlan", sourceDbms=plan.source_dbms or "")
    plan_properties = ElementTree.SubElement(root, "planProperties")
    for prop in plan.properties:
        plan_properties.append(_property_element(prop))
    if plan.root is not None:
        root.append(_node_element(plan.root))
    raw = ElementTree.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ").strip()
