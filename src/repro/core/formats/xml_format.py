"""XML serialization of unified query plans.

XML is one of the structured formats supported by PostgreSQL and SQL Server
(Table III).  The document layout is::

    <unifiedPlan sourceDbms="postgresql">
      <planProperties>
        <property category="Status" identifier="Planning Time">0.1</property>
      </planProperties>
      <node category="Producer" identifier="Full Table Scan">
        <property category="Configuration" identifier="name object">t0</property>
        <node .../>
      </node>
    </unifiedPlan>
"""

from __future__ import annotations

from xml.etree import ElementTree
from xml.dom import minidom

from repro.core.categories import OperationCategory, PropertyCategory
from repro.core.model import Operation, PlanNode, Property, UnifiedPlan
from repro.errors import FormatError


def _value_attributes(prop: Property) -> str:
    if prop.value is None:
        return "null"
    if isinstance(prop.value, bool):
        return "boolean"
    if isinstance(prop.value, (int, float)):
        return "number"
    return "string"


def _needs_escaping(text: str) -> bool:
    # XML text nodes cannot carry most control characters, and parsers
    # normalize "\r" to "\n"; such strings are stored escaped instead so the
    # round-trip preserves the value (and the plan fingerprint) exactly.
    return any(ord(ch) < 0x20 and ch not in "\t\n" for ch in text)


def _property_element(prop: Property) -> ElementTree.Element:
    element = ElementTree.Element(
        "property",
        category=prop.category.value,
        identifier=prop.identifier,
        type=_value_attributes(prop),
    )
    if prop.value is not None:
        text = str(prop.value).lower() if isinstance(prop.value, bool) else str(prop.value)
        if isinstance(prop.value, str) and _needs_escaping(text):
            element.set("escape", "python")
            text = text.encode("unicode_escape").decode("ascii")
        element.text = text
    return element


def _node_element(node: PlanNode) -> ElementTree.Element:
    element = ElementTree.Element(
        "node",
        category=node.operation.category.value,
        identifier=node.operation.identifier,
    )
    for prop in node.properties:
        element.append(_property_element(prop))
    for child in node.children:
        element.append(_node_element(child))
    return element


def dumps(plan: UnifiedPlan) -> str:
    """Serialize *plan* to a pretty-printed XML document."""
    root = ElementTree.Element("unifiedPlan", sourceDbms=plan.source_dbms or "")
    plan_properties = ElementTree.SubElement(root, "planProperties")
    for prop in plan.properties:
        plan_properties.append(_property_element(prop))
    if plan.root is not None:
        root.append(_node_element(plan.root))
    raw = ElementTree.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ").strip()


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _value_from_element(element: ElementTree.Element):
    kind = element.get("type", "string")
    # Text-only elements keep their text verbatim through pretty-printing
    # (the indenter only pads elements with element children), so string
    # values — including leading/trailing whitespace — round-trip exactly.
    # Only the typed scalars tolerate surrounding whitespace.
    text = element.text or ""
    if kind == "null":
        return None
    if kind == "boolean":
        return text.strip() == "true"
    if kind == "number":
        stripped = text.strip()
        try:
            return int(stripped)
        except ValueError:
            pass
        try:
            return float(stripped)  # also covers 'inf'/'nan' repr output
        except ValueError as exc:
            raise FormatError(f"invalid number in XML plan: {text!r}") from exc
    if element.get("escape") == "python":
        try:
            return text.encode("ascii").decode("unicode_escape")
        except (UnicodeDecodeError, UnicodeEncodeError) as exc:
            raise FormatError(f"invalid escaped string in XML plan: {text!r}") from exc
    return text


def _property_from_element(element: ElementTree.Element) -> Property:
    category_name = element.get("category")
    identifier = element.get("identifier")
    if category_name is None or identifier is None:
        raise FormatError("XML property element needs category and identifier")
    try:
        category = PropertyCategory.from_name(category_name)
    except ValueError as exc:
        raise FormatError(str(exc)) from exc
    return Property(category, identifier, _value_from_element(element))


def _node_from_element(element: ElementTree.Element) -> PlanNode:
    category_name = element.get("category")
    identifier = element.get("identifier")
    if category_name is None or identifier is None:
        raise FormatError("XML node element needs category and identifier")
    try:
        category = OperationCategory.from_name(category_name)
    except ValueError as exc:
        raise FormatError(str(exc)) from exc
    node = PlanNode(Operation(category, identifier))
    for child in element:
        if child.tag == "property":
            node.properties.append(_property_from_element(child))
        elif child.tag == "node":
            node.children.append(_node_from_element(child))
        else:
            raise FormatError(f"unexpected XML element <{child.tag}> inside node")
    return node


def loads(text: str) -> UnifiedPlan:
    """Parse a unified plan from its XML document form."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise FormatError(f"invalid XML document: {exc}") from exc
    if root.tag != "unifiedPlan":
        raise FormatError(f"expected <unifiedPlan> root, got <{root.tag}>")
    plan = UnifiedPlan(source_dbms=root.get("sourceDbms", ""))
    for child in root:
        if child.tag == "planProperties":
            for prop_element in child:
                if prop_element.tag != "property":
                    raise FormatError(
                        f"unexpected XML element <{prop_element.tag}> in planProperties"
                    )
                plan.properties.append(_property_from_element(prop_element))
        elif child.tag == "node":
            if plan.root is not None:
                raise FormatError("XML plan has more than one root node")
            plan.root = _node_from_element(child)
        else:
            raise FormatError(f"unexpected XML element <{child.tag}> in unifiedPlan")
    return plan
