"""Tabular serialization of unified query plans.

Table formats (Section III-E) encode each operation and its properties on one
row and express the tree structure through an ``id`` / ``parent`` pair, much
like MySQL's and TiDB's tabular ``EXPLAIN`` output.  The rendering is a plain
ASCII table:

.. code-block:: text

    +----+--------+------------------------+---------------------------+
    | id | parent | operation              | properties                |
    +----+--------+------------------------+---------------------------+
    |  1 |        | Folder->Aggregate      | Cardinality->rows: 100    |
    |  2 |      1 | Producer->Full Table…  | Configuration->name: "t0" |
    +----+--------+------------------------+---------------------------+
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.model import PlanNode, UnifiedPlan


def _rows(plan: UnifiedPlan) -> List[Tuple[int, Optional[int], str, str]]:
    rows: List[Tuple[int, Optional[int], str, str]] = []
    counter = [0]

    def visit(node: PlanNode, parent_id: Optional[int]) -> None:
        counter[0] += 1
        node_id = counter[0]
        properties = "; ".join(
            f"{p.category.value}->{p.identifier}: {p.value!r}" for p in node.properties
        )
        rows.append((node_id, parent_id, str(node.operation), properties))
        for child in node.children:
            visit(child, node_id)

    if plan.root is not None:
        visit(plan.root, None)
    return rows


def render(plan: UnifiedPlan) -> str:
    """Render *plan* as an ASCII table; plan properties follow as a footer."""
    rows = _rows(plan)
    header = ("id", "parent", "operation", "properties")
    table_rows = [
        (str(node_id), "" if parent is None else str(parent), operation, properties)
        for node_id, parent, operation, properties in rows
    ]
    widths = [
        max([len(header[column])] + [len(row[column]) for row in table_rows] or [0])
        for column in range(4)
    ]

    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (width + 2) for width in widths) + "+"

    def format_row(values: Tuple[str, str, str, str]) -> str:
        cells = [f" {value.ljust(widths[i])} " for i, value in enumerate(values)]
        return "|" + "|".join(cells) + "|"

    lines = [line(), format_row(header), line()]
    lines.extend(format_row(row) for row in table_rows)
    lines.append(line())
    for prop in plan.properties:
        lines.append(f"{prop.category.value}->{prop.identifier}: {prop.value!r}")
    return "\n".join(lines)
