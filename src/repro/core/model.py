"""Data model of the unified query plan representation (UPlan).

The model follows the EBNF grammar of Listing 2 in the paper:

.. code-block:: text

    plan       ::= ( tree )? properties
    tree       ::= node ( '--children-->' '{' tree (',' tree)* '}' )?
    node       ::= operation properties
    operation  ::= 'Operation' ':' operation_category '->' operation_identifier
    properties ::= ( property ( ',' property )* )?
    property   ::= property_category '->' property_identifier ':' value

A :class:`UnifiedPlan` therefore consists of an optional tree of
:class:`PlanNode` objects — each holding one :class:`Operation` and zero or
more :class:`Property` objects — plus a list of plan-associated properties.
Values are restricted to strings, numbers, booleans and ``null`` exactly as the
grammar specifies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.categories import (
    OPERATION_CATEGORY_ORDER,
    PROPERTY_CATEGORY_ORDER,
    OperationCategory,
    PropertyCategory,
)
from repro.core.naming import intern_identifier
from repro.errors import PlanValidationError

#: The value domain permitted by the grammar (``value`` production).
PropertyValue = Any  # str | int | float | bool | None

_IDENTIFIER_ALLOWED = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ "
)


def is_valid_keyword(identifier: str) -> bool:
    """Return whether *identifier* conforms to the ``keyword`` production.

    The grammar defines ``keyword ::= letter (letter | digit | '_')*``.  The
    unified naming convention additionally allows *single* spaces between
    words (e.g. ``Full Table Scan``), which we treat as part of the keyword
    for readability; serializers normalise them when a strict keyword is
    required.  Leading, trailing, and consecutive spaces are rejected: they
    are invisible in every serialized form, so admitting them would let two
    visually identical identifiers (``"Scan"`` vs ``"Scan  "``) denote
    different operations.
    """
    if not identifier:
        return False
    if not identifier[0].isalpha():
        return False
    if identifier.endswith(" ") or "  " in identifier:
        return False
    return all(ch in _IDENTIFIER_ALLOWED for ch in identifier)


def is_valid_value(value: PropertyValue) -> bool:
    """Return whether *value* is within the grammar's value domain."""
    return value is None or isinstance(value, (str, int, float, bool))


# ---------------------------------------------------------------------------
# Canonical ordering and fingerprinting
# ---------------------------------------------------------------------------

_PROPERTY_CATEGORY_RANK = {
    category: rank for rank, category in enumerate(PROPERTY_CATEGORY_ORDER)
}

#: Cache key under which the identity fingerprint is stored on nodes/plans.
#: :mod:`repro.core.compare` stores its filtered structural fingerprints in
#: the same per-node cache under its own keys.
FINGERPRINT_IDENTITY = "identity"


def value_token(value: PropertyValue) -> str:
    """Render *value* as a type-tagged token for canonical ordering/hashing.

    The tag keeps values of different types distinct even when their textual
    forms coincide (the string ``"5"`` versus the integer ``5``), so the
    fingerprint is injective over the grammar's value domain.
    """
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "b:true" if value else "b:false"
    if isinstance(value, (int, float)):
        return f"n:{value!r}"
    return f"s:{value}"


def canonical_property_key(prop: "Property") -> Tuple[int, str, str]:
    """The canonical sort key: grammar category order, then name, then value."""
    return (
        _PROPERTY_CATEGORY_RANK[prop.category],
        prop.identifier,
        value_token(prop.value),
    )


def canonical_properties(properties: Iterable["Property"]) -> List["Property"]:
    """Return *properties* in canonical order (category rank, name, value)."""
    return sorted(properties, key=canonical_property_key)


def _property_line(prop: "Property") -> str:
    return f"{prop.category.value}->{prop.identifier}={value_token(prop.value)}"


def _update_framed(hasher, marker: bytes, text: str) -> None:
    """Feed one variable-length component with explicit framing.

    Length-prefixing keeps the digest injective: without it, a property
    *value* containing a marker byte could forge component boundaries and
    make two distinct plans hash alike.
    """
    encoded = text.encode("utf-8")
    hasher.update(marker)
    hasher.update(len(encoded).to_bytes(4, "big"))
    hasher.update(encoded)


class _ObservedList(list):
    """A list that clears its owner's fingerprint cache on every mutation.

    ``PlanNode.properties``/``children`` (and ``UnifiedPlan.properties``) are
    stored in observed lists so that in-place mutation — ``append``, slice
    assignment, ``sort`` — invalidates the *owning* node's cached
    fingerprints.  Caches of already-fingerprinted ancestors cannot be
    reached from here (nodes hold no parent pointers); mutating below a
    fingerprinted ancestor requires `invalidate_fingerprints` on it.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner, iterable=()) -> None:
        super().__init__(iterable)
        self._owner = owner

    def _touch(self) -> None:
        cache = self._owner._fp_cache
        if cache:
            cache.clear()

    def append(self, item):
        super().append(item)
        self._touch()

    def extend(self, iterable):
        super().extend(iterable)
        self._touch()

    def insert(self, index, item):
        super().insert(index, item)
        self._touch()

    def remove(self, item):
        super().remove(item)
        self._touch()

    def pop(self, index=-1):
        item = super().pop(index)
        self._touch()
        return item

    def clear(self):
        super().clear()
        self._touch()

    def sort(self, **kwargs):
        super().sort(**kwargs)
        self._touch()

    def reverse(self):
        super().reverse()
        self._touch()

    def __setitem__(self, index, value):
        super().__setitem__(index, value)
        self._touch()

    def __delitem__(self, index):
        super().__delitem__(index)
        self._touch()

    def __iadd__(self, iterable):
        result = super().__iadd__(iterable)
        self._touch()
        return result

    def __imul__(self, count):
        result = super().__imul__(count)
        self._touch()
        return result

    def __reduce__(self):
        # Pickle/deepcopy as a plain list; the owner re-wraps on assignment.
        return (list, (list(self),))


@dataclass(frozen=True)
class Operation:
    """A concrete step executed by a DBMS, in unified naming.

    Parameters
    ----------
    category:
        One of the seven :class:`OperationCategory` members.
    identifier:
        The unified operation name, e.g. ``"Full Table Scan"``.
    """

    category: OperationCategory
    identifier: str

    def __post_init__(self) -> None:
        if not isinstance(self.category, OperationCategory):
            raise PlanValidationError(
                f"operation category must be an OperationCategory, got {self.category!r}"
            )
        if not is_valid_keyword(self.identifier):
            raise PlanValidationError(
                f"invalid operation identifier: {self.identifier!r}"
            )
        # Intern so repeated names across plans share one string object;
        # equality then hits the pointer fast path (see core.naming).
        object.__setattr__(self, "identifier", intern_identifier(self.identifier))

    def __str__(self) -> str:
        return f"{self.category.value}->{self.identifier}"

    def to_dict(self) -> Dict[str, str]:
        """Return a JSON-compatible dictionary form."""
        return {"category": self.category.value, "identifier": self.identifier}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Operation":
        """Reconstruct an operation from :meth:`to_dict` output."""
        return cls(
            category=OperationCategory.from_name(data["category"]),
            identifier=data["identifier"],
        )


@dataclass(frozen=True)
class Property:
    """A property associated with an operation or with the plan as a whole.

    Parameters
    ----------
    category:
        One of the four :class:`PropertyCategory` members.
    identifier:
        The unified property name, e.g. ``"Estimated Rows"``.
    value:
        A string, number, boolean, or ``None``.
    """

    category: PropertyCategory
    identifier: str
    value: PropertyValue = None

    def __post_init__(self) -> None:
        if not isinstance(self.category, PropertyCategory):
            raise PlanValidationError(
                f"property category must be a PropertyCategory, got {self.category!r}"
            )
        if not is_valid_keyword(self.identifier):
            raise PlanValidationError(
                f"invalid property identifier: {self.identifier!r}"
            )
        if not is_valid_value(self.value):
            raise PlanValidationError(
                f"invalid property value for {self.identifier!r}: {self.value!r}"
            )
        object.__setattr__(self, "identifier", intern_identifier(self.identifier))

    def __str__(self) -> str:
        return f"{self.category.value}->{self.identifier}: {self.value!r}"

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-compatible dictionary form."""
        return {
            "category": self.category.value,
            "identifier": self.identifier,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Property":
        """Reconstruct a property from :meth:`to_dict` output."""
        return cls(
            category=PropertyCategory.from_name(data["category"]),
            identifier=data["identifier"],
            value=data.get("value"),
        )


@dataclass
class PlanNode:
    """A node of the unified plan tree: one operation plus its properties.

    Nodes cache their Merkle fingerprints (see :meth:`fingerprint`) after
    first computation.  The builder-style mutators below invalidate the
    node's own cache; mutating ``properties``/``children`` directly, or
    mutating a subtree after an *ancestor* was fingerprinted, requires
    calling :meth:`invalidate_fingerprints` on the outermost modified tree.
    The pipeline layer treats plans as frozen once ingested, which makes the
    cache sound there by construction.
    """

    operation: Operation
    properties: List[Property] = field(default_factory=list)
    children: List["PlanNode"] = field(default_factory=list)
    #: Per-node fingerprint cache, keyed by fingerprint mode.
    _fp_cache: Dict[str, str] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __setattr__(self, name: str, value: Any) -> None:
        if name in ("properties", "children") and not (
            isinstance(value, _ObservedList) and value._owner is self
        ):
            value = _ObservedList(self, value)
        object.__setattr__(self, name, value)
        if name != "_fp_cache":
            cache = self.__dict__.get("_fp_cache")
            if cache:
                cache.clear()

    def __getstate__(self):
        # Pickle/deepcopy as plain lists and without cached fingerprints:
        # the restored copy's lists would otherwise lose their invalidation
        # hook while the stale cache survives.
        state = dict(self.__dict__)
        state["properties"] = list(state["properties"])
        state["children"] = list(state["children"])
        state["_fp_cache"] = {}
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)  # re-wraps the lists via __setattr__

    # -- construction helpers -------------------------------------------------

    def add_property(
        self,
        category: PropertyCategory,
        identifier: str,
        value: PropertyValue = None,
    ) -> "PlanNode":
        """Append a property and return ``self`` for chaining."""
        self.properties.append(Property(category, identifier, value))
        self._fp_cache.clear()
        return self

    def add_child(self, child: "PlanNode") -> "PlanNode":
        """Append a child node and return ``self`` for chaining."""
        self.children.append(child)
        self._fp_cache.clear()
        return self

    # -- queries ---------------------------------------------------------------

    def property_value(self, identifier: str, default: PropertyValue = None) -> PropertyValue:
        """Return the value of the first property named *identifier*."""
        for prop in self.properties:
            if prop.identifier == identifier:
                return prop.value
        return default

    def properties_in(self, category: PropertyCategory) -> List[Property]:
        """Return the node's properties belonging to *category*."""
        return [p for p in self.properties if p.category is category]

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def walk_postorder(self) -> Iterator["PlanNode"]:
        """Yield all descendants and this node in post-order."""
        for child in self.children:
            yield from child.walk_postorder()
        yield self

    def depth(self) -> int:
        """Return the height of the subtree rooted at this node (leaf = 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        """Return the number of nodes in the subtree rooted at this node."""
        return 1 + sum(child.size() for child in self.children)

    def find(self, predicate: Callable[["PlanNode"], bool]) -> List["PlanNode"]:
        """Return all nodes in the subtree satisfying *predicate*."""
        return [node for node in self.walk() if predicate(node)]

    def find_operations(self, identifier: str) -> List["PlanNode"]:
        """Return all nodes whose operation identifier equals *identifier*."""
        return self.find(lambda node: node.operation.identifier == identifier)

    def count_categories(self) -> Dict[OperationCategory, int]:
        """Count operations per category in the subtree (Table VI metric)."""
        counts = {category: 0 for category in OPERATION_CATEGORY_ORDER}
        for node in self.walk():
            counts[node.operation.category] += 1
        return counts

    # -- canonical form and fingerprinting --------------------------------------

    def fingerprint(self) -> str:
        """Return the cached Merkle identity fingerprint of the subtree.

        The fingerprint hashes the operation, the properties in canonical
        order, and the children's fingerprints, bottom-up.  Two subtrees have
        the same fingerprint iff they are identical up to property order, so
        the digest is stable under :meth:`canonicalize` and under every
        serialization round-trip.  It depends only on plan content — no
        process-specific state — so it is stable across processes and runs.
        """
        cached = self._fp_cache.get(FINGERPRINT_IDENTITY)
        if cached is not None:
            return cached
        # Iterative post-order walk with hoisted bindings: plan fingerprints
        # sit on the campaign hot path (one per explained query), and the
        # recursive form paid a Python frame plus global lookups per node.
        blake2b = hashlib.blake2b
        framed = _update_framed
        line = _property_line
        key = FINGERPRINT_IDENTITY
        stack = [self]
        pending: List["PlanNode"] = []
        while stack:
            node = stack.pop()
            if key in node._fp_cache:
                continue
            pending.append(node)
            stack.extend(node.children)
        for node in reversed(pending):  # children always precede parents
            cache = node._fp_cache
            if key in cache:
                continue
            hasher = blake2b(digest_size=16)
            update = hasher.update
            # Keywords cannot contain the separator (is_valid_keyword), so the
            # operation needs no framing; property lines embed arbitrary values
            # and are length-framed to keep the digest injective.
            update(node.operation.category.value.encode("utf-8"))
            update(b"\x00")
            update(node.operation.identifier.encode("utf-8"))
            for prop in canonical_properties(node.properties):
                framed(hasher, b"\x01", line(prop))
            for child in node.children:
                update(b"\x02")
                update(child._fp_cache[key].encode("ascii"))
            cache[key] = hasher.hexdigest()
        return self._fp_cache[key]

    def invalidate_fingerprints(self) -> None:
        """Clear every cached fingerprint in the subtree (after mutation)."""
        for node in self.walk():
            node._fp_cache.clear()

    def canonicalize(self, sort_children: bool = False) -> "PlanNode":
        """Return a copy of the subtree in canonical form.

        Properties are ordered by the grammar's category order, then by
        identifier and value.  Child order is preserved by default because it
        is semantically significant (e.g. build vs. probe side of a join);
        ``sort_children=True`` additionally orders children by fingerprint,
        which yields an order-insensitive normal form for symmetric
        comparisons.  The canonical copy has the same :meth:`fingerprint` as
        the original (unless children were re-ordered).
        """
        children = [child.canonicalize(sort_children) for child in self.children]
        if sort_children:
            children.sort(key=lambda child: child.fingerprint())
        return PlanNode(
            operation=self.operation,
            properties=canonical_properties(self.properties),
            children=children,
        )

    def is_canonical(self) -> bool:
        """Whether every node's properties are already canonically ordered."""
        for node in self.walk():
            keys = [canonical_property_key(prop) for prop in node.properties]
            if keys != sorted(keys):
                return False
        return True

    def __hash__(self) -> int:
        # Deep-equal nodes always share a fingerprint, so hashing the
        # fingerprint is consistent with the dataclass-generated __eq__.
        return hash(self.fingerprint())

    # -- serialization helpers --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-compatible dictionary form of the subtree."""
        return {
            "operation": self.operation.to_dict(),
            "properties": [prop.to_dict() for prop in self.properties],
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanNode":
        """Reconstruct a subtree from :meth:`to_dict` output."""
        return cls(
            operation=Operation.from_dict(data["operation"]),
            properties=[Property.from_dict(p) for p in data.get("properties", [])],
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    def copy(self) -> "PlanNode":
        """Return a deep copy of the subtree (cached fingerprints carry over)."""
        return PlanNode(
            operation=self.operation,
            properties=list(self.properties),
            children=[child.copy() for child in self.children],
            _fp_cache=dict(self._fp_cache),
        )

    def __str__(self) -> str:
        return f"PlanNode({self.operation}, {len(self.properties)} props, {len(self.children)} children)"


@dataclass
class UnifiedPlan:
    """A complete unified query plan: an optional tree plus plan properties.

    The paper's grammar permits a plan without a tree — InfluxDB, for example,
    exposes only a list of plan-associated properties — hence ``root`` may be
    ``None``.
    """

    root: Optional[PlanNode] = None
    properties: List[Property] = field(default_factory=list)
    #: Name of the DBMS the plan was converted from ("" if hand-built).
    source_dbms: str = ""
    #: The query the plan belongs to, when known.
    query: str = ""
    #: Plan-level cache for content-derived values (fingerprints, embeddings),
    #: keyed by derivation mode.  Each entry stores ``(root_digest, value)``
    #: so the cached value self-validates against the tree's current digest
    #: (see :meth:`fingerprint` and :meth:`content_cache_get`).
    _fp_cache: Dict[str, Tuple[str, Any]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __setattr__(self, name: str, value: Any) -> None:
        if name == "properties" and not (
            isinstance(value, _ObservedList) and value._owner is self
        ):
            value = _ObservedList(self, value)
        object.__setattr__(self, name, value)
        # source_dbms/query do not contribute to the fingerprint, so only
        # structural fields invalidate the plan-level cache.
        if name in ("root", "properties"):
            cache = self.__dict__.get("_fp_cache")
            if cache:
                cache.clear()

    def __getstate__(self):
        state = dict(self.__dict__)
        state["properties"] = list(state["properties"])
        state["_fp_cache"] = {}
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)  # re-wraps the list via __setattr__

    # -- construction helpers -------------------------------------------------

    def add_property(
        self,
        category: PropertyCategory,
        identifier: str,
        value: PropertyValue = None,
    ) -> "UnifiedPlan":
        """Append a plan-associated property and return ``self``."""
        self.properties.append(Property(category, identifier, value))
        self._fp_cache.clear()
        return self

    # -- queries ---------------------------------------------------------------

    def nodes(self) -> List[PlanNode]:
        """Return every node of the tree in pre-order (empty if no tree)."""
        if self.root is None:
            return []
        return list(self.root.walk())

    def operations(self) -> List[Operation]:
        """Return every operation in the tree in pre-order."""
        return [node.operation for node in self.nodes()]

    def node_count(self) -> int:
        """Return the number of operations in the plan (0 for tree-less plans)."""
        return 0 if self.root is None else self.root.size()

    def depth(self) -> int:
        """Return the height of the plan tree (0 for tree-less plans)."""
        return 0 if self.root is None else self.root.depth()

    def count_categories(self) -> Dict[OperationCategory, int]:
        """Count operations per category — the Table VI / VII metric."""
        if self.root is None:
            return {category: 0 for category in OPERATION_CATEGORY_ORDER}
        return self.root.count_categories()

    def count_property_categories(self) -> Dict[PropertyCategory, int]:
        """Count properties per category across the plan and all nodes."""
        counts = {category: 0 for category in PROPERTY_CATEGORY_ORDER}
        for prop in self.all_properties():
            counts[prop.category] += 1
        return counts

    def all_properties(self) -> List[Property]:
        """Return plan-associated plus every operation-associated property."""
        collected = list(self.properties)
        for node in self.nodes():
            collected.extend(node.properties)
        return collected

    def plan_property_value(
        self, identifier: str, default: PropertyValue = None
    ) -> PropertyValue:
        """Return the value of the first plan-associated property *identifier*."""
        for prop in self.properties:
            if prop.identifier == identifier:
                return prop.value
        return default

    def find_operations(self, identifier: str) -> List[PlanNode]:
        """Return all nodes whose unified operation name equals *identifier*."""
        if self.root is None:
            return []
        return self.root.find_operations(identifier)

    def operations_in(self, category: OperationCategory) -> List[PlanNode]:
        """Return all nodes whose operation belongs to *category*."""
        if self.root is None:
            return []
        return self.root.find(lambda node: node.operation.category is category)

    def leaf_nodes(self) -> List[PlanNode]:
        """Return the leaves of the plan tree (typically Producer operations)."""
        if self.root is None:
            return []
        return self.root.find(lambda node: not node.children)

    # -- canonical form and fingerprinting --------------------------------------

    def fingerprint(self) -> str:
        """Return the cached Merkle identity fingerprint of the whole plan.

        The digest covers the tree (via :meth:`PlanNode.fingerprint`) and the
        plan-associated properties in canonical order.  ``source_dbms`` and
        ``query`` are deliberately excluded: the fingerprint identifies plan
        *content*, so the same plan obtained for different queries — or
        parsed back from any serialization format — deduplicates to one
        entry.  Equality of fingerprints is the O(1) plan-identity check the
        pipeline and the testing applications build on.

        The plan-level cache entry records the root digest it was derived
        from, so it transparently recomputes when the tree was mutated (and
        the mutated node's own cache invalidated) underneath the plan.
        """
        root_digest = "<no-tree>" if self.root is None else self.root.fingerprint()
        cached = self._fp_cache.get(FINGERPRINT_IDENTITY)
        if cached is not None and cached[0] == root_digest:
            return cached[1]
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(root_digest.encode("utf-8"))
        for prop in canonical_properties(self.properties):
            _update_framed(hasher, b"\x01", _property_line(prop))
        digest = hasher.hexdigest()
        self._fp_cache[FINGERPRINT_IDENTITY] = (root_digest, digest)
        return digest

    def invalidate_fingerprints(self) -> None:
        """Clear every cached fingerprint in the plan (after mutation)."""
        self._fp_cache.clear()
        if self.root is not None:
            self.root.invalidate_fingerprints()

    # -- content-derived value cache --------------------------------------------
    #
    # The fingerprint cache above generalizes to any value derived purely
    # from plan content: each entry stores ``(root_digest, value)`` so the
    # cached value self-validates against the tree's current digest, and
    # plan-level property mutation clears the cache via the _ObservedList
    # hook.  :func:`repro.similarity.embed_plan` memoises plan embeddings
    # through these hooks exactly like :meth:`fingerprint` memoises digests.

    def content_cache_get(self, key: str) -> Optional[Any]:
        """Return the cached content-derived value under *key*, if valid.

        The value is returned only when the tree's current root digest
        matches the digest the value was derived from (mutations of the
        plan's own property list clear the cache directly).
        """
        cached = self._fp_cache.get(key)
        if cached is None:
            return None
        root_digest = "<no-tree>" if self.root is None else self.root.fingerprint()
        return cached[1] if cached[0] == root_digest else None

    def content_cache_put(self, key: str, value: Any) -> None:
        """Cache *value* under *key*, bound to the tree's current digest.

        *value* must be derived purely from plan content (never from
        ``source_dbms``/``query`` or process state), so that the cache —
        which is dropped on pickle like the fingerprint cache — can be
        rebuilt identically in any process.
        """
        root_digest = "<no-tree>" if self.root is None else self.root.fingerprint()
        self._fp_cache[key] = (root_digest, value)

    def canonicalize(self, sort_children: bool = False) -> "UnifiedPlan":
        """Return a copy of the plan in canonical form (see PlanNode)."""
        return UnifiedPlan(
            root=None if self.root is None else self.root.canonicalize(sort_children),
            properties=canonical_properties(self.properties),
            source_dbms=self.source_dbms,
            query=self.query,
        )

    def is_canonical(self) -> bool:
        """Whether plan and node properties are already canonically ordered."""
        keys = [canonical_property_key(prop) for prop in self.properties]
        if keys != sorted(keys):
            return False
        return self.root is None or self.root.is_canonical()

    def __hash__(self) -> int:
        # Deep-equal plans always share a fingerprint (see PlanNode.__hash__).
        return hash(self.fingerprint())

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-compatible dictionary form of the whole plan."""
        return {
            "source_dbms": self.source_dbms,
            "query": self.query,
            "properties": [prop.to_dict() for prop in self.properties],
            "tree": None if self.root is None else self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UnifiedPlan":
        """Reconstruct a plan from :meth:`to_dict` output."""
        tree = data.get("tree")
        return cls(
            root=None if tree is None else PlanNode.from_dict(tree),
            properties=[Property.from_dict(p) for p in data.get("properties", [])],
            source_dbms=data.get("source_dbms", ""),
            query=data.get("query", ""),
        )

    def copy(self) -> "UnifiedPlan":
        """Return a deep copy of the plan (cached fingerprints carry over)."""
        return UnifiedPlan(
            root=None if self.root is None else self.root.copy(),
            properties=list(self.properties),
            source_dbms=self.source_dbms,
            query=self.query,
            _fp_cache=dict(self._fp_cache),
        )

    def __str__(self) -> str:
        return (
            f"UnifiedPlan(source={self.source_dbms or 'n/a'}, "
            f"operations={self.node_count()}, plan_properties={len(self.properties)})"
        )


def iter_operation_identifiers(plan: UnifiedPlan) -> Iterator[Tuple[str, str]]:
    """Yield ``(category_name, identifier)`` pairs for every operation in *plan*."""
    for operation in plan.operations():
        yield operation.category.value, operation.identifier


def merge_property_lists(
    *lists: Iterable[Property],
) -> List[Property]:
    """Merge property lists, keeping the first occurrence of each identifier."""
    seen: Dict[Tuple[PropertyCategory, str], Property] = {}
    for properties in lists:
        for prop in properties:
            key = (prop.category, prop.identifier)
            if key not in seen:
                seen[key] = prop
    return list(seen.values())
