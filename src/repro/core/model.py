"""Data model of the unified query plan representation (UPlan).

The model follows the EBNF grammar of Listing 2 in the paper:

.. code-block:: text

    plan       ::= ( tree )? properties
    tree       ::= node ( '--children-->' '{' tree (',' tree)* '}' )?
    node       ::= operation properties
    operation  ::= 'Operation' ':' operation_category '->' operation_identifier
    properties ::= ( property ( ',' property )* )?
    property   ::= property_category '->' property_identifier ':' value

A :class:`UnifiedPlan` therefore consists of an optional tree of
:class:`PlanNode` objects — each holding one :class:`Operation` and zero or
more :class:`Property` objects — plus a list of plan-associated properties.
Values are restricted to strings, numbers, booleans and ``null`` exactly as the
grammar specifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.categories import (
    OPERATION_CATEGORY_ORDER,
    PROPERTY_CATEGORY_ORDER,
    OperationCategory,
    PropertyCategory,
)
from repro.errors import PlanValidationError

#: The value domain permitted by the grammar (``value`` production).
PropertyValue = Any  # str | int | float | bool | None

_IDENTIFIER_ALLOWED = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ "
)


def is_valid_keyword(identifier: str) -> bool:
    """Return whether *identifier* conforms to the ``keyword`` production.

    The grammar defines ``keyword ::= letter (letter | digit | '_')*``.  The
    unified naming convention additionally allows single spaces between words
    (e.g. ``Full Table Scan``), which we treat as part of the keyword for
    readability; serializers normalise them when a strict keyword is required.
    """
    if not identifier:
        return False
    if not identifier[0].isalpha():
        return False
    return all(ch in _IDENTIFIER_ALLOWED for ch in identifier)


def is_valid_value(value: PropertyValue) -> bool:
    """Return whether *value* is within the grammar's value domain."""
    return value is None or isinstance(value, (str, int, float, bool))


@dataclass(frozen=True)
class Operation:
    """A concrete step executed by a DBMS, in unified naming.

    Parameters
    ----------
    category:
        One of the seven :class:`OperationCategory` members.
    identifier:
        The unified operation name, e.g. ``"Full Table Scan"``.
    """

    category: OperationCategory
    identifier: str

    def __post_init__(self) -> None:
        if not isinstance(self.category, OperationCategory):
            raise PlanValidationError(
                f"operation category must be an OperationCategory, got {self.category!r}"
            )
        if not is_valid_keyword(self.identifier):
            raise PlanValidationError(
                f"invalid operation identifier: {self.identifier!r}"
            )

    def __str__(self) -> str:
        return f"{self.category.value}->{self.identifier}"

    def to_dict(self) -> Dict[str, str]:
        """Return a JSON-compatible dictionary form."""
        return {"category": self.category.value, "identifier": self.identifier}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Operation":
        """Reconstruct an operation from :meth:`to_dict` output."""
        return cls(
            category=OperationCategory.from_name(data["category"]),
            identifier=data["identifier"],
        )


@dataclass(frozen=True)
class Property:
    """A property associated with an operation or with the plan as a whole.

    Parameters
    ----------
    category:
        One of the four :class:`PropertyCategory` members.
    identifier:
        The unified property name, e.g. ``"Estimated Rows"``.
    value:
        A string, number, boolean, or ``None``.
    """

    category: PropertyCategory
    identifier: str
    value: PropertyValue = None

    def __post_init__(self) -> None:
        if not isinstance(self.category, PropertyCategory):
            raise PlanValidationError(
                f"property category must be a PropertyCategory, got {self.category!r}"
            )
        if not is_valid_keyword(self.identifier):
            raise PlanValidationError(
                f"invalid property identifier: {self.identifier!r}"
            )
        if not is_valid_value(self.value):
            raise PlanValidationError(
                f"invalid property value for {self.identifier!r}: {self.value!r}"
            )

    def __str__(self) -> str:
        return f"{self.category.value}->{self.identifier}: {self.value!r}"

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-compatible dictionary form."""
        return {
            "category": self.category.value,
            "identifier": self.identifier,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Property":
        """Reconstruct a property from :meth:`to_dict` output."""
        return cls(
            category=PropertyCategory.from_name(data["category"]),
            identifier=data["identifier"],
            value=data.get("value"),
        )


@dataclass
class PlanNode:
    """A node of the unified plan tree: one operation plus its properties."""

    operation: Operation
    properties: List[Property] = field(default_factory=list)
    children: List["PlanNode"] = field(default_factory=list)

    # -- construction helpers -------------------------------------------------

    def add_property(
        self,
        category: PropertyCategory,
        identifier: str,
        value: PropertyValue = None,
    ) -> "PlanNode":
        """Append a property and return ``self`` for chaining."""
        self.properties.append(Property(category, identifier, value))
        return self

    def add_child(self, child: "PlanNode") -> "PlanNode":
        """Append a child node and return ``self`` for chaining."""
        self.children.append(child)
        return self

    # -- queries ---------------------------------------------------------------

    def property_value(self, identifier: str, default: PropertyValue = None) -> PropertyValue:
        """Return the value of the first property named *identifier*."""
        for prop in self.properties:
            if prop.identifier == identifier:
                return prop.value
        return default

    def properties_in(self, category: PropertyCategory) -> List[Property]:
        """Return the node's properties belonging to *category*."""
        return [p for p in self.properties if p.category is category]

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def walk_postorder(self) -> Iterator["PlanNode"]:
        """Yield all descendants and this node in post-order."""
        for child in self.children:
            yield from child.walk_postorder()
        yield self

    def depth(self) -> int:
        """Return the height of the subtree rooted at this node (leaf = 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        """Return the number of nodes in the subtree rooted at this node."""
        return 1 + sum(child.size() for child in self.children)

    def find(self, predicate: Callable[["PlanNode"], bool]) -> List["PlanNode"]:
        """Return all nodes in the subtree satisfying *predicate*."""
        return [node for node in self.walk() if predicate(node)]

    def find_operations(self, identifier: str) -> List["PlanNode"]:
        """Return all nodes whose operation identifier equals *identifier*."""
        return self.find(lambda node: node.operation.identifier == identifier)

    def count_categories(self) -> Dict[OperationCategory, int]:
        """Count operations per category in the subtree (Table VI metric)."""
        counts = {category: 0 for category in OPERATION_CATEGORY_ORDER}
        for node in self.walk():
            counts[node.operation.category] += 1
        return counts

    # -- serialization helpers --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-compatible dictionary form of the subtree."""
        return {
            "operation": self.operation.to_dict(),
            "properties": [prop.to_dict() for prop in self.properties],
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanNode":
        """Reconstruct a subtree from :meth:`to_dict` output."""
        return cls(
            operation=Operation.from_dict(data["operation"]),
            properties=[Property.from_dict(p) for p in data.get("properties", [])],
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    def copy(self) -> "PlanNode":
        """Return a deep copy of the subtree."""
        return PlanNode(
            operation=self.operation,
            properties=list(self.properties),
            children=[child.copy() for child in self.children],
        )

    def __str__(self) -> str:
        return f"PlanNode({self.operation}, {len(self.properties)} props, {len(self.children)} children)"


@dataclass
class UnifiedPlan:
    """A complete unified query plan: an optional tree plus plan properties.

    The paper's grammar permits a plan without a tree — InfluxDB, for example,
    exposes only a list of plan-associated properties — hence ``root`` may be
    ``None``.
    """

    root: Optional[PlanNode] = None
    properties: List[Property] = field(default_factory=list)
    #: Name of the DBMS the plan was converted from ("" if hand-built).
    source_dbms: str = ""
    #: The query the plan belongs to, when known.
    query: str = ""

    # -- construction helpers -------------------------------------------------

    def add_property(
        self,
        category: PropertyCategory,
        identifier: str,
        value: PropertyValue = None,
    ) -> "UnifiedPlan":
        """Append a plan-associated property and return ``self``."""
        self.properties.append(Property(category, identifier, value))
        return self

    # -- queries ---------------------------------------------------------------

    def nodes(self) -> List[PlanNode]:
        """Return every node of the tree in pre-order (empty if no tree)."""
        if self.root is None:
            return []
        return list(self.root.walk())

    def operations(self) -> List[Operation]:
        """Return every operation in the tree in pre-order."""
        return [node.operation for node in self.nodes()]

    def node_count(self) -> int:
        """Return the number of operations in the plan (0 for tree-less plans)."""
        return 0 if self.root is None else self.root.size()

    def depth(self) -> int:
        """Return the height of the plan tree (0 for tree-less plans)."""
        return 0 if self.root is None else self.root.depth()

    def count_categories(self) -> Dict[OperationCategory, int]:
        """Count operations per category — the Table VI / VII metric."""
        if self.root is None:
            return {category: 0 for category in OPERATION_CATEGORY_ORDER}
        return self.root.count_categories()

    def count_property_categories(self) -> Dict[PropertyCategory, int]:
        """Count properties per category across the plan and all nodes."""
        counts = {category: 0 for category in PROPERTY_CATEGORY_ORDER}
        for prop in self.all_properties():
            counts[prop.category] += 1
        return counts

    def all_properties(self) -> List[Property]:
        """Return plan-associated plus every operation-associated property."""
        collected = list(self.properties)
        for node in self.nodes():
            collected.extend(node.properties)
        return collected

    def plan_property_value(
        self, identifier: str, default: PropertyValue = None
    ) -> PropertyValue:
        """Return the value of the first plan-associated property *identifier*."""
        for prop in self.properties:
            if prop.identifier == identifier:
                return prop.value
        return default

    def find_operations(self, identifier: str) -> List[PlanNode]:
        """Return all nodes whose unified operation name equals *identifier*."""
        if self.root is None:
            return []
        return self.root.find_operations(identifier)

    def operations_in(self, category: OperationCategory) -> List[PlanNode]:
        """Return all nodes whose operation belongs to *category*."""
        if self.root is None:
            return []
        return self.root.find(lambda node: node.operation.category is category)

    def leaf_nodes(self) -> List[PlanNode]:
        """Return the leaves of the plan tree (typically Producer operations)."""
        if self.root is None:
            return []
        return self.root.find(lambda node: not node.children)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-compatible dictionary form of the whole plan."""
        return {
            "source_dbms": self.source_dbms,
            "query": self.query,
            "properties": [prop.to_dict() for prop in self.properties],
            "tree": None if self.root is None else self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UnifiedPlan":
        """Reconstruct a plan from :meth:`to_dict` output."""
        tree = data.get("tree")
        return cls(
            root=None if tree is None else PlanNode.from_dict(tree),
            properties=[Property.from_dict(p) for p in data.get("properties", [])],
            source_dbms=data.get("source_dbms", ""),
            query=data.get("query", ""),
        )

    def copy(self) -> "UnifiedPlan":
        """Return a deep copy of the plan."""
        return UnifiedPlan(
            root=None if self.root is None else self.root.copy(),
            properties=list(self.properties),
            source_dbms=self.source_dbms,
            query=self.query,
        )

    def __str__(self) -> str:
        return (
            f"UnifiedPlan(source={self.source_dbms or 'n/a'}, "
            f"operations={self.node_count()}, plan_properties={len(self.properties)})"
        )


def iter_operation_identifiers(plan: UnifiedPlan) -> Iterator[Tuple[str, str]]:
    """Yield ``(category_name, identifier)`` pairs for every operation in *plan*."""
    for operation in plan.operations():
        yield operation.category.value, operation.identifier


def merge_property_lists(
    *lists: Iterable[Property],
) -> List[Property]:
    """Merge property lists, keeping the first occurrence of each identifier."""
    seen: Dict[Tuple[PropertyCategory, str], Property] = {}
    for properties in lists:
        for prop in properties:
            key = (prop.category, prop.identifier)
            if key not in seen:
                seen[key] = prop
    return list(seen.values())
