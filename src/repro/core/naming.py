"""The unified naming convention and the DBMS-name mapping registry.

Section IV of the paper introduces a unified naming convention: operations and
properties that share semantics across DBMSs are mapped to a single unified
name (e.g. PostgreSQL's ``Seq Scan``, SQL Server's ``Table Scan`` and TiDB's
``TableFullScan`` all become ``Full Table Scan``).  This module provides:

* the core unified operation vocabulary with its category assignment,
* the core unified property vocabulary with its category assignment,
* :class:`NameRegistry`, which stores per-DBMS mappings from native names to
  unified names and resolves unknown names with predictable fallbacks, which
  is what makes the representation *extensible* (Section IV-B).

The per-DBMS mappings themselves live in :mod:`repro.study.catalogues`, which
is generated from the case-study data and registered into the default
registry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.categories import OperationCategory, PropertyCategory
from repro.errors import NamingError

# ---------------------------------------------------------------------------
# Identifier interning
# ---------------------------------------------------------------------------


class IdentifierPool:
    """A bounded string-intern pool for operation and property identifiers.

    Plans converted from the same DBMS repeat a small vocabulary of unified
    names millions of times at scale; interning makes every occurrence share
    one string object, so equality checks hit CPython's pointer fast path and
    per-plan memory stays bounded by the vocabulary, not the corpus.  The
    pipeline layer relies on this when deduplicating batches by fingerprint.

    The pool is capped: high-cardinality names (auto-numbered operators like
    TiDB's ``TableFullScan_5`` seen during day-long fuzzing campaigns) would
    otherwise grow it without bound.  Once full, unseen names pass through
    un-pooled — correctness is unaffected, they just don't share storage.
    """

    __slots__ = ("_pool", "max_size")

    def __init__(self, max_size: int = 65536) -> None:
        self._pool: Dict[str, str] = {}
        self.max_size = max_size

    def intern(self, text: str) -> str:
        """Return the pooled instance of *text*, adding it while room remains."""
        pooled = self._pool.get(text)
        if pooled is not None:
            return pooled
        if len(self._pool) >= self.max_size:
            return text
        self._pool[text] = text
        return text

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, text: str) -> bool:
        return text in self._pool


#: Process-wide pool shared by the model layer and the name registry.
_IDENTIFIER_POOL = IdentifierPool()


def intern_identifier(text: str) -> str:
    """Intern *text* in the process-wide identifier pool."""
    return _IDENTIFIER_POOL.intern(text)


def identifier_pool() -> IdentifierPool:
    """Return the process-wide identifier pool (mainly for introspection)."""
    return _IDENTIFIER_POOL


# ---------------------------------------------------------------------------
# Core unified vocabulary
# ---------------------------------------------------------------------------

#: Unified operation names and their categories.  This is the shared
#: vocabulary used when converting DBMS-specific plans; DBMS-specific
#: operations without a shared counterpart keep a cleaned native name.
UNIFIED_OPERATIONS: Dict[str, OperationCategory] = {
    # Producer --------------------------------------------------------------
    "Full Table Scan": OperationCategory.PRODUCER,
    "Index Scan": OperationCategory.PRODUCER,
    "Index Only Scan": OperationCategory.PRODUCER,
    "Index Range Scan": OperationCategory.PRODUCER,
    "Id Scan": OperationCategory.PRODUCER,
    "Bitmap Index Scan": OperationCategory.PRODUCER,
    "Bitmap Heap Scan": OperationCategory.PRODUCER,
    "Constant Scan": OperationCategory.PRODUCER,
    "Values Scan": OperationCategory.PRODUCER,
    "Function Scan": OperationCategory.PRODUCER,
    "Subquery Scan": OperationCategory.PRODUCER,
    "CTE Scan": OperationCategory.PRODUCER,
    "Sample Scan": OperationCategory.PRODUCER,
    "Label Scan": OperationCategory.PRODUCER,
    "Collection Scan": OperationCategory.PRODUCER,
    "Document Fetch": OperationCategory.PRODUCER,
    "Series Scan": OperationCategory.PRODUCER,
    # Combinator -------------------------------------------------------------
    "Sort": OperationCategory.COMBINATOR,
    "Top N Sort": OperationCategory.COMBINATOR,
    "Limit": OperationCategory.COMBINATOR,
    "Offset": OperationCategory.COMBINATOR,
    "Union": OperationCategory.COMBINATOR,
    "Intersect": OperationCategory.COMBINATOR,
    "Except": OperationCategory.COMBINATOR,
    "Append": OperationCategory.COMBINATOR,
    "Merge Append": OperationCategory.COMBINATOR,
    "Distinct": OperationCategory.COMBINATOR,
    "Compound Query": OperationCategory.COMBINATOR,
    # Join ---------------------------------------------------------------------
    "Hash Join": OperationCategory.JOIN,
    "Merge Join": OperationCategory.JOIN,
    "Nested Loop Join": OperationCategory.JOIN,
    "Index Join": OperationCategory.JOIN,
    "Index Hash": OperationCategory.JOIN,
    "Cartesian Product": OperationCategory.JOIN,
    "Semi Join": OperationCategory.JOIN,
    "Anti Join": OperationCategory.JOIN,
    "Expand": OperationCategory.JOIN,
    "Relationship Scan": OperationCategory.JOIN,
    # Folder ---------------------------------------------------------------------
    "Aggregate": OperationCategory.FOLDER,
    "Aggregate Hash": OperationCategory.FOLDER,
    "Aggregate Stream": OperationCategory.FOLDER,
    "Group": OperationCategory.FOLDER,
    "Window": OperationCategory.FOLDER,
    "Grouping Sets": OperationCategory.FOLDER,
    # Projector -----------------------------------------------------------------
    "Project": OperationCategory.PROJECTOR,
    "Projection": OperationCategory.PROJECTOR,
    "Produce Results": OperationCategory.PROJECTOR,
    # Executor -------------------------------------------------------------------
    "Collect": OperationCategory.EXECUTOR,
    "Collect Order": OperationCategory.EXECUTOR,
    "Gather": OperationCategory.EXECUTOR,
    "Gather Merge": OperationCategory.EXECUTOR,
    "Hash Row": OperationCategory.EXECUTOR,
    "Materialize": OperationCategory.EXECUTOR,
    "Memoize": OperationCategory.EXECUTOR,
    "Exchange Sender": OperationCategory.EXECUTOR,
    "Exchange Receiver": OperationCategory.EXECUTOR,
    "Shuffle": OperationCategory.EXECUTOR,
    "Filter Step": OperationCategory.EXECUTOR,
    "Result": OperationCategory.EXECUTOR,
    "Selection": OperationCategory.EXECUTOR,
    # Consumer --------------------------------------------------------------------
    "Insert": OperationCategory.CONSUMER,
    "Update": OperationCategory.CONSUMER,
    "Delete": OperationCategory.CONSUMER,
    "Create Table": OperationCategory.CONSUMER,
    "Create Index": OperationCategory.CONSUMER,
    "Set Variable": OperationCategory.CONSUMER,
}

#: Unified property names and their categories.
UNIFIED_PROPERTIES: Dict[str, PropertyCategory] = {
    # Cardinality -----------------------------------------------------------------
    "Estimated Rows": PropertyCategory.CARDINALITY,
    "Actual Rows": PropertyCategory.CARDINALITY,
    "Row Width": PropertyCategory.CARDINALITY,
    "Rows Examined": PropertyCategory.CARDINALITY,
    "Rows Returned": PropertyCategory.CARDINALITY,
    "Documents Examined": PropertyCategory.CARDINALITY,
    "Keys Examined": PropertyCategory.CARDINALITY,
    # Cost -----------------------------------------------------------------------
    "Startup Cost": PropertyCategory.COST,
    "Total Cost": PropertyCategory.COST,
    "Read Cost": PropertyCategory.COST,
    "Eval Cost": PropertyCategory.COST,
    "Prefix Cost": PropertyCategory.COST,
    "Estimated Cost": PropertyCategory.COST,
    "Database Accesses": PropertyCategory.COST,
    "Memory": PropertyCategory.COST,
    # Configuration -----------------------------------------------------------------
    "Filter": PropertyCategory.CONFIGURATION,
    "Index Condition": PropertyCategory.CONFIGURATION,
    "Join Condition": PropertyCategory.CONFIGURATION,
    "Sort Key": PropertyCategory.CONFIGURATION,
    "Group Key": PropertyCategory.CONFIGURATION,
    "Recheck Condition": PropertyCategory.CONFIGURATION,
    "name object": PropertyCategory.CONFIGURATION,
    "index name": PropertyCategory.CONFIGURATION,
    "Output Columns": PropertyCategory.CONFIGURATION,
    "Join Type": PropertyCategory.CONFIGURATION,
    "Access Type": PropertyCategory.CONFIGURATION,
    "Parent Relationship": PropertyCategory.CONFIGURATION,
    # Status ---------------------------------------------------------------------
    "Planning Time": PropertyCategory.STATUS,
    "Execution Time": PropertyCategory.STATUS,
    "Actual Time": PropertyCategory.STATUS,
    "Workers Planned": PropertyCategory.STATUS,
    "Workers Launched": PropertyCategory.STATUS,
    "Task Type": PropertyCategory.STATUS,
    "Runtime Version": PropertyCategory.STATUS,
    "Planner": PropertyCategory.STATUS,
    "Shards Queried": PropertyCategory.STATUS,
}


def clean_identifier(name: str) -> str:
    """Normalise a native name into a grammar-compatible identifier.

    Non-alphanumeric characters become spaces, camel case is split into
    words, and leading digits are prefixed so the result starts with a letter.
    """
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", name)
    cleaned = re.sub(r"[^A-Za-z0-9_]+", " ", spaced).strip()
    cleaned = re.sub(r"\s+", " ", cleaned)
    if not cleaned:
        return "Unknown"
    if not cleaned[0].isalpha():
        cleaned = "Op " + cleaned
    return cleaned


@dataclass(frozen=True)
class OperationMapping:
    """One native-operation → unified-operation mapping entry."""

    dbms: str
    native_name: str
    unified_name: str
    category: OperationCategory


@dataclass(frozen=True)
class PropertyMapping:
    """One native-property → unified-property mapping entry."""

    dbms: str
    native_name: str
    unified_name: str
    category: PropertyCategory


class NameRegistry:
    """Stores and resolves DBMS-specific → unified name mappings.

    The registry is the concrete realisation of the paper's extensibility
    goal: adding support for a new DBMS, or for a new operation in an existing
    DBMS (the "LLM Join" example of Section IV-B), is a matter of registering
    additional keyword mappings; nothing else changes.
    """

    def __init__(self) -> None:
        self._operations: Dict[Tuple[str, str], OperationMapping] = {}
        self._properties: Dict[Tuple[str, str], PropertyMapping] = {}

    # -- registration ------------------------------------------------------------

    def register_operation(
        self,
        dbms: str,
        native_name: str,
        category: OperationCategory,
        unified_name: Optional[str] = None,
    ) -> OperationMapping:
        """Register a native operation name for *dbms*.

        When *unified_name* is omitted, the cleaned native name is used, which
        is how DBMS-specific operations without a cross-system counterpart are
        kept in the representation.
        """
        unified = intern_identifier(unified_name or clean_identifier(native_name))
        mapping = OperationMapping(dbms.lower(), native_name, unified, category)
        self._operations[(dbms.lower(), native_name.lower())] = mapping
        return mapping

    def register_property(
        self,
        dbms: str,
        native_name: str,
        category: PropertyCategory,
        unified_name: Optional[str] = None,
    ) -> PropertyMapping:
        """Register a native property name for *dbms*."""
        unified = intern_identifier(unified_name or clean_identifier(native_name))
        mapping = PropertyMapping(dbms.lower(), native_name, unified, category)
        self._properties[(dbms.lower(), native_name.lower())] = mapping
        return mapping

    def register_operations(
        self,
        dbms: str,
        entries: Iterable[Tuple[str, OperationCategory, Optional[str]]],
    ) -> None:
        """Bulk-register ``(native, category, unified_or_None)`` operations."""
        for native_name, category, unified_name in entries:
            self.register_operation(dbms, native_name, category, unified_name)

    def register_properties(
        self,
        dbms: str,
        entries: Iterable[Tuple[str, PropertyCategory, Optional[str]]],
    ) -> None:
        """Bulk-register ``(native, category, unified_or_None)`` properties."""
        for native_name, category, unified_name in entries:
            self.register_property(dbms, native_name, category, unified_name)

    # -- resolution --------------------------------------------------------------

    def resolve_operation(
        self, dbms: str, native_name: str, strict: bool = False
    ) -> Tuple[OperationCategory, str]:
        """Map a native operation name to ``(category, unified_name)``.

        Unknown names fall back to the :class:`OperationCategory.EXECUTOR`
        category with a cleaned identifier — the "generic handling" that keeps
        applications forward-compatible — unless *strict* is set.
        """
        mapping = self._operations.get((dbms.lower(), native_name.lower()))
        if mapping is not None:
            return mapping.category, mapping.unified_name
        cleaned = intern_identifier(clean_identifier(native_name))
        fallback = UNIFIED_OPERATIONS.get(cleaned)
        if fallback is not None:
            return fallback, cleaned
        if strict:
            raise NamingError(f"unknown operation {native_name!r} for DBMS {dbms!r}")
        return OperationCategory.EXECUTOR, cleaned

    def resolve_property(
        self, dbms: str, native_name: str, strict: bool = False
    ) -> Tuple[PropertyCategory, str]:
        """Map a native property name to ``(category, unified_name)``.

        Unknown names fall back to :class:`PropertyCategory.STATUS` — the most
        generic property category — unless *strict* is set.
        """
        mapping = self._properties.get((dbms.lower(), native_name.lower()))
        if mapping is not None:
            return mapping.category, mapping.unified_name
        cleaned = intern_identifier(clean_identifier(native_name))
        fallback = UNIFIED_PROPERTIES.get(cleaned)
        if fallback is not None:
            return fallback, cleaned
        if strict:
            raise NamingError(f"unknown property {native_name!r} for DBMS {dbms!r}")
        return PropertyCategory.STATUS, cleaned

    # -- introspection -------------------------------------------------------------

    def operations_for(self, dbms: str) -> List[OperationMapping]:
        """Return every operation mapping registered for *dbms*."""
        return [m for (d, _), m in self._operations.items() if d == dbms.lower()]

    def properties_for(self, dbms: str) -> List[PropertyMapping]:
        """Return every property mapping registered for *dbms*."""
        return [m for (d, _), m in self._properties.items() if d == dbms.lower()]

    def dbms_names(self) -> List[str]:
        """Return the DBMSs that have at least one registered mapping."""
        names = {d for d, _ in self._operations} | {d for d, _ in self._properties}
        return sorted(names)

    def operation_count(self, dbms: str, category: Optional[OperationCategory] = None) -> int:
        """Count registered operations for *dbms*, optionally per category."""
        mappings = self.operations_for(dbms)
        if category is None:
            return len(mappings)
        return sum(1 for m in mappings if m.category is category)

    def property_count(self, dbms: str, category: Optional[PropertyCategory] = None) -> int:
        """Count registered properties for *dbms*, optionally per category."""
        mappings = self.properties_for(dbms)
        if category is None:
            return len(mappings)
        return sum(1 for m in mappings if m.category is category)


#: The process-wide default registry.  :mod:`repro.study.catalogues` populates
#: it with the full case-study mappings on import.
DEFAULT_REGISTRY = NameRegistry()


def default_registry() -> NameRegistry:
    """Return the default registry, ensuring the study catalogues are loaded."""
    # Imported lazily to avoid a circular import at module load time.
    from repro.study import catalogues  # noqa: F401  (import populates registry)

    return DEFAULT_REGISTRY
