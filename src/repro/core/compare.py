"""Comparison utilities over unified query plans.

These utilities back two of the paper's applications:

* **QPG** needs to decide whether a query plan is *structurally new*; that
  requires a fingerprint which ignores unstable information such as estimated
  costs, runtime timings, and auto-generated identifiers (Section V-A.1).
* **Benchmarking** (Section V-A.3) compares plans across DBMSs using
  per-category operation counts and, as envisioned in the discussion, tree
  similarity metrics.

Fingerprints are computed Merkle-style — each node's digest folds in its
children's digests — and memoised in the per-node cache introduced in
:mod:`repro.core.model`, so every comparison entry point here short-circuits
on cached digests before falling back to a tree walk.  Plans must be treated
as frozen once fingerprinted (or explicitly invalidated, see
:meth:`repro.core.model.UnifiedPlan.invalidate_fingerprints`).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.categories import (
    OPERATION_CATEGORY_ORDER,
    OperationCategory,
    PropertyCategory,
)
from repro.core import model as model_module
from repro.core.model import PlanNode, Property, UnifiedPlan

#: Property categories considered *unstable* for fingerprinting purposes:
#: estimates and runtime metrics change run-to-run without the plan's
#: structure changing.
UNSTABLE_PROPERTY_CATEGORIES = (
    PropertyCategory.CARDINALITY,
    PropertyCategory.COST,
    PropertyCategory.STATUS,
)

#: Identifier suffixes such as ``_5`` in TiDB's ``TableFullScan_5`` are
#: unstable across runs; QPG's original TiDB parser failed to remove them,
#: which is the implementation bug the paper reports finding.
_UNSTABLE_SUFFIX = re.compile(r"[ _#]\d+$")


def strip_unstable_suffix(identifier: str) -> str:
    """Remove trailing auto-generated numeric identifiers from a name."""
    return _UNSTABLE_SUFFIX.sub("", identifier)


def _stable_properties(properties: Sequence[Property]) -> List[Tuple[str, str, str]]:
    stable = []
    for prop in properties:
        if prop.category in UNSTABLE_PROPERTY_CATEGORIES:
            continue
        stable.append((prop.category.value, prop.identifier, str(prop.value)))
    return sorted(stable)


#: Cache keys used for the two structural fingerprint modes (the identity
#: fingerprint lives under ``model.FINGERPRINT_IDENTITY`` in the same cache).
_FP_STRUCTURAL = "structural"
_FP_STRUCTURAL_CONFIG = "structural+config"


def _structural_node_fingerprint(node: PlanNode, include_configuration: bool) -> str:
    """Merkle digest of a subtree's stable structure, memoised on the node.

    Implemented as an iterative post-order walk with hoisted bindings: QPG
    calls this once per explained query, and the recursive form paid a
    Python frame plus module-global lookups per node.
    """
    key = _FP_STRUCTURAL_CONFIG if include_configuration else _FP_STRUCTURAL
    cached = node._fp_cache.get(key)
    if cached is not None:
        return cached
    blake2b = hashlib.blake2b
    framed = model_module._update_framed
    strip = strip_unstable_suffix
    stack = [node]
    pending: List[PlanNode] = []
    while stack:
        current = stack.pop()
        if key in current._fp_cache:
            continue
        pending.append(current)
        stack.extend(current.children)
    for current in reversed(pending):  # children always precede parents
        cache = current._fp_cache
        if key in cache:
            continue
        hasher = blake2b(digest_size=16)
        update = hasher.update
        update(current.operation.category.value.encode("utf-8"))
        update(b"\x00")
        update(strip(current.operation.identifier).encode("utf-8"))
        if include_configuration:
            for category, identifier, value in _stable_properties(current.properties):
                # Length-framed: values are arbitrary strings and must not be
                # able to forge component boundaries (see model._update_framed).
                framed(hasher, b"\x01", f"{category}->{identifier}={value}")
        for child in current.children:
            update(b"\x02")
            update(child._fp_cache[key].encode("ascii"))
        cache[key] = hasher.hexdigest()
    return node._fp_cache[key]


def structural_fingerprint(
    plan: UnifiedPlan, include_configuration: bool = False
) -> str:
    """Return a stable fingerprint of the plan's structure.

    Parameters
    ----------
    plan:
        The unified plan to fingerprint.
    include_configuration:
        When true, Configuration properties (predicates, keys) contribute to
        the fingerprint; Cardinality, Cost and Status properties never do.
        QPG uses ``include_configuration=False`` so that plans differing only
        in constants are considered equivalent.

    The digest is memoised on the plan's nodes, so repeated calls are O(1);
    it depends only on plan content, making it stable across processes.
    """
    if plan.root is None:
        return hashlib.blake2b(b"<no-tree>", digest_size=16).hexdigest()
    return _structural_node_fingerprint(plan.root, include_configuration)


def plans_equal(left: UnifiedPlan, right: UnifiedPlan) -> bool:
    """O(1) content-identity check via cached identity fingerprints.

    Equivalent to comparing canonicalized trees deeply (property order is
    ignored; ``source_dbms``/``query`` are ignored), but runs in constant
    time once both plans are fingerprinted.
    """
    return left.fingerprint() == right.fingerprint()


def _signature_node(node: PlanNode) -> str:
    name = strip_unstable_suffix(node.operation.identifier)
    children = ",".join(_signature_node(child) for child in node.children)
    return f"({node.operation.category.value}->{name}[{children}])"


def structural_signature(plan: UnifiedPlan) -> str:
    """Return the readable (non-hashed) structural form used for debugging."""
    if plan.root is None:
        return "<no-tree>"
    return _signature_node(plan.root)


# ---------------------------------------------------------------------------
# Category histograms (Tables VI and VII)
# ---------------------------------------------------------------------------


def category_histogram(plan: UnifiedPlan) -> Dict[OperationCategory, int]:
    """Count the plan's operations per category."""
    return plan.count_categories()


def average_category_histogram(
    plans: Sequence[UnifiedPlan],
) -> Dict[OperationCategory, float]:
    """Average per-category operation counts over *plans* (Table VI metric)."""
    totals = {category: 0 for category in OPERATION_CATEGORY_ORDER}
    for plan in plans:
        for category, count in plan.count_categories().items():
            totals[category] += count
    denominator = max(len(plans), 1)
    return {category: totals[category] / denominator for category in totals}


def producer_count(plan: UnifiedPlan) -> int:
    """Count Producer operations — the Figure 4 metric."""
    return plan.count_categories()[OperationCategory.PRODUCER]


# ---------------------------------------------------------------------------
# Tree edit distance
# ---------------------------------------------------------------------------


def _node_label(node: PlanNode) -> str:
    return (
        node.operation.category.value
        + "->"
        + strip_unstable_suffix(node.operation.identifier)
    )


def tree_edit_distance(left: Optional[PlanNode], right: Optional[PlanNode]) -> int:
    """Compute a simple ordered tree edit distance between two plan trees.

    The distance counts node relabelings, insertions, and deletions.  The
    implementation is a recursive forest-edit-distance with memoisation over
    node identity, sufficient for the plan sizes produced by DBMSs (tens of
    nodes).  ``None`` stands for an empty tree.  Structurally identical
    subtrees are recognised in O(1) via their cached structural fingerprints
    (the edit distance labels nodes exactly as the structural fingerprint
    does), pruning the recursion before any tree walk.
    """
    memo: Dict[Tuple[int, int], int] = {}

    def subtrees_identical(a: PlanNode, b: PlanNode) -> bool:
        return _structural_node_fingerprint(
            a, include_configuration=False
        ) == _structural_node_fingerprint(b, include_configuration=False)

    def node_size(node: Optional[PlanNode]) -> int:
        return 0 if node is None else node.size()

    def forest_distance(
        left_forest: Tuple[PlanNode, ...], right_forest: Tuple[PlanNode, ...]
    ) -> int:
        key = (
            tuple(id(node) for node in left_forest),
            tuple(id(node) for node in right_forest),
        )
        if key in memo:
            return memo[key]
        if not left_forest and not right_forest:
            result = 0
        elif not left_forest:
            result = sum(node.size() for node in right_forest)
        elif not right_forest:
            result = sum(node.size() for node in left_forest)
        else:
            first_left, *rest_left = left_forest
            first_right, *rest_right = right_forest
            # Option 1: match the two first trees against each other.  When
            # their structural fingerprints coincide the pair costs nothing
            # and the subtree recursion is skipped entirely.
            if subtrees_identical(first_left, first_right):
                match_cost = forest_distance(tuple(rest_left), tuple(rest_right))
            else:
                relabel = 0 if _node_label(first_left) == _node_label(first_right) else 1
                match_cost = (
                    relabel
                    + forest_distance(tuple(first_left.children), tuple(first_right.children))
                    + forest_distance(tuple(rest_left), tuple(rest_right))
                )
            # Option 2: delete the first left tree's root.
            delete_cost = 1 + forest_distance(
                tuple(first_left.children) + tuple(rest_left), right_forest
            )
            # Option 3: insert the first right tree's root.
            insert_cost = 1 + forest_distance(
                left_forest, tuple(first_right.children) + tuple(rest_right)
            )
            result = min(match_cost, delete_cost, insert_cost)
        memo[key] = result
        return result

    if left is None and right is None:
        return 0
    if left is None:
        return node_size(right)
    if right is None:
        return node_size(left)
    if subtrees_identical(left, right):
        return 0
    return forest_distance((left,), (right,))


def plan_distance(a: UnifiedPlan, b: UnifiedPlan, *, sort_children: bool = True) -> int:
    """Public, stable tree-edit distance between two unified plans.

    This is the supported entry point for consumers that previously reached
    into :func:`tree_edit_distance` directly (the similarity layer uses it
    to rerank cluster exemplars).  The distance counts node relabelings,
    insertions, and deletions over the plan trees, labelling nodes exactly
    as the structural fingerprint does (category + suffix-stripped unified
    name), so structurally identical plans short-circuit to 0 without a
    tree walk.

    Determinism: with ``sort_children=True`` (the default) both trees are
    first canonicalized with children ordered by fingerprint, so the result
    does not depend on sibling enumeration order; within the edit-distance
    recursion itself, equal-cost alternatives resolve in the fixed
    match-then-delete-then-insert evaluation order.  The result is therefore
    a pure function of plan content, stable across processes.  Pass
    ``sort_children=False`` to treat child order as significant (build vs.
    probe side of a join).
    """
    if structural_fingerprint(a) == structural_fingerprint(b):
        return 0
    if sort_children:
        left = None if a.root is None else a.root.canonicalize(sort_children=True)
        right = None if b.root is None else b.root.canonicalize(sort_children=True)
    else:
        left, right = a.root, b.root
    return tree_edit_distance(left, right)


def plan_similarity(left: UnifiedPlan, right: UnifiedPlan) -> float:
    """Return a [0, 1] similarity score based on tree edit distance."""
    distance = tree_edit_distance(left.root, right.root)
    size = max(left.node_count() + right.node_count(), 1)
    return max(0.0, 1.0 - distance / size)


# ---------------------------------------------------------------------------
# Plan diffing
# ---------------------------------------------------------------------------


@dataclass
class PlanDiff:
    """A summary of the differences between two unified plans."""

    only_in_left: List[str] = field(default_factory=list)
    only_in_right: List[str] = field(default_factory=list)
    category_delta: Dict[OperationCategory, int] = field(default_factory=dict)
    edit_distance: int = 0

    @property
    def identical_structure(self) -> bool:
        """Whether both plans have the same operations and tree shape."""
        return self.edit_distance == 0


def diff_plans(left: UnifiedPlan, right: UnifiedPlan) -> PlanDiff:
    """Diff two plans by operation multiset, category counts, and structure.

    Structurally identical plans (per their cached structural fingerprints)
    short-circuit to an all-zero diff without walking either tree.
    """
    if structural_fingerprint(left) == structural_fingerprint(right):
        return PlanDiff(
            category_delta={category: 0 for category in OPERATION_CATEGORY_ORDER},
            edit_distance=0,
        )
    left_ops = sorted(_node_label(node) for node in left.nodes())
    right_ops = sorted(_node_label(node) for node in right.nodes())

    left_multiset: Dict[str, int] = {}
    for name in left_ops:
        left_multiset[name] = left_multiset.get(name, 0) + 1
    right_multiset: Dict[str, int] = {}
    for name in right_ops:
        right_multiset[name] = right_multiset.get(name, 0) + 1

    only_left: List[str] = []
    only_right: List[str] = []
    for name in sorted(set(left_multiset) | set(right_multiset)):
        delta = left_multiset.get(name, 0) - right_multiset.get(name, 0)
        if delta > 0:
            only_left.extend([name] * delta)
        elif delta < 0:
            only_right.extend([name] * (-delta))

    left_categories = left.count_categories()
    right_categories = right.count_categories()
    category_delta = {
        category: left_categories[category] - right_categories[category]
        for category in OPERATION_CATEGORY_ORDER
    }
    return PlanDiff(
        only_in_left=only_left,
        only_in_right=only_right,
        category_delta=category_delta,
        edit_distance=tree_edit_distance(left.root, right.root),
    )
