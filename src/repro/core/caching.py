"""A small thread-safe LRU cache shared by the conversion pipeline.

The converter hub keys conversions by ``(dbms, format, source-hash)`` and the
ingestion service observes its hit/miss counters, so the cache exposes its
statistics as first-class data rather than hiding them the way
``functools.lru_cache`` does.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

_MISSING = object()


@dataclass
class CacheStats:
    """Counters describing how a cache behaved so far."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> "CacheStats":
        """Return an independent copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.evictions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A bounded mapping with least-recently-used eviction and statistics.

    All operations take an internal lock, so one cache instance may be shared
    by the ingestion service's worker threads.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value for *key*, refreshing its recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh *key*, evicting the oldest entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every entry; optionally reset the counters as well."""
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self.stats = CacheStats()
