"""A small thread-safe LRU cache shared by the conversion pipeline.

The converter hub keys conversions by ``(dbms, format, source-hash)`` and the
ingestion service observes its hit/miss counters, so the cache exposes its
statistics as first-class data rather than hiding them the way
``functools.lru_cache`` does.

Since the serving layer (PR 9) the cache is built for **concurrent readers**:
a ``get`` never blocks.  The uncontended path takes the lock with a
non-blocking acquire and runs the classic locked hit (allocation-free); when
another thread holds the lock, the reader falls back to a bare dictionary
probe — atomic under the GIL — and defers its recency touch and counter
update into a pending queue (``deque.append`` is atomic) that the next lock
holder drains.  Hits therefore never serialize behind a writer or behind each
other, while the hit/miss counters stay *exact*: every lookup is counted
exactly once, merely sometimes a moment later.  Reading :attr:`LRUCache.stats`
drains the queue first, so observers always see settled numbers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Hashable, Optional, Tuple

_MISSING = object()


@dataclass
class CacheStats:
    """Counters describing how a cache behaved so far."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> "CacheStats":
        """Return an independent copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.evictions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A bounded mapping with least-recently-used eviction and statistics.

    One cache instance may be shared by any number of threads: mutations are
    lock-guarded, and lookups never block (see the module docstring for the
    deferred-touch design).  Values handed out on the contended read path may
    momentarily outlive their eviction — callers already treat cached values
    as shared immutable objects, so a just-evicted value is still a valid
    answer.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        #: Lookups recorded by readers that found the lock contended:
        #: ``(key, was_hit)`` pairs folded into the recency list and the
        #: counters by the next thread that takes the lock.
        self._pending: Deque[Tuple[Hashable, bool]] = deque()

    # -- deferred bookkeeping -----------------------------------------------------

    def _drain_pending_locked(self) -> None:
        """Fold deferred lookups in.  Caller must hold ``self._lock``."""
        pending = self._pending
        entries = self._entries
        stats = self._stats
        while pending:
            try:
                key, was_hit = pending.popleft()
            except IndexError:  # pragma: no cover - appends are concurrent
                break
            if was_hit:
                stats.hits += 1
                if key in entries:
                    entries.move_to_end(key)
            else:
                stats.misses += 1

    @property
    def stats(self) -> CacheStats:
        """The live counters, with any deferred lookups folded in first."""
        if self._pending:
            with self._lock:
                self._drain_pending_locked()
        return self._stats

    # -- mapping operations -------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value for *key*, refreshing its recency.

        Never blocks: when the lock is contended the value is read straight
        from the dictionary (atomic under the GIL) and the recency touch and
        counter update are deferred to the next lock holder.
        """
        lock = self._lock
        if lock.acquire(False):
            try:
                if self._pending:
                    self._drain_pending_locked()
                value = self._entries.get(key, _MISSING)
                if value is _MISSING:
                    self._stats.misses += 1
                    return default
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return value
            finally:
                lock.release()
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self._pending.append((key, False))
            return default
        self._pending.append((key, True))
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh *key*, evicting the oldest entry when full."""
        with self._lock:
            self._drain_pending_locked()
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
            self._entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        # A bare dictionary probe is atomic under the GIL; membership tests
        # are not lookups, so nothing needs deferring.
        return key in self._entries

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every entry; optionally reset the counters as well."""
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self._pending.clear()
                self._stats = CacheStats()
            else:
                self._drain_pending_locked()
