"""Fluent builder API for constructing unified query plans.

The builder mirrors how converters and applications assemble plans: start a
plan, push operation nodes (optionally descending into children), attach
properties to the current node or to the plan, then ``build()``.

Example
-------
>>> from repro.core import PlanBuilder, OperationCategory, PropertyCategory
>>> plan = (
...     PlanBuilder(source_dbms="postgresql")
...     .operation(OperationCategory.FOLDER, "Aggregate")
...     .prop(PropertyCategory.CARDINALITY, "Estimated Rows", 100)
...     .child(OperationCategory.PRODUCER, "Full Table Scan")
...     .prop(PropertyCategory.CONFIGURATION, "name object", "t0")
...     .end()
...     .build()
... )
>>> plan.node_count()
2
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.categories import OperationCategory, PropertyCategory
from repro.core.model import Operation, PlanNode, Property, PropertyValue, UnifiedPlan
from repro.errors import PlanValidationError


class PlanBuilder:
    """Incrementally build a :class:`UnifiedPlan`.

    The builder maintains a cursor into the tree being built.  ``operation``
    creates the root (or a sibling is an error — a plan has one root),
    ``child`` descends, ``end`` ascends, and ``prop`` attaches a property to
    the current node (or to the plan if no node has been created yet).
    """

    def __init__(self, source_dbms: str = "", query: str = "") -> None:
        self._plan = UnifiedPlan(source_dbms=source_dbms, query=query)
        self._stack: List[PlanNode] = []

    # -- tree construction -----------------------------------------------------

    def operation(
        self, category: OperationCategory, identifier: str
    ) -> "PlanBuilder":
        """Create the root operation of the plan."""
        if self._plan.root is not None:
            raise PlanValidationError(
                "plan already has a root operation; use child() to nest"
            )
        node = PlanNode(Operation(category, identifier))
        self._plan.root = node
        self._stack = [node]
        return self

    def child(self, category: OperationCategory, identifier: str) -> "PlanBuilder":
        """Create a child of the current node and descend into it."""
        if not self._stack:
            raise PlanValidationError("child() requires a current operation")
        node = PlanNode(Operation(category, identifier))
        self._stack[-1].add_child(node)
        self._stack.append(node)
        return self

    def sibling(self, category: OperationCategory, identifier: str) -> "PlanBuilder":
        """Close the current node and open a sibling under the same parent."""
        if len(self._stack) < 2:
            raise PlanValidationError("sibling() requires a parent operation")
        self._stack.pop()
        return self.child(category, identifier)

    def end(self) -> "PlanBuilder":
        """Ascend to the parent of the current node."""
        if not self._stack:
            raise PlanValidationError("end() without a matching child()/operation()")
        self._stack.pop()
        return self

    # -- properties --------------------------------------------------------------

    def prop(
        self,
        category: PropertyCategory,
        identifier: str,
        value: PropertyValue = None,
    ) -> "PlanBuilder":
        """Attach a property to the current node, or to the plan if no node."""
        target_properties = (
            self._stack[-1].properties if self._stack else self._plan.properties
        )
        target_properties.append(Property(category, identifier, value))
        return self

    def plan_prop(
        self,
        category: PropertyCategory,
        identifier: str,
        value: PropertyValue = None,
    ) -> "PlanBuilder":
        """Attach a plan-associated property regardless of the cursor."""
        self._plan.add_property(category, identifier, value)
        return self

    # -- convenience shorthands ---------------------------------------------------

    def cardinality(self, identifier: str, value: PropertyValue) -> "PlanBuilder":
        """Shorthand for a Cardinality property on the current node."""
        return self.prop(PropertyCategory.CARDINALITY, identifier, value)

    def cost(self, identifier: str, value: PropertyValue) -> "PlanBuilder":
        """Shorthand for a Cost property on the current node."""
        return self.prop(PropertyCategory.COST, identifier, value)

    def configuration(self, identifier: str, value: PropertyValue) -> "PlanBuilder":
        """Shorthand for a Configuration property on the current node."""
        return self.prop(PropertyCategory.CONFIGURATION, identifier, value)

    def status(self, identifier: str, value: PropertyValue) -> "PlanBuilder":
        """Shorthand for a Status property on the current node."""
        return self.prop(PropertyCategory.STATUS, identifier, value)

    # -- finalization ---------------------------------------------------------------

    def current_node(self) -> Optional[PlanNode]:
        """Return the node the cursor points at (``None`` before ``operation``)."""
        return self._stack[-1] if self._stack else None

    def build(self) -> UnifiedPlan:
        """Return the constructed plan.

        It is legal to call ``build`` while the cursor is still inside the
        tree; remaining open nodes are implicitly closed.
        """
        return self._plan


def node(
    category: OperationCategory,
    identifier: str,
    properties: Optional[List[Property]] = None,
    children: Optional[List[PlanNode]] = None,
) -> PlanNode:
    """Functional helper to build a :class:`PlanNode` in a single expression."""
    return PlanNode(
        operation=Operation(category, identifier),
        properties=list(properties or []),
        children=list(children or []),
    )
