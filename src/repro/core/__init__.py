"""UPlan — the unified query plan representation (the paper's contribution).

The :mod:`repro.core` package implements the unified query plan representation
proposed in Section IV of *"Towards a Unified Query Plan Representation"*:

* :mod:`repro.core.categories` — the seven operation categories and the four
  property categories identified by the exploratory case study,
* :mod:`repro.core.model` — the plan data model (operations, properties,
  nodes, plans),
* :mod:`repro.core.builder` — a fluent construction API,
* :mod:`repro.core.grammar` — the canonical EBNF text form (Listing 2),
* :mod:`repro.core.formats` — JSON / XML / YAML / text / table serializers,
* :mod:`repro.core.naming` — the unified naming convention and the mapping
  registry from DBMS-specific names,
* :mod:`repro.core.compare` — fingerprints, category histograms, tree edit
  distance, and plan diffing,
* :mod:`repro.core.caching` — the thread-safe LRU cache backing the
  conversion pipeline,
* :mod:`repro.core.validate` — structural validation.
"""

from repro.core.categories import (
    OPERATION_CATEGORY_ORDER,
    PROPERTY_CATEGORY_ORDER,
    OperationCategory,
    PropertyCategory,
)
from repro.core.model import (
    Operation,
    PlanNode,
    Property,
    PropertyValue,
    UnifiedPlan,
    canonical_properties,
    canonical_property_key,
)
from repro.core.builder import PlanBuilder, node
from repro.core.caching import CacheStats, LRUCache
from repro.core.naming import (
    DEFAULT_REGISTRY,
    IdentifierPool,
    NameRegistry,
    UNIFIED_OPERATIONS,
    UNIFIED_PROPERTIES,
    clean_identifier,
    default_registry,
    identifier_pool,
    intern_identifier,
)
from repro.core.compare import (
    PlanDiff,
    average_category_histogram,
    category_histogram,
    diff_plans,
    plan_distance,
    plan_similarity,
    plans_equal,
    producer_count,
    structural_fingerprint,
    structural_signature,
    tree_edit_distance,
)
from repro.core.validate import is_valid_plan, validate_plan
from repro.core import formats, grammar

__all__ = [
    "OperationCategory",
    "PropertyCategory",
    "OPERATION_CATEGORY_ORDER",
    "PROPERTY_CATEGORY_ORDER",
    "Operation",
    "Property",
    "PropertyValue",
    "PlanNode",
    "UnifiedPlan",
    "PlanBuilder",
    "node",
    "canonical_properties",
    "canonical_property_key",
    "CacheStats",
    "LRUCache",
    "IdentifierPool",
    "identifier_pool",
    "intern_identifier",
    "plans_equal",
    "NameRegistry",
    "DEFAULT_REGISTRY",
    "default_registry",
    "UNIFIED_OPERATIONS",
    "UNIFIED_PROPERTIES",
    "clean_identifier",
    "structural_fingerprint",
    "structural_signature",
    "category_histogram",
    "average_category_histogram",
    "producer_count",
    "tree_edit_distance",
    "plan_distance",
    "plan_similarity",
    "diff_plans",
    "PlanDiff",
    "validate_plan",
    "is_valid_plan",
    "formats",
    "grammar",
]
