"""Shared concurrency primitives for the thread-safe core.

The serving layer (:mod:`repro.service`) runs many sessions against one
process, so the structures they share need two things the standard library
does not provide directly:

* a **readers-writer gate** (:class:`ReadWriteGate`) — read-only statements
  of different sessions run concurrently against one database, while DDL/DML
  statements run exclusively (linearizable writes).  The gate prefers
  writers: once a writer is waiting, new readers queue behind it, so a
  steady stream of reads cannot starve catalog changes.
* an **atomic counter** (:class:`AtomicCounter`) — ``x += 1`` on a plain
  attribute is a read-modify-write race under free threading; the counter
  wraps the increment in a lock so shared statistics stay exact.

Both primitives are deliberately tiny: they are the documented building
blocks the layer invariants refer to, not a general concurrency toolkit.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteGate:
    """A readers-writer lock with writer preference.

    Any number of readers may hold the gate concurrently; a writer holds it
    exclusively.  Writers are preferred: while a writer is waiting, new
    readers block, so writes are never starved by a continuous read stream
    (DDL stays linearizable under heavy SELECT traffic).

    The gate is not reentrant — a thread must not acquire it twice, in
    either mode.  The serving layer acquires it exactly once per statement.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- shared (read) side -----------------------------------------------------

    def acquire_read(self) -> None:
        """Enter the gate in shared mode (blocks while a writer is in/waiting)."""
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        """Leave shared mode, waking a waiting writer when last out."""
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    # -- exclusive (write) side -------------------------------------------------

    def acquire_write(self) -> None:
        """Enter the gate exclusively (blocks until readers and writers drain)."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave exclusive mode, waking everyone waiting."""
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    # -- context managers ---------------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with gate.read_locked():`` — shared access for the block."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with gate.write_locked():`` — exclusive access for the block."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests) -----------------------------------------------------

    @property
    def readers(self) -> int:
        """The number of threads currently holding shared access."""
        with self._condition:
            return self._active_readers

    @property
    def write_held(self) -> bool:
        """Whether a writer currently holds the gate."""
        with self._condition:
            return self._writer_active


class AtomicCounter:
    """An exact counter safe to increment from many threads."""

    __slots__ = ("_lock", "_value")

    def __init__(self, initial: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = initial

    def increment(self, amount: int = 1) -> int:
        """Add *amount* and return the new value."""
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0
