"""Exception hierarchy for the repro (UPlan reproduction) library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Sub-hierarchies mirror the package layout:
errors raised while parsing SQL, planning, executing, converting serialized
plans, or validating unified plans each have a dedicated class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


# ---------------------------------------------------------------------------
# Core / unified representation errors
# ---------------------------------------------------------------------------


class UnifiedPlanError(ReproError):
    """Base class for errors concerning the unified plan representation."""


class PlanValidationError(UnifiedPlanError):
    """A unified plan violates a structural or categorical constraint."""


class GrammarError(UnifiedPlanError):
    """A serialized unified plan does not conform to the EBNF grammar."""


class FormatError(UnifiedPlanError):
    """A (de)serialization format problem, e.g. an unknown format name."""


class NamingError(UnifiedPlanError):
    """A DBMS-specific name cannot be mapped or registered."""


# ---------------------------------------------------------------------------
# Converter errors
# ---------------------------------------------------------------------------


class ConversionError(ReproError):
    """A DBMS-specific serialized plan could not be converted to UPlan."""

    def __init__(self, dbms: str, message: str) -> None:
        super().__init__(f"[{dbms}] {message}")
        self.dbms = dbms


# ---------------------------------------------------------------------------
# SQL front-end errors
# ---------------------------------------------------------------------------


class SQLError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SQLError):
    """The SQL lexer encountered an invalid character sequence."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """The SQL parser encountered an unexpected token."""

    def __init__(self, message: str, token: object = None) -> None:
        super().__init__(message)
        self.token = token


# ---------------------------------------------------------------------------
# Catalog / storage / execution errors
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """A schema object is missing, duplicated, or inconsistent."""


class StorageError(ReproError):
    """A storage-layer invariant was violated."""


class ExecutionError(ReproError):
    """A runtime error while executing a physical plan."""


class PlanningError(ReproError):
    """The optimizer could not produce a physical plan for a query."""


# ---------------------------------------------------------------------------
# Dialect (simulated DBMS) errors
# ---------------------------------------------------------------------------


class DialectError(ReproError):
    """A simulated DBMS rejected a statement or an explain request."""

    def __init__(self, dbms: str, message: str) -> None:
        super().__init__(f"[{dbms}] {message}")
        self.dbms = dbms


class UnsupportedFormatError(DialectError):
    """The requested explain format is not offered by this DBMS."""


# ---------------------------------------------------------------------------
# Testing-application errors
# ---------------------------------------------------------------------------


class OracleError(ReproError):
    """A test oracle could not evaluate a test case."""


class BugDetected(ReproError):
    """Raised (or recorded) when an oracle detects a logic/performance bug.

    This is primarily used as a structured record; testing campaigns catch it
    and turn it into a :class:`repro.testing.report.BugReport`.
    """

    def __init__(self, message: str, oracle: str, dbms: str, query: str = "") -> None:
        super().__init__(message)
        self.oracle = oracle
        self.dbms = dbms
        self.query = query


# ---------------------------------------------------------------------------
# Benchmarking errors
# ---------------------------------------------------------------------------


class BenchmarkError(ReproError):
    """A benchmark workload could not be generated or executed."""
