"""Static intermediate-relation size bounds from key constraints.

Following Chen & Schneider's bounds for select-project-join-union plans
(arXiv 2412.13104), every plan node can carry a *proven* upper bound on the
number of rows it may produce, derived only from catalog facts — actual base
-table row counts and enforced unique-key constraints — never from sampled
statistics.  The planner threads the bound through the tree in
``info["size_bound"]``:

* a base-table scan is bounded by the table's actual row count (filters only
  shrink it),
* a join of bounded inputs is bounded by :func:`join_bound` — the product,
  reduced to one side when the other side's equated join columns cover one
  of its unique keys, plus null-padding terms for outer joins,
* every upper operator propagates via :func:`propagated_bound`.

Because the bound is proven, it does double duty:

* **planning** — the memo's cardinality estimates are capped at the bound
  (an estimate above a proven maximum is certainly wrong), which both
  tightens cost comparisons and prunes enumeration branches built on
  impossible intermediate sizes;
* **testing** — after an ``EXPLAIN ANALYZE`` execution,
  :func:`bound_violations` flags any node whose *actual* row count exceeded
  its proven bound.  A correct engine can never trip this, so a violation is
  a campaign bug report (``found_by="Bound"``), and the oracle stays silent
  across every toggle combination.

Nodes executed more than once (the rescanned inner of a nested loop, filter
subplans) accumulate ambiguous actual-row counters, so the runtime check
only judges nodes with ``loops <= 1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.optimizer.physical import OpKind, PhysicalNode

#: Join types whose output is exactly the set of matching row pairs.
_INNER_TYPES = {"INNER", "CROSS", ""}


def join_bound(
    left_bound: float,
    right_bound: float,
    join_type: str = "INNER",
    left_unique: bool = False,
    right_unique: bool = False,
) -> float:
    """Proven output-size bound for a join of two bounded inputs.

    ``right_unique`` asserts that the join's equality columns on the right
    side cover a unique key of the right input, so every left row matches at
    most one right row (and symmetrically for ``left_unique``).  Outer joins
    add their null-padding terms: a LEFT join emits at most one padded row
    per unmatched left row, a FULL join pads both sides.
    """
    matches = left_bound * right_bound
    if right_unique:
        matches = min(matches, left_bound)
    if left_unique:
        matches = min(matches, right_bound)
    join_type = (join_type or "INNER").upper()
    if join_type in _INNER_TYPES:
        return matches
    if join_type == "LEFT":
        bound = matches + left_bound
        return min(bound, left_bound) if right_unique else bound
    if join_type == "RIGHT":
        bound = matches + right_bound
        return min(bound, right_bound) if left_unique else bound
    if join_type == "FULL":
        bound = matches + left_bound + right_bound
        if left_unique or right_unique:
            bound = min(bound, left_bound + right_bound)
        return bound
    # Unknown join type: make no claim.
    return float("inf")


def propagated_bound(
    kind: OpKind,
    child_bounds: List[Optional[float]],
    limit: Optional[float] = None,
) -> Optional[float]:
    """Bound of an upper (non-join, non-scan) operator from its children.

    Returns ``None`` when no sound claim can be made — a missing child bound
    poisons everything except operators that bound their output on their
    own (``RESULT``) or only need one side (``EXCEPT``, ``LIMIT`` with a
    literal count).
    """
    first = child_bounds[0] if child_bounds else None
    if kind is OpKind.RESULT:
        return 1.0
    if kind in (OpKind.LIMIT, OpKind.TOP_N) and limit is not None:
        if first is None:
            return limit
        return min(first, limit)
    if first is None:
        return None
    if kind in (
        OpKind.FILTER,
        OpKind.PROJECT,
        OpKind.DISTINCT,
        OpKind.SORT,
        OpKind.MATERIALIZE,
        OpKind.GATHER,
        OpKind.WINDOW,
        OpKind.SUBQUERY_SCAN,
        OpKind.LIMIT,
        OpKind.TOP_N,
        OpKind.SEMI_JOIN,
        OpKind.ANTI_JOIN,
    ):
        # Each of these emits at most its (outer) child's rows.  Semi/anti
        # joins bound on the outer child, which is child_bounds[0].
        return first
    if kind in (OpKind.HASH_AGGREGATE, OpKind.SORT_AGGREGATE):
        # Grouped output has at most one row per input row; a *global*
        # aggregate over zero rows still emits its single summary row.
        return max(first, 1.0)
    rest = child_bounds[1:]
    if any(bound is None for bound in rest):
        if kind is OpKind.EXCEPT:
            return first  # EXCEPT never exceeds its left input.
        return None
    if kind in (OpKind.APPEND, OpKind.UNION):
        return first + sum(rest)  # type: ignore[arg-type]
    if kind is OpKind.INTERSECT:
        return min([first] + rest)  # type: ignore[type-var]
    if kind is OpKind.EXCEPT:
        return first
    return None


def bound_violations(plan: PhysicalNode) -> List[Dict[str, object]]:
    """Nodes whose executed row count exceeded their proven size bound.

    Judges only nodes that actually executed exactly once (``loops <= 1``);
    rescanned nodes accumulate counters across loops, which says nothing
    about a single evaluation.  The returned entries are plain dictionaries
    so callers (EXPLAIN output, the campaign oracle) can serialize them.
    """
    violations: List[Dict[str, object]] = []
    for node in plan.walk():
        bound = node.info.get("size_bound")
        if bound is None:
            continue
        runtime = node.runtime
        if not runtime.executed or runtime.loops > 1:
            continue
        if runtime.actual_rows > bound:
            violations.append(
                {
                    "operator": node.kind.value,
                    "size_bound": float(bound),
                    "actual_rows": int(runtime.actual_rows),
                }
            )
    return violations
