"""The cost model used by the simulated cost-based optimizer.

The constants intentionally mirror PostgreSQL's well-known defaults
(``seq_page_cost = 1.0``, ``random_page_cost = 4.0``, ``cpu_tuple_cost =
0.01`` …) so that the Cost properties in serialized plans look familiar.  Each
dialect may scale the constants through a :class:`CostModel` instance of its
own, which gives slightly different — but structurally comparable — plans per
simulated DBMS, as observed in the study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.optimizer.physical import CostEstimate


@dataclass
class CostModel:
    """Cost constants and formulas for physical operators."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    rows_per_page: float = 100.0
    parallel_setup_cost: float = 1000.0
    parallel_tuple_cost: float = 0.1
    hash_mem_factor: float = 1.0
    #: Multiplier the greedy join-order fallback applies to edge-less
    #: (cartesian) pairings so they are only picked when no connected
    #: pairing exists.  A *penalty*, not a cost: it steers enumeration
    #: order and never appears in a plan's Cost properties.
    cartesian_penalty: float = 1000.0

    # -- scans ---------------------------------------------------------------------

    def pages_for(self, row_count: float, width: int = 4) -> float:
        """Estimate the number of pages occupied by *row_count* rows."""
        effective_rows_per_page = max(self.rows_per_page * 32.0 / max(width, 1), 1.0)
        return max(math.ceil(row_count / effective_rows_per_page), 1)

    def seq_scan(self, table_rows: float, output_rows: float, width: int = 4) -> CostEstimate:
        """Cost a full table scan returning *output_rows* of *table_rows*."""
        pages = self.pages_for(table_rows, width)
        total = pages * self.seq_page_cost + table_rows * self.cpu_tuple_cost
        return CostEstimate(startup=0.0, total=total)

    def index_scan(
        self, table_rows: float, matched_rows: float, width: int = 4, covering: bool = False
    ) -> CostEstimate:
        """Cost an index (or index-only) scan matching *matched_rows* rows."""
        height = max(math.log2(max(table_rows, 2.0)), 1.0)
        startup = height * self.cpu_operator_cost * 50
        index_cost = matched_rows * self.cpu_index_tuple_cost
        if covering:
            heap_cost = matched_rows * self.cpu_tuple_cost
        else:
            heap_pages = min(self.pages_for(table_rows, width), matched_rows)
            heap_cost = heap_pages * self.random_page_cost + matched_rows * self.cpu_tuple_cost
        return CostEstimate(startup=startup, total=startup + index_cost + heap_cost)

    # -- joins ------------------------------------------------------------------------

    def nested_loop_join(
        self, outer: CostEstimate, inner: CostEstimate, outer_rows: float, inner_rows: float
    ) -> CostEstimate:
        """Cost a nested-loop join re-running the inner side per outer row."""
        rescan = max(outer_rows, 1.0) * max(inner.total - inner.startup, 0.0)
        total = outer.total + inner.total + rescan + outer_rows * inner_rows * self.cpu_operator_cost
        return CostEstimate(startup=outer.startup + inner.startup, total=total)

    def hash_join(
        self, outer: CostEstimate, inner: CostEstimate, outer_rows: float, inner_rows: float
    ) -> CostEstimate:
        """Cost a hash join building on the inner side."""
        build = inner.total + inner_rows * self.cpu_operator_cost * 2 * self.hash_mem_factor
        probe = outer.total + outer_rows * self.cpu_operator_cost * 2
        return CostEstimate(startup=build, total=build + probe)

    def semi_join(
        self, outer: CostEstimate, inner: CostEstimate, outer_rows: float, inner_rows: float
    ) -> CostEstimate:
        """Cost a hash semi (or null-aware anti) join.

        The inner side is materialized once into a hash set — one entry per
        row, cheaper than a full hash-join build because only the key is
        kept — and every outer row performs a single O(1) probe.  This is the
        O(n·m) → O(n+m) win over re-running the subquery per outer row.
        """
        build = inner.total + inner_rows * self.cpu_operator_cost * self.hash_mem_factor
        probe = outer.total + outer_rows * self.cpu_operator_cost
        return CostEstimate(startup=build, total=build + probe)

    def merge_join(
        self,
        outer: CostEstimate,
        inner: CostEstimate,
        outer_rows: float,
        inner_rows: float,
        presorted: bool = False,
    ) -> CostEstimate:
        """Cost a merge join, optionally including the two sorts."""
        sort_cost = 0.0
        if not presorted:
            sort_cost = self.sort(outer_rows).total + self.sort(inner_rows).total
        merge = (outer_rows + inner_rows) * self.cpu_operator_cost * 2
        startup = outer.startup + inner.startup + sort_cost
        return CostEstimate(startup=startup, total=outer.total + inner.total + sort_cost + merge)

    # -- other operators ---------------------------------------------------------------

    def sort(self, input_rows: float) -> CostEstimate:
        """Cost an in-memory sort of *input_rows* rows."""
        rows = max(input_rows, 1.0)
        comparisons = rows * math.log2(rows + 1.0)
        total = comparisons * self.cpu_operator_cost * 2
        return CostEstimate(startup=total, total=total + rows * self.cpu_operator_cost)

    def aggregate(self, input_rows: float, groups: float, hashed: bool = True) -> CostEstimate:
        """Cost a (hash or sorted) aggregation."""
        transition = input_rows * self.cpu_operator_cost * 2
        output = groups * self.cpu_tuple_cost
        startup = transition if hashed else 0.0
        return CostEstimate(startup=startup, total=transition + output)

    def limit(self, child_total: float, fraction: float) -> CostEstimate:
        """Cost a LIMIT that consumes *fraction* of its child's output."""
        return CostEstimate(startup=0.0, total=child_total * min(max(fraction, 0.0), 1.0))

    def materialize(self, input_rows: float) -> CostEstimate:
        """Cost materializing *input_rows* rows into a buffer."""
        return CostEstimate(startup=0.0, total=input_rows * self.cpu_operator_cost)

    def gather(self, input_rows: float, workers: int = 2) -> CostEstimate:
        """Cost gathering rows from *workers* parallel workers."""
        return CostEstimate(
            startup=self.parallel_setup_cost,
            total=self.parallel_setup_cost + input_rows * self.parallel_tuple_cost,
        )
