"""Physical plan representation shared by the optimizer, executor, and dialects.

A physical plan is a tree of :class:`PhysicalNode` objects.  Each node carries

* an :class:`OpKind` describing the physical algorithm,
* an ``info`` mapping with operator-specific details (table names, predicates,
  join keys, …) referencing AST expressions where applicable,
* optimizer estimates (row count, startup/total cost, row width), and
* actual execution statistics recorded when the node is run with
  ``analyze=True``.

The simulated DBMS dialects translate this dialect-neutral tree into their
DBMS-specific serialized query plans; the executor interprets it directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


class OpKind(enum.Enum):
    """Physical operator kinds produced by the planner."""

    # Producers
    SEQ_SCAN = "SeqScan"
    INDEX_SCAN = "IndexScan"
    INDEX_ONLY_SCAN = "IndexOnlyScan"
    VALUES = "Values"
    SUBQUERY_SCAN = "SubqueryScan"
    RESULT = "Result"
    # Joins
    NESTED_LOOP_JOIN = "NestedLoopJoin"
    HASH_JOIN = "HashJoin"
    MERGE_JOIN = "MergeJoin"
    SEMI_JOIN = "SemiJoin"
    ANTI_JOIN = "AntiJoin"
    # Folders
    HASH_AGGREGATE = "HashAggregate"
    SORT_AGGREGATE = "SortAggregate"
    WINDOW = "Window"
    # Combinators
    SORT = "Sort"
    TOP_N = "TopN"
    LIMIT = "Limit"
    DISTINCT = "Distinct"
    APPEND = "Append"
    UNION = "Union"
    INTERSECT = "Intersect"
    EXCEPT = "Except"
    # Projectors
    PROJECT = "Project"
    # Executors
    FILTER = "Filter"
    MATERIALIZE = "Materialize"
    GATHER = "Gather"
    HASH_BUILD = "HashBuild"
    # Consumers
    INSERT = "Insert"
    UPDATE = "Update"
    DELETE = "Delete"
    CREATE_TABLE = "CreateTable"
    CREATE_INDEX = "CreateIndex"
    DROP_TABLE = "DropTable"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Operator kinds that read base data (leaves of the plan).
PRODUCER_KINDS = frozenset(
    {
        OpKind.SEQ_SCAN,
        OpKind.INDEX_SCAN,
        OpKind.INDEX_ONLY_SCAN,
        OpKind.VALUES,
        OpKind.SUBQUERY_SCAN,
        OpKind.RESULT,
    }
)

#: Operator kinds implementing joins.
JOIN_KINDS = frozenset(
    {
        OpKind.NESTED_LOOP_JOIN,
        OpKind.HASH_JOIN,
        OpKind.MERGE_JOIN,
        OpKind.SEMI_JOIN,
        OpKind.ANTI_JOIN,
    }
)


@dataclass
class CostEstimate:
    """Optimizer cost estimate for one plan node."""

    startup: float = 0.0
    total: float = 0.0

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(self.startup + other.startup, self.total + other.total)


@dataclass
class RuntimeStats:
    """Actual execution statistics for one plan node."""

    actual_rows: int = 0
    actual_time_ms: float = 0.0
    loops: int = 0
    executed: bool = False


@dataclass
class PhysicalNode:
    """One node of a physical query plan."""

    kind: OpKind
    info: Dict[str, Any] = field(default_factory=dict)
    children: List["PhysicalNode"] = field(default_factory=list)
    estimated_rows: float = 1.0
    cost: CostEstimate = field(default_factory=CostEstimate)
    width: int = 4
    runtime: RuntimeStats = field(default_factory=RuntimeStats)

    # -- tree helpers --------------------------------------------------------------

    def walk(self) -> Iterator["PhysicalNode"]:
        """Yield this node and its descendants in pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def size(self) -> int:
        """Return the number of nodes in this subtree."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Return the height of this subtree."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def find(self, kind: OpKind) -> List["PhysicalNode"]:
        """Return every node of the given kind in this subtree."""
        return [node for node in self.walk() if node.kind is kind]

    def leaf_tables(self) -> List[str]:
        """Return the base-table names read by this subtree (pre-order)."""
        tables: List[str] = []
        for node in self.walk():
            table_name = node.info.get("table")
            if table_name and node.kind in PRODUCER_KINDS:
                tables.append(table_name)
        return tables

    # -- description -----------------------------------------------------------------

    def describe(self, indent: int = 0) -> str:
        """Return a readable multi-line description (debugging aid)."""
        pad = "  " * indent
        details = []
        for key in ("table", "alias", "index", "join_type", "strategy"):
            if key in self.info and self.info[key]:
                details.append(f"{key}={self.info[key]}")
        detail_text = (" [" + ", ".join(details) + "]") if details else ""
        lines = [
            f"{pad}{self.kind.value}{detail_text} "
            f"(rows={self.estimated_rows:.0f} cost={self.cost.startup:.2f}..{self.cost.total:.2f})"
        ]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhysicalNode({self.kind.value}, children={len(self.children)})"


def make_node(
    kind: OpKind,
    children: Optional[List[PhysicalNode]] = None,
    estimated_rows: float = 1.0,
    startup_cost: float = 0.0,
    total_cost: float = 0.0,
    width: int = 4,
    **info: Any,
) -> PhysicalNode:
    """Convenience constructor used throughout the planner."""
    return PhysicalNode(
        kind=kind,
        info=dict(info),
        children=list(children or []),
        estimated_rows=max(estimated_rows, 0.0),
        cost=CostEstimate(startup=startup_cost, total=total_cost),
        width=width,
    )
