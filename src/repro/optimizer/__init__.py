"""Query optimizer substrate: physical plans, costs, cardinality, planning."""

from repro.optimizer.cardinality import estimate_selectivity, estimate_join_selectivity
from repro.optimizer.cost import CostModel
from repro.optimizer.physical import (
    CostEstimate,
    JOIN_KINDS,
    OpKind,
    PRODUCER_KINDS,
    PhysicalNode,
    RuntimeStats,
    make_node,
)
from repro.optimizer.planner import Planner, PlannerOptions

__all__ = [
    "estimate_selectivity",
    "estimate_join_selectivity",
    "CostModel",
    "CostEstimate",
    "OpKind",
    "PhysicalNode",
    "RuntimeStats",
    "make_node",
    "PRODUCER_KINDS",
    "JOIN_KINDS",
    "Planner",
    "PlannerOptions",
]
